//! The paper-regeneration harness: running `cargo bench` renders every
//! table and figure of the evaluation from fresh virtual-cluster
//! measurements of the full 3552-atom myoglobin workload, then checks
//! each of the paper's qualitative findings.
//!
//! This is not a criterion benchmark (the times of interest are
//! *virtual* cluster seconds, not host seconds), so it uses
//! `harness = false`.

use cpc_workload::expectations::{render_findings, verify_findings};
use cpc_workload::figures::{all_figures, Lab};
use cpc_workload::runner::myoglobin_shared;

fn main() {
    // `cargo bench -- --test` and friends pass flags; a quick mode is
    // available for smoke runs.
    let quick = std::env::args().any(|a| a == "--quick");

    println!("================================================================");
    println!(" Reproducing every figure of:");
    println!("   'Performance Characterization of a Molecular Dynamics Code");
    println!("    on PC Clusters: Is There Any Easy Parallelism in CHARMM?'");
    println!("   (Taufer, Perathoner, Cavalli, Caflisch, Stricker, IPPS 2002)");
    println!("================================================================\n");

    if quick {
        let system = cpc_workload::runner::quick_system();
        let mut lab = Lab::custom(
            &system,
            2,
            cpc_md::EnergyModel::Pme(cpc_workload::runner::quick_pme_params()),
        );
        println!("{}", all_figures(&mut lab));
        return;
    }

    let system = myoglobin_shared();
    println!(
        "workload: myoglobin-class system, {} atoms, PME mesh 80x36x48,\n\
         10 MD steps per measurement, virtual Pentium III / 1 GHz nodes\n",
        system.n_atoms()
    );

    let mut lab = Lab::paper(system);
    println!("{}", all_figures(&mut lab));

    println!("\n================================================================");
    println!(" Paper findings vs this reproduction");
    println!("================================================================\n");
    let findings = verify_findings(&mut lab);
    println!("{}", render_findings(&findings));
    let held = findings.iter().filter(|f| f.holds).count();
    println!("\n{held} of {} findings hold", findings.len());
}
