//! Ablation studies on the design choices DESIGN.md calls out: the
//! collective algorithms inside the parallel CHARMM engine, the PME
//! mesh resolution, the spline order and the CPU clock. `harness =
//! false` — the reported times are virtual cluster seconds.

use cpc_charmm::{CommTuning, MdConfig};
use cpc_cluster::{ClusterConfig, NetworkKind};
use cpc_fft::Dims3;
use cpc_md::pme::PmeParams;
use cpc_md::EnergyModel;
use cpc_mpi::{CombineAlgo, Middleware};
use cpc_workload::runner::{myoglobin_shared, paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, base_model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };
    let run = |model: EnergyModel, cluster: ClusterConfig, tuning: CommTuning| {
        let cfg = MdConfig {
            steps,
            tuning,
            ..MdConfig::paper_protocol(model, Middleware::Mpi, cluster)
        };
        cpc_charmm::run_parallel_md(&system, &cfg)
    };

    println!("=== Ablation 1: force-combine algorithm (TCP/IP, PME model) ===");
    println!(
        "{:<16} {:>3} {:>12} {:>12}",
        "algorithm", "p", "classic(s)", "total(s)"
    );
    for algo in CombineAlgo::ALL {
        for p in [2usize, 8] {
            let tuning = CommTuning {
                force_combine: algo,
                ..CommTuning::default()
            };
            let r = run(
                base_model,
                ClusterConfig::uni(p, NetworkKind::TcpGigE),
                tuning,
            );
            println!(
                "{:<16} {:>3} {:>12.3} {:>12.3}",
                algo.label(),
                p,
                r.classic_time(),
                r.energy_time()
            );
        }
    }
    println!(
        "(the small 85 KB force array is latency-bound: the algorithms are\n\
         close at p=2 and the flat master combine pays for its incast at p=8)\n"
    );

    println!("=== Ablation 2: PME charge-grid sum algorithm (TCP/IP, p=8) ===");
    println!("{:<16} {:>12} {:>12}", "algorithm", "pme(s)", "total(s)");
    for algo in CombineAlgo::ALL {
        let tuning = CommTuning {
            grid_sum: algo,
            ..CommTuning::default()
        };
        let r = run(
            base_model,
            ClusterConfig::uni(8, NetworkKind::TcpGigE),
            tuning,
        );
        println!(
            "{:<16} {:>12.3} {:>12.3}",
            algo.label(),
            r.pme_time(),
            r.energy_time()
        );
    }
    println!(
        "(the mesh is megabytes: tree/flat sums move the full mesh per level\n\
         while the ring moves 2(p-1)/p of it total — the bandwidth-optimal\n\
         choice matters here, unlike for the force combine)\n"
    );

    if !quick {
        println!("=== Ablation 3: PME mesh resolution (TCP/IP, p=4) ===");
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            "mesh", "classic(s)", "pme(s)", "total(s)"
        );
        for grid in [
            Dims3::new(40, 18, 24),
            Dims3::new(80, 36, 48),
            Dims3::new(120, 54, 72),
        ] {
            let model = EnergyModel::Pme(PmeParams {
                grid,
                ..paper_pme_params()
            });
            let r = run(
                model,
                ClusterConfig::uni(4, NetworkKind::TcpGigE),
                CommTuning::default(),
            );
            println!(
                "{:<14} {:>12.3} {:>12.3} {:>12.3}",
                format!("{}x{}x{}", grid.nx, grid.ny, grid.nz),
                r.classic_time(),
                r.pme_time(),
                r.energy_time()
            );
        }
        println!("(mesh resolution trades accuracy against both FFT flops and transfer volume)\n");

        println!("=== Ablation 4: B-spline interpolation order (TCP/IP, p=4) ===");
        println!("{:<8} {:>12} {:>12}", "order", "pme(s)", "total(s)");
        for order in [4usize, 6] {
            let model = EnergyModel::Pme(PmeParams {
                order,
                ..paper_pme_params()
            });
            let r = run(
                model,
                ClusterConfig::uni(4, NetworkKind::TcpGigE),
                CommTuning::default(),
            );
            println!(
                "{:<8} {:>12.3} {:>12.3}",
                order,
                r.pme_time(),
                r.energy_time()
            );
        }
        println!("(order 6 spreads 3.4x more mesh points per atom for higher accuracy)\n");
    }

    println!("=== Ablation 5: CPU clock (TCP/IP, p=8, PME model) ===");
    println!(
        "{:<8} {:>12} {:>8} {:>8} {:>8}",
        "GHz", "total(s)", "comp%", "comm%", "sync%"
    );
    for ghz in [0.5, 1.0, 2.0] {
        let mut cluster = ClusterConfig::uni(8, NetworkKind::TcpGigE);
        cluster.cpu.ghz = ghz;
        let r = run(base_model, cluster, CommTuning::default());
        let b = r.energy_breakdown();
        let (comp, comm, sync) = cpc_charmm::RunReport::percentages(&b);
        println!(
            "{:<8} {:>12.3} {:>7.1}% {:>7.1}% {:>7.1}%",
            ghz,
            r.energy_time(),
            comp,
            comm,
            sync
        );
    }
    println!(
        "(doubling the CPU clock barely helps at p=8 on TCP — the calculation\n\
         is communication-bound, the paper's core message)"
    );
}
