//! Criterion microbenchmarks of the compute kernels that dominate the
//! CHARMM energy calculation: FFTs, the nonbonded pair loop, PME charge
//! spreading/interpolation and neighbour-list construction.
//!
//! These measure *real* host time (the simulator charges virtual time
//! from operation counts; these benches document how fast the actual
//! Rust kernels run).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cpc_fft::{Complex64, Dims3, Fft3d, FftPlan};
use cpc_md::builder::water_box;
use cpc_md::neighbor::NeighborList;
use cpc_md::nonbonded::{nonbonded_energy_forces, NonbondedOptions};
use cpc_md::pme::{compute_splines, spread_charges, Pme, PmeParams};
use cpc_md::{EnergyModel, Evaluator, Vec3};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    // The paper's mesh extents plus a power of two and a Bluestein prime.
    for n in [36usize, 48, 80, 128, 97] {
        let plan = FftPlan::new(n);
        let x = signal(n);
        let mut y = vec![Complex64::ZERO; n];
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| plan.forward(black_box(&x), &mut y));
        });
    }
    group.finish();
}

fn bench_fft_3d_paper_grid(c: &mut Criterion) {
    let dims = Dims3::new(80, 36, 48);
    let fft = Fft3d::new(dims);
    let x = signal(dims.len());
    c.bench_function("fft_3d_80x36x48", |b| {
        b.iter_batched(
            || x.clone(),
            |mut data| fft.forward(black_box(&mut data)),
            BatchSize::LargeInput,
        );
    });
}

fn bench_nonbonded(c: &mut Criterion) {
    let sys = water_box(6, 3.1);
    let opts = NonbondedOptions::classic();
    let list = NeighborList::build(&sys.topology, &sys.pbox, &sys.positions, opts.cutoff, 2.0);
    let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
    c.bench_function(format!("nonbonded_{}_pairs", list.pairs.len()), |b| {
        b.iter(|| {
            nonbonded_energy_forces(
                &sys.topology,
                &sys.pbox,
                black_box(&sys.positions),
                &list.pairs,
                &opts,
                &mut forces,
            )
        });
    });
}

fn bench_neighbor_build(c: &mut Criterion) {
    let sys = water_box(6, 3.1);
    c.bench_function("neighbor_list_build_648_atoms", |b| {
        b.iter(|| {
            NeighborList::build(
                &sys.topology,
                &sys.pbox,
                black_box(&sys.positions),
                10.0,
                2.0,
            )
        });
    });
}

fn bench_pme_spread(c: &mut Criterion) {
    let sys = water_box(6, 3.1);
    let grid = Dims3::new(20, 20, 20);
    let splines = compute_splines(&sys.pbox, &sys.positions, grid, 4);
    let mut mesh = vec![Complex64::ZERO; grid.len()];
    c.bench_function("pme_spread_648_atoms", |b| {
        b.iter(|| spread_charges(&sys.topology, black_box(&splines), grid, 4, &mut mesh));
    });
}

fn bench_pme_full(c: &mut Criterion) {
    let sys = water_box(6, 3.1);
    let params = PmeParams {
        grid: Dims3::new(20, 20, 20),
        order: 4,
        beta: 0.34,
    };
    let mut pme = Pme::new(params, &sys.pbox);
    let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
    c.bench_function("pme_full_evaluation", |b| {
        b.iter(|| {
            pme.energy_forces(
                &sys.topology,
                &sys.pbox,
                black_box(&sys.positions),
                &mut forces,
            )
        });
    });
}

fn bench_full_energy(c: &mut Criterion) {
    let sys = water_box(6, 3.1);
    let mut evaluator = Evaluator::new(EnergyModel::Classic);
    let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
    c.bench_function("full_classic_energy_648_atoms", |b| {
        b.iter(|| evaluator.evaluate(black_box(&sys), &mut forces));
    });
}

fn bench_special_functions(c: &mut Criterion) {
    c.bench_function("erfc", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += cpc_md::special::erfc(black_box(i as f64 * 0.05));
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_fft_1d,
    bench_fft_3d_paper_grid,
    bench_nonbonded,
    bench_neighbor_build,
    bench_pme_spread,
    bench_pme_full,
    bench_full_energy,
    bench_special_functions
);
criterion_main!(benches);
