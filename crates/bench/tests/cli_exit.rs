//! The usage discipline, end to end: every malformed invocation of a
//! bench binary must exit 2 (never 0, never a panic) with the usage
//! string on stderr, and `--help` must exit 0. Driven through the
//! `serve` and `trace_demo` binaries, whose error paths run before
//! any workload is built — so these stay fast.

use std::process::{Command, Output};

fn serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(args)
        .output()
        .expect("serve binary runs")
}

fn trace_demo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace_demo"))
        .args(args)
        .output()
        .expect("trace_demo binary runs")
}

#[test]
fn an_unknown_flag_exits_2_and_names_the_offender() {
    let out = serve(&["--frob"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown argument") && err.contains("--frob"),
        "stderr must name the offender: {err}"
    );
    assert!(err.contains("usage:"), "stderr must carry usage: {err}");
}

#[test]
fn a_flag_missing_its_value_exits_2() {
    let out = serve(&["--port"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--port requires a value"), "{err}");
}

#[test]
fn a_malformed_integer_exits_2_and_echoes_the_rejected_text() {
    let out = serve(&["--port", "eighty"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("\"eighty\""), "{err}");
}

#[test]
fn a_duplicated_flag_exits_2_as_a_leftover() {
    let out = serve(&["--get", "/healthz", "--get", "/readyz"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown argument") && err.contains("/readyz"),
        "{err}"
    );
}

#[test]
fn a_structural_conflict_exits_2() {
    let out = serve(&["--body", "{}"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--body without --post"), "{err}");
}

#[test]
fn zero_ranks_is_a_conflict_in_trace_demo() {
    let out = trace_demo(&["--ranks", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--ranks must be at least 1"), "{err}");
}

#[test]
fn help_exits_0_with_the_usage_string() {
    let out = serve(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: serve"));
}
