//! # cpc-bench
//!
//! Benchmark harness: one binary per paper figure (regenerating the
//! figure from virtual-cluster measurements), a `figures` bench target
//! that renders everything, and criterion microbenchmarks of the
//! compute kernels.
//!
//! Every figure binary accepts `--quick` to run on a small water system
//! (seconds instead of minutes) and `--json FILE` to dump the raw
//! measurements.

#![warn(missing_docs)]

pub mod cli;

use cpc_md::{EnergyModel, System};
use cpc_workload::figures::Lab;
use cpc_workload::journal::Journal;
use cpc_workload::Measurement;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default)]
pub struct FigureArgs {
    /// Use the small quick system instead of full myoglobin.
    pub quick: bool,
    /// Optional path to dump raw measurements as JSON.
    pub json: Option<String>,
    /// Optional path to a completed-cell journal (JSONL manifest).
    pub journal: Option<String>,
    /// Resume from the journal instead of truncating it.
    pub resume: bool,
    /// Stop (exit code 3) after this many fresh measurements —
    /// simulates a campaign killed mid-sweep.
    pub max_cells: Option<usize>,
}

impl FigureArgs {
    /// Parses `--quick`, `--json FILE`, `--journal FILE`, `--resume`
    /// and `--max-cells N` from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = cli::Args::parse(
            "figure",
            "usage: [--quick] [--json FILE] [--journal FILE] [--resume] [--max-cells N]",
        );
        let out = FigureArgs {
            quick: args.flag("--quick"),
            json: args.value("--json"),
            journal: args.value("--journal"),
            resume: args.flag("--resume"),
            max_cells: args.parsed("--max-cells", "an integer cell count"),
        };
        if out.resume && out.journal.is_none() {
            args.conflict("--resume requires --journal FILE");
        }
        args.finish();
        out
    }

    /// Builds the measurement system for these options.
    pub fn system(&self) -> System {
        if self.quick {
            cpc_workload::runner::quick_system()
        } else {
            cpc_workload::runner::myoglobin_shared().clone()
        }
    }

    /// Builds a lab bound to `system` for these options, with the
    /// journal attached and the cell budget set when requested.
    pub fn lab<'a>(&self, system: &'a System) -> Lab<'a> {
        let mut lab = if self.quick {
            Lab::custom(
                system,
                2,
                EnergyModel::Pme(cpc_workload::runner::quick_pme_params()),
            )
        } else {
            Lab::paper(system)
        };
        if let Some(path) = &self.journal {
            attach_journal(&mut lab, path, self.resume);
        }
        if let Some(cells) = self.max_cells {
            lab.set_cell_budget(cells);
        }
        lab
    }

    /// Writes the JSON dump if requested.
    pub fn finish(&self, lab: &Lab<'_>) {
        if let Some(path) = &self.json {
            std::fs::write(path, lab.to_json()).expect("write json dump");
            eprintln!("wrote {path}");
        }
    }
}

/// Opens (or resumes) a completed-cell journal at `path` and attaches
/// it to `lab`: with `resume`, already-journaled cells pre-seed the
/// cache and are skipped; without it, the journal starts fresh.
pub fn attach_journal(lab: &mut Lab<'_>, path: &str, resume: bool) {
    if resume {
        let (journal, recovery) = Journal::<Measurement>::resume_keyed(path, |m| m.point)
            .unwrap_or_else(|e| {
                eprintln!("cannot resume journal {path}: {e}");
                std::process::exit(2);
            });
        if recovery.dropped > 0 {
            eprintln!(
                "journal {path}: discarded {} torn/damaged trailing line(s)",
                recovery.dropped
            );
        }
        if recovery.duplicates > 0 {
            eprintln!(
                "journal {path}: scrubbed {} duplicate cell record(s) (first wins)",
                recovery.duplicates
            );
        }
        eprintln!(
            "journal {path}: resuming past {} completed cell(s)",
            recovery.entries.len()
        );
        lab.attach_journal(journal, recovery.entries);
    } else {
        let journal = Journal::<Measurement>::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create journal {path}: {e}");
            std::process::exit(2);
        });
        lab.attach_journal(journal, Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = FigureArgs::default();
        assert!(!a.quick);
        assert!(a.json.is_none());
    }
}
