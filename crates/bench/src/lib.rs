//! # cpc-bench
//!
//! Benchmark harness: one binary per paper figure (regenerating the
//! figure from virtual-cluster measurements), a `figures` bench target
//! that renders everything, and criterion microbenchmarks of the
//! compute kernels.
//!
//! Every figure binary accepts `--quick` to run on a small water system
//! (seconds instead of minutes) and `--json FILE` to dump the raw
//! measurements.

#![warn(missing_docs)]

use cpc_md::{EnergyModel, System};
use cpc_workload::figures::Lab;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default)]
pub struct FigureArgs {
    /// Use the small quick system instead of full myoglobin.
    pub quick: bool,
    /// Optional path to dump raw measurements as JSON.
    pub json: Option<String>,
}

impl FigureArgs {
    /// Parses `--quick` and `--json FILE` from `std::env::args`.
    pub fn parse() -> Self {
        let mut out = FigureArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => out.json = args.next(),
                "--help" | "-h" => {
                    eprintln!("usage: [--quick] [--json FILE]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Builds the measurement system for these options.
    pub fn system(&self) -> System {
        if self.quick {
            cpc_workload::runner::quick_system()
        } else {
            cpc_workload::runner::myoglobin_shared().clone()
        }
    }

    /// Builds a lab bound to `system` for these options.
    pub fn lab<'a>(&self, system: &'a System) -> Lab<'a> {
        if self.quick {
            Lab::custom(
                system,
                2,
                EnergyModel::Pme(cpc_workload::runner::quick_pme_params()),
            )
        } else {
            Lab::paper(system)
        }
    }

    /// Writes the JSON dump if requested.
    pub fn finish(&self, lab: &Lab<'_>) {
        if let Some(path) = &self.json {
            std::fs::write(path, lab.to_json()).expect("write json dump");
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = FigureArgs::default();
        assert!(!a.quick);
        assert!(a.json.is_none());
    }
}
