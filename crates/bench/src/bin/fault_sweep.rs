//! Fault-injection survivability campaign: runs the myoglobin workload
//! under a sweep of packet-loss rates, straggler severities and rank
//! crashes on each network, and reports survivability (did the run
//! complete, with how many survivors) and overhead (wall time and
//! recovery time versus the fault-free run).
//!
//! ```text
//! cargo run --release -p cpc-bench --bin fault_sweep \
//!     [--quick] [--smoke] [--out DIR] [--resume] [--max-cells N] \
//!     [--kill-after N] [--cache DIR]
//! ```
//!
//! `--quick` swaps in the small water-box system; `--smoke` is the CI
//! mode: the quick system on one network with one loss and one crash
//! scenario.
//!
//! Completed scenarios are journaled to `DIR/fault_sweep.jsonl`;
//! `--resume` skips them on a re-run (and `--max-cells N` exits with
//! code 3 after N fresh scenarios, simulating a kill mid-sweep), so a
//! killed-then-resumed sweep produces the same final artifacts as an
//! uninterrupted one. `--kill-after N` is the harsher cut: it exits 3
//! immediately *after* journaling the N-th fresh scenario, mid-table.
//! `--cache DIR` routes every scenario through the content-addressed
//! result cache, so a second sweep over the same factor levels (even
//! in a different output directory) re-simulates nothing.

use cpc_bench::cli::Args;
use cpc_charmm::{run_parallel_md, run_parallel_md_faulty, AbftConfig, FaultConfig, MdConfig};
use cpc_cluster::{ClusterConfig, FaultPlan, NetworkKind};
use cpc_md::{EnergyModel, System};
use cpc_mpi::Middleware;
use cpc_workload::cache::{CacheKey, ResultCache};
use cpc_workload::figures::EXIT_CELL_BUDGET;
use cpc_workload::journal::Journal;
use cpc_workload::runner::{
    myoglobin_shared, paper_pme_params, quick_pme_params, quick_system, PAPER_STEPS,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

const USAGE: &str = "usage: fault_sweep [--quick] [--smoke] [--out DIR] [--resume]\n\
     \x20      [--max-cells N] [--kill-after N] [--cache DIR]";

/// One sweep point's survivability/overhead record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Row {
    network: NetworkKind,
    scenario: String,
    loss: f64,
    straggle: f64,
    crash_at: Option<f64>,
    wall: f64,
    /// Wall-time overhead versus the fault-free fault-tolerant
    /// baseline on the same network (isolates the injected faults'
    /// cost from the heartbeat/checkpoint cost). `None` when the
    /// reference wall is unusable (zero or non-finite).
    overhead: Option<f64>,
    survivors: usize,
    crashed: Vec<usize>,
    completed: bool,
    recoveries: usize,
    recovery_time: f64,
    /// Straggler-driven re-cuts of the work partition (no rollback).
    rebalances: usize,
    /// Graceful detector-driven evictions (no rollback).
    evictions: usize,
    /// Highest suspicion level the phi-accrual detector computed.
    phi_max: f64,
    /// Largest smoothed heartbeat RTT any rank observed, seconds.
    srtt_max: f64,
    retransmits: u64,
    msgs_lost: u64,
    /// ABFT corruption verdicts in the armed re-run of this scenario.
    abft_det: usize,
    /// Wall-time cost of arming the ABFT checksums for this scenario
    /// (armed wall vs the disarmed wall of the same plan). `None` when
    /// the disarmed wall is unusable.
    abft_overhead: Option<f64>,
}

/// Journal/resume key: a scenario is identified by its factor levels,
/// not its measured responses.
fn cell_key(network: NetworkKind, scenario: &str, loss: f64, straggle: f64) -> String {
    format!("{network:?}|{scenario}|{loss}|{straggle}")
}

impl Row {
    fn key(&self) -> String {
        cell_key(self.network, &self.scenario, self.loss, self.straggle)
    }
}

fn run_point(
    system: &System,
    cfg: &MdConfig,
    plan: FaultPlan,
    scenario: &str,
    ref_wall: f64,
) -> Row {
    let loss = plan.loss;
    let straggle = plan
        .stragglers
        .iter()
        .map(|s| s.slowdown)
        .fold(1.0f64, f64::max);
    let crash_at = plan.crashes.first().map(|c| c.at);
    let ft = run_parallel_md_faulty(system, cfg, &FaultConfig::new(plan.clone()))
        .expect("fault sweep run is well-configured");
    // Armed re-run of the same scenario: its wall-time delta is the
    // ABFT checksum cost under this fault load, and its verdict count
    // shows the checksums staying quiet (no sampled SDC here — any
    // detection in this sweep is a false positive worth seeing).
    let armed = run_parallel_md_faulty(
        system,
        cfg,
        &FaultConfig::new(plan).with_abft(AbftConfig::armed()),
    )
    .expect("fault sweep run is well-configured");
    let abft_overhead = (ft.report.wall_time > 0.0 && ft.report.wall_time.is_finite())
        .then(|| armed.report.wall_time / ft.report.wall_time - 1.0);
    Row {
        network: cfg.cluster.network,
        scenario: scenario.to_string(),
        loss,
        straggle,
        crash_at,
        wall: ft.report.wall_time,
        overhead: ft.overhead_vs(ref_wall),
        survivors: ft.survivors,
        crashed: ft.crashed_ranks.clone(),
        completed: ft.completed,
        recoveries: ft.recoveries,
        recovery_time: ft.recovery_time,
        rebalances: ft.rebalances,
        evictions: ft.evictions,
        phi_max: ft.phi_max,
        srtt_max: ft.srtt_max,
        retransmits: ft.report.per_rank.iter().map(|s| s.retransmits).sum(),
        msgs_lost: ft.report.per_rank.iter().map(|s| s.msgs_lost).sum(),
        abft_det: armed.abft_detections,
        abft_overhead,
    }
}

/// Completed-scenario bookkeeping: journaled rows from a previous
/// (killed) sweep are reused; fresh rows are journaled as they finish,
/// up to an optional budget. With a cache attached, a scenario's
/// content address (factor key + protocol) is probed before any
/// simulation and fed after it.
struct SweepState {
    journal: Journal<Row>,
    done: HashMap<String, Row>,
    fresh: usize,
    budget: Option<usize>,
    kill_after: Option<usize>,
    cache: Option<ResultCache>,
    protocol: String,
}

impl SweepState {
    fn cell(
        &mut self,
        system: &System,
        cfg: &MdConfig,
        plan: FaultPlan,
        scenario: &str,
        ref_wall: f64,
    ) -> Row {
        let straggle = plan
            .stragglers
            .iter()
            .map(|s| s.slowdown)
            .fold(1.0f64, f64::max);
        let key = cell_key(cfg.cluster.network, scenario, plan.loss, straggle);
        if let Some(row) = self.done.get(&key) {
            return row.clone();
        }
        let ckey = self.cache.as_ref().map(|_| {
            CacheKey::of(&key, &self.protocol).unwrap_or_else(|e| {
                eprintln!("cannot address scenario {key}: {e}");
                std::process::exit(2);
            })
        });
        // Cache hit: journaled like a fresh row (the manifest stays
        // complete) but it costs no simulation and no budget.
        if let (Some(cache), Some(ckey)) = (self.cache.as_mut(), &ckey) {
            if let Some(row) = cache.get::<Row>(ckey) {
                self.record(row.clone());
                return row;
            }
        }
        if self.budget.is_some_and(|b| self.fresh >= b) {
            eprintln!(
                "cell budget exhausted after {} fresh scenarios; \
                 re-run with --resume to continue",
                self.fresh
            );
            std::process::exit(EXIT_CELL_BUDGET);
        }
        let row = run_point(system, cfg, plan, scenario, ref_wall);
        self.fresh += 1;
        self.record(row.clone());
        if let (Some(cache), Some(ckey)) = (self.cache.as_mut(), &ckey) {
            if let Err(e) = cache.put(ckey, &row) {
                eprintln!("cannot cache scenario {}: {e}", row.key());
                std::process::exit(2);
            }
        }
        if self.kill_after == Some(self.fresh) {
            eprintln!(
                "killed mid-sweep after {} fresh scenario(s); \
                 re-run with --resume to continue",
                self.fresh
            );
            std::process::exit(EXIT_CELL_BUDGET);
        }
        row
    }

    fn record(&mut self, row: Row) {
        if let Err(e) = self.journal.append(&row) {
            eprintln!("cannot journal scenario {}: {e}", row.key());
            std::process::exit(2);
        }
        self.done.insert(row.key(), row);
    }
}

fn main() {
    let mut args = Args::parse("fault_sweep", USAGE);
    let smoke = args.flag("--smoke");
    let quick = smoke || args.flag("--quick");
    let resume = args.flag("--resume");
    let out = args.value("--out").unwrap_or_else(|| "results".to_string());
    let max_cells: Option<usize> = args.parsed("--max-cells", "an integer cell count");
    let kill_after: Option<usize> = args.parsed("--kill-after", "an integer fresh-cell count");
    let cache_dir: Option<String> = args.value("--cache");
    args.finish();

    let system = if quick {
        quick_system()
    } else {
        myoglobin_shared().clone()
    };
    let model = if quick {
        EnergyModel::Pme(quick_pme_params())
    } else {
        EnergyModel::Pme(paper_pme_params())
    };
    let (procs, steps) = if smoke {
        (4usize, 2usize)
    } else if quick {
        (4, 3)
    } else {
        (8, PAPER_STEPS)
    };

    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {out}: {e}");
        std::process::exit(2);
    }
    let journal_path = Path::new(&out).join("fault_sweep.jsonl");
    let (journal, prior) = if resume {
        let (j, recovery) = Journal::<Row>::resume_keyed(&journal_path, |r| r.key())
            .unwrap_or_else(|e| {
                eprintln!("cannot resume {}: {e}", journal_path.display());
                std::process::exit(2);
            });
        if recovery.dropped > 0 {
            eprintln!(
                "journal {}: discarded {} torn/damaged trailing line(s)",
                journal_path.display(),
                recovery.dropped
            );
        }
        if recovery.duplicates > 0 {
            eprintln!(
                "journal {}: scrubbed {} duplicate scenario record(s) (first wins)",
                journal_path.display(),
                recovery.duplicates
            );
        }
        eprintln!(
            "journal {}: resuming past {} completed scenario(s)",
            journal_path.display(),
            recovery.entries.len()
        );
        (j, recovery.entries)
    } else {
        (
            Journal::<Row>::create(&journal_path).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", journal_path.display());
                std::process::exit(2);
            }),
            Vec::new(),
        )
    };
    let cache = cache_dir.map(|dir| {
        ResultCache::open(dir.clone()).unwrap_or_else(|e| {
            eprintln!("cannot open result cache {dir}: {e}");
            std::process::exit(2);
        })
    });
    let mut sweep = SweepState {
        journal,
        done: prior.into_iter().map(|r| (r.key(), r)).collect(),
        fresh: 0,
        budget: max_cells,
        kill_after,
        cache,
        protocol: format!("fault_sweep quick={quick} smoke={smoke} procs={procs} steps={steps}"),
    };
    let networks: &[NetworkKind] = if smoke {
        &[NetworkKind::ScoreGigE]
    } else {
        &[
            NetworkKind::TcpGigE,
            NetworkKind::ScoreGigE,
            NetworkKind::MyrinetGm,
        ]
    };
    let loss_rates: &[f64] = if smoke { &[0.05] } else { &[0.01, 0.05] };
    let stragglers: &[f64] = if smoke { &[] } else { &[1.5, 3.0] };
    let crash_frac = if smoke { 0.4 } else { 0.5 };

    let mut rows = Vec::new();
    for &network in networks {
        let cfg = MdConfig {
            steps,
            ..MdConfig::paper_protocol(model, Middleware::Mpi, ClusterConfig::uni(procs, network))
        };
        // Fault-free references: the plain driver, and the
        // fault-tolerant driver with an all-zero plan (its wall-time
        // delta is the standing heartbeat + checkpoint cost).
        let plain_wall = run_parallel_md(&system, &cfg).wall_time;
        let base = sweep.cell(&system, &cfg, FaultPlan::none(), "baseline", plain_wall);
        let ref_wall = base.wall;
        println!(
            "[{network:?}] fault-free: plain {plain_wall:.4} s, ft {ref_wall:.4} s ({:+.1}% FT machinery)",
            100.0 * (ref_wall / plain_wall - 1.0)
        );
        rows.push(base);

        for &loss in loss_rates {
            let plan = FaultPlan::none().with_loss(loss);
            rows.push(sweep.cell(&system, &cfg, plan, "loss", ref_wall));
        }
        for &s in stragglers {
            let plan = FaultPlan::none().with_straggler(0, s);
            rows.push(sweep.cell(&system, &cfg, plan, "straggler", ref_wall));
        }
        let crash_t = crash_frac * plain_wall;
        let plan = FaultPlan::none().with_crash(procs - 1, crash_t);
        rows.push(sweep.cell(&system, &cfg, plan, "crash", ref_wall));
        if !smoke {
            let plan = FaultPlan::none()
                .with_loss(loss_rates[0])
                .with_straggler(0, stragglers.first().copied().unwrap_or(1.5))
                .with_crash(procs - 1, crash_t);
            rows.push(sweep.cell(&system, &cfg, plan, "combined", ref_wall));
        }
    }

    // Human-readable survivability table.
    let mut md = String::new();
    let _ = writeln!(md, "# Fault-injection survivability sweep\n");
    let _ = writeln!(
        md,
        "{} system, p = {procs}, {steps} steps, MPI middleware. Overhead is wall time vs the fault-free fault-tolerant baseline on the same network.\n",
        if quick { "quick water-box" } else { "myoglobin" }
    );
    let _ = writeln!(
        md,
        "| network | scenario | loss | straggle | crash@ | wall (s) | overhead | survivors | completed | recoveries | recovery (s) | rebal | evict | phi max | srtt max (s) | retransmits | lost msgs | abft det | abft ovh |"
    );
    let _ = writeln!(
        md,
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|"
    );
    for r in &rows {
        let _ = writeln!(
            md,
            "| {:?} | {} | {:.2} | {:.1}x | {} | {:.4} | {} | {}/{} | {} | {} | {:.4} | {} | {} | {:.2} | {:.2e} | {} | {} | {} | {} |",
            r.network,
            r.scenario,
            r.loss,
            r.straggle,
            r.crash_at
                .map(|t| format!("{t:.4}s"))
                .unwrap_or_else(|| "-".to_string()),
            r.wall,
            r.overhead
                .map(|o| format!("{:+.1}%", 100.0 * o))
                .unwrap_or_else(|| "-".to_string()),
            r.survivors,
            procs,
            if r.completed { "yes" } else { "NO" },
            r.recoveries,
            r.recovery_time,
            r.rebalances,
            r.evictions,
            r.phi_max,
            r.srtt_max,
            r.retransmits,
            r.msgs_lost,
            r.abft_det,
            r.abft_overhead
                .map(|o| format!("{:+.1}%", 100.0 * o))
                .unwrap_or_else(|| "-".to_string()),
        );
    }

    let mut csv = String::from(
        "network,scenario,loss,straggle,crash_at,wall_s,overhead,survivors,crashed,completed,recoveries,recovery_s,rebalances,evictions,phi_max,srtt_max_s,retransmits,msgs_lost,abft_det,abft_overhead\n",
    );
    for r in &rows {
        let _ = writeln!(
            csv,
            "{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.network,
            r.scenario,
            r.loss,
            r.straggle,
            r.crash_at.map(|t| t.to_string()).unwrap_or_default(),
            r.wall,
            r.overhead.map(|o| o.to_string()).unwrap_or_default(),
            r.survivors,
            r.crashed
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(";"),
            r.completed,
            r.recoveries,
            r.recovery_time,
            r.rebalances,
            r.evictions,
            r.phi_max,
            r.srtt_max,
            r.retransmits,
            r.msgs_lost,
            r.abft_det,
            r.abft_overhead.map(|o| o.to_string()).unwrap_or_default(),
        );
    }

    let dir = Path::new(&out);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let md_path = dir.join("fault_sweep.md");
    let csv_path = dir.join("fault_sweep.csv");
    for (path, text) in [(&md_path, &md), (&csv_path, &csv)] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    print!("{md}");
    let incomplete = rows.iter().filter(|r| !r.completed).count();
    println!(
        "\n{} scenarios, {} completed, {} failed to complete",
        rows.len(),
        rows.len() - incomplete,
        incomplete
    );
    println!(
        "artifacts: {} and {}",
        md_path.display(),
        csv_path.display()
    );
    // Survivability gate: every scenario must have completed via
    // degradation or checkpoint-restart (the whole point of the
    // subsystem); exit nonzero otherwise so CI catches regressions.
    if incomplete > 0 {
        std::process::exit(1);
    }
}
