//! Visualizes one PME energy evaluation as a message timeline per rank
//! — the instrument behind the paper's breakdown, made visible.
use cpc_bench::cli::Args;
use cpc_charmm::ParallelPme;
use cpc_cluster::{
    render_timeline, run_cluster, summarize_trace, ClusterConfig, NetworkKind, Phase, PIII_1GHZ,
};
use cpc_mpi::{Comm, Middleware};

const USAGE: &str = "usage: trace_demo [--quick] [--ranks P] [--width COLS]";

fn main() {
    let mut args = Args::parse("trace_demo", USAGE);
    let quick = args.flag("--quick");
    let p: usize = args.parsed("--ranks", "an integer rank count").unwrap_or(4);
    let width: usize = args
        .parsed("--width", "an integer column count")
        .unwrap_or(100);
    if p == 0 {
        args.conflict("--ranks must be at least 1");
    }
    args.finish();

    let system = if quick {
        cpc_workload::runner::quick_system()
    } else {
        cpc_workload::runner::myoglobin_shared().clone()
    };
    let params = if quick {
        cpc_workload::runner::quick_pme_params()
    } else {
        cpc_workload::runner::paper_pme_params()
    };
    for network in [NetworkKind::TcpGigE, NetworkKind::MyrinetGm] {
        let mut cfg = ClusterConfig::uni(p, network);
        cfg.record_trace = true;
        let sys = &system;
        let out = run_cluster(cfg, |ctx| {
            ctx.set_phase(Phase::Pme);
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            ParallelPme::new(params, p).energy_forces(&mut comm, sys, &PIII_1GHZ);
        });
        let events: Vec<_> = out
            .iter()
            .flat_map(|o| o.stats.trace.iter().copied())
            .collect();
        let s = summarize_trace(&events);
        println!(
            "=== one PME evaluation on {} (p = {p}) ===",
            network.label()
        );
        println!(
            "{} messages, {:.2} MB payload, {} control, mean payload wire {:.2} ms\n",
            s.messages,
            s.payload_bytes as f64 / 1e6,
            s.control_messages,
            s.mean_payload_wire * 1e3
        );
        println!("{}", render_timeline(&events, p, width));
    }
}
