//! Regenerates the paper's Figure 6 from virtual-cluster measurements.
use cpc_bench::FigureArgs;

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let mut lab = args.lab(&system);
    println!("{}", cpc_workload::figures::fig6(&mut lab));
    args.finish(&lab);
}
