//! Verifies every qualitative finding of the paper against the
//! reproduction and prints a HOLDS/DEVIATES report.
use cpc_bench::FigureArgs;
use cpc_workload::expectations::{render_findings, verify_findings};

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let mut lab = args.lab(&system);
    let findings = verify_findings(&mut lab);
    println!("{}", render_findings(&findings));
    let failed = findings.iter().filter(|f| !f.holds).count();
    println!(
        "\n{} of {} findings hold",
        findings.len() - failed,
        findings.len()
    );
    args.finish(&lab);
    if failed > 0 {
        std::process::exit(1);
    }
}
