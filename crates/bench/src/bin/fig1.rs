//! Prints the factor space of the experimental design (paper Figure 1).
fn main() {
    println!("{}", cpc_workload::figures::factor_space());
}
