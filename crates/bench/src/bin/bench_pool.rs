//! Work-stealing pool throughput benchmark: the campaign smoke at
//! every sweep thread count plus the sched-chaos harness rate, written
//! as `BENCH_pool.json` so the executor's perf trajectory has a curve.
//!
//! ```text
//! cargo run --release -p cpc-bench --bin bench_pool -- \
//!     [--out FILE] [--cells N] [--spin K] [--sched N] [--seed S]
//! ```
//!
//! Two measurements:
//!
//! * **Campaign smoke**: a synthetic campaign of `--cells` cells, each
//!   burning `--spin` rounds of deterministic integer mixing, driven
//!   through the crash-safe [`JobService`] on a [`Pool`] at threads
//!   {1, 2, 4, 8}. Reported as cells/sec per thread count, plus the
//!   4-thread speedup over 1 thread. The artifact digest is checked
//!   across all four runs — a benchmark that broke determinism would
//!   be measuring the wrong executor.
//! * **Sched chaos**: `--sched` sampled adversarial schedules through
//!   [`run_sched_chaos`], reported as schedules/sec (each schedule
//!   internally runs the campaign six ways: serial reference,
//!   fault-free sweep at {1,2,4,8} threads, chaotic run).
//!
//! `host_cpus` is recorded because the speedup claim is only
//! meaningful where the cores exist: on a single-core container the
//! 4-thread run measures scheduling overhead, not scaling, and CI
//! gates the ≥2x bound only on multi-core runners.

use cpc_bench::cli::Args;
use cpc_cluster::SchedFaultSpace;
use cpc_pool::Pool;
use cpc_workload::run_sched_chaos;
use cpc_workload::service::{artifact_digest, JobService, ServiceConfig};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "usage: bench_pool [--out FILE] [--cells N] [--spin K] [--sched N] [--seed S]";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("bench_pool: {msg}");
    std::process::exit(2);
}

/// One campaign-smoke sample at a fixed thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PoolSample {
    /// Pool width.
    threads: usize,
    /// Cells executed.
    cells: usize,
    /// Wall-clock seconds for the drained campaign.
    wall_s: f64,
    /// Cells per wall-clock second.
    cells_per_sec: f64,
    /// Artifact digest — identical across every row by construction.
    digest: u64,
}

/// The sched-chaos harness rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SchedSample {
    /// Schedules checked.
    schedules: u64,
    /// Sampler seed.
    seed: u64,
    /// Wall-clock seconds for the whole campaign.
    wall_s: f64,
    /// Schedules per wall-clock second.
    schedules_per_sec: f64,
    /// Oracle violations across all schedules (must be 0).
    violations: usize,
}

/// The whole `BENCH_pool.json` artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchPool {
    /// Cores visible to the process; scaling claims only hold where
    /// the cores exist.
    host_cpus: usize,
    /// Spin rounds of integer mixing per cell.
    spin: u64,
    /// Campaign smoke at each sweep thread count.
    campaign: Vec<PoolSample>,
    /// cells/sec at 4 threads over cells/sec at 1 thread.
    speedup_4_threads: f64,
    /// The sched-chaos harness rate.
    sched: SchedSample,
}

/// Deterministic CPU burn: `spin` rounds of the splitmix finalizer.
/// Pure integer mixing — no allocation, no syscalls — so the measured
/// quantity is executor throughput, not the memory subsystem.
fn burn(task: u64, spin: u64) -> u64 {
    let mut x = task.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for _ in 0..spin {
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x << 13;
    }
    x
}

/// Runs the synthetic campaign once at `threads` and returns the
/// sample. Fresh service directory per run: the benchmark measures
/// execution, not cache hits.
fn campaign_sample(dir: &Path, threads: usize, cells: usize, spin: u64) -> PoolSample {
    let dir = dir.join(format!("threads-{threads}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServiceConfig::new(&dir, "bench-pool");
    let journal = cfg.journal_path();
    let key_of = |r: &Vec<f64>| serde_json::to_string(&(r[0] as u64)).expect("key serializes");
    let mut svc = JobService::<Vec<f64>>::open(cfg, key_of)
        .unwrap_or_else(|e| die(format!("cannot open service in {}: {e}", dir.display())));
    let tasks: Vec<u64> = (0..cells as u64).collect();
    let pool = Pool::new(threads);
    let start = Instant::now();
    let outcome = svc
        .run_pooled(&tasks, &pool, |t| {
            (vec![*t as f64, (burn(*t, spin) % 1_000_000) as f64], 0.25)
        })
        .unwrap_or_else(|e| die(format!("campaign at {threads} thread(s) failed: {e}")));
    let wall_s = start.elapsed().as_secs_f64();
    drop(svc);
    if !outcome.drained || outcome.completed != cells {
        die(format!(
            "campaign at {threads} thread(s) did not drain: {}/{} cells",
            outcome.completed, cells
        ));
    }
    let digest = artifact_digest(&journal)
        .unwrap_or_else(|| die(format!("campaign at {threads} thread(s) left no artifact")));
    let _ = std::fs::remove_dir_all(&dir);
    PoolSample {
        threads,
        cells,
        wall_s,
        cells_per_sec: cells as f64 / wall_s.max(1e-9),
        digest,
    }
}

fn main() {
    let mut args = Args::parse("bench_pool", USAGE);
    let out = args
        .value("--out")
        .unwrap_or_else(|| "BENCH_pool.json".to_string());
    let cells: usize = args
        .parsed("--cells", "an integer cell count")
        .unwrap_or(64);
    let spin: u64 = args
        .parsed("--spin", "an integer spin count")
        .unwrap_or(400_000);
    let sched: u64 = args
        .parsed("--sched", "an integer schedule count")
        .unwrap_or(10);
    let seed: u64 = args.parsed("--seed", "an integer seed").unwrap_or(7);
    args.finish();

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scratch = std::env::temp_dir().join(format!("cpc-bench-pool-{}", std::process::id()));
    println!(
        "bench_pool: {cells} cells x {spin} spin rounds on {host_cpus} host cpu(s), \
         {sched} sched schedule(s)"
    );

    // Campaign smoke across the sweep. One untimed warmup at a single
    // thread pays the first-touch costs (directory creation, lazy
    // statics) outside every timed window.
    let _ = campaign_sample(&scratch, 1, cells.min(8), spin);
    let mut campaign = Vec::new();
    for threads in cpc_workload::SWEEP_THREADS {
        let sample = campaign_sample(&scratch, threads, cells, spin);
        println!(
            "  {} thread(s): {:.2} cells/sec ({:.3} s)",
            sample.threads, sample.cells_per_sec, sample.wall_s
        );
        campaign.push(sample);
    }
    let digest0 = campaign[0].digest;
    if campaign.iter().any(|s| s.digest != digest0) {
        die("thread counts disagree on the artifact digest — determinism broke");
    }
    let speedup_4_threads = campaign
        .iter()
        .find(|s| s.threads == 4)
        .map(|s| s.cells_per_sec / campaign[0].cells_per_sec.max(1e-9))
        .unwrap_or(0.0);

    // Sched-chaos harness rate over the same synthetic campaign shape
    // the `chaos --sched` gate runs.
    let space = SchedFaultSpace::new(8);
    let tasks: Vec<u64> = (0..8).collect();
    let key_of = |r: &Vec<f64>| serde_json::to_string(&(r[0] as u64)).expect("key serializes");
    let exec = |t: &u64| -> (Vec<f64>, f64) { (vec![*t as f64, (*t * *t) as f64], 0.25) };
    let start = Instant::now();
    let mut violations = 0usize;
    for index in 0..sched {
        let plan = space.sample(seed, index);
        let dir = scratch.join(format!("sched-{index:05}"));
        let report = run_sched_chaos(&dir, &tasks, "bench-sched", &plan, key_of, exec)
            .unwrap_or_else(|e| die(format!("sched schedule {index} failed: {e}")));
        let _ = std::fs::remove_dir_all(&dir);
        violations += report.violations.len();
    }
    let sched_wall = start.elapsed().as_secs_f64();
    let sched_sample = SchedSample {
        schedules: sched,
        seed,
        wall_s: sched_wall,
        schedules_per_sec: sched as f64 / sched_wall.max(1e-9),
        violations,
    };
    println!(
        "  sched chaos: {:.2} schedules/sec ({:.3} s), {} violation(s)",
        sched_sample.schedules_per_sec, sched_sample.wall_s, violations
    );
    let _ = std::fs::remove_dir_all(&scratch);

    let bench = BenchPool {
        host_cpus,
        spin,
        campaign,
        speedup_4_threads,
        sched: sched_sample,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench artifact serializes");
    if let Err(e) = std::fs::write(&out, json) {
        die(format!("cannot write {out}: {e}"));
    }
    println!(
        "bench_pool: speedup at 4 threads {speedup_4_threads:.2}x on {host_cpus} cpu(s); \
         artifact {out}"
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
