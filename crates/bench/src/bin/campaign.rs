//! Runs the complete reproduction campaign and writes a self-contained
//! artifact directory (figures, findings, factor effects, raw JSON,
//! paper-vs-measured table).
//!
//! ```text
//! cargo run --release -p cpc-bench --bin campaign [--quick] [--out DIR]
//! ```
use cpc_md::EnergyModel;
use cpc_workload::figures::Lab;
use cpc_workload::report::run_campaign;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results".to_string());

    let system = if quick {
        cpc_workload::runner::quick_system()
    } else {
        cpc_workload::runner::myoglobin_shared().clone()
    };
    let mut lab = if quick {
        Lab::custom(
            &system,
            2,
            EnergyModel::Pme(cpc_workload::runner::quick_pme_params()),
        )
    } else {
        Lab::paper(&system)
    };
    let artifacts = run_campaign(&mut lab, &out).expect("write campaign artifacts");
    println!(
        "campaign complete: {}/{} findings hold",
        artifacts.findings_held, artifacts.findings_total
    );
    println!("artifacts in {}:", artifacts.dir.display());
    for p in [
        &artifacts.figures,
        &artifacts.findings,
        &artifacts.factor_effects,
        &artifacts.comparison,
        &artifacts.measurements,
    ] {
        println!("  {}", p.display());
    }
}
