//! Runs the complete reproduction campaign and writes a self-contained
//! artifact directory (figures, findings, factor effects, raw JSON,
//! paper-vs-measured table).
//!
//! ```text
//! cargo run --release -p cpc-bench --bin campaign \
//!     [--quick] [--out DIR] [--resume] [--max-cells N] \
//!     [--workers N] [--shards N] [--kill-after N] [--cache DIR]
//! ```
//!
//! Every completed measurement cell is journaled to `DIR/journal.jsonl`
//! as it finishes. A campaign killed mid-sweep (or stopped by
//! `--max-cells N`, which exits with code 3 after N fresh cells) can be
//! re-run with `--resume`: finished cells are skipped and the final
//! manifest is identical to an uninterrupted run's.
//!
//! Any of `--workers`, `--shards`, `--threads`, `--kill-after` or
//! `--cache` selects **service mode**: the full factorial of
//! measurement cells is driven through the crash-safe [`JobService`] —
//! a leased, sharded work queue plus a content-addressed result cache —
//! before the figures are rendered from the journal. `--kill-after N`
//! kills the service mid-commit after its N-th fresh cell (exit 3);
//! re-running with `--resume` recovers the queue, reclaims the dead
//! incarnation's leases, and produces byte-identical artifacts.
//! `--cache DIR` points the result cache at a shared directory so
//! identical cells flow between campaigns without re-simulation.
//! `--threads N` executes cells on an N-thread work-stealing pool;
//! results still commit in task-index order, so the journal is
//! byte-identical to a `--threads 1` (or plain serial) run.
use cpc_bench::attach_journal;
use cpc_bench::cli::Args;
use cpc_md::{EnergyModel, System};
use cpc_workload::factors::PAPER_PROC_COUNTS;
use cpc_workload::figures::{Lab, EXIT_CELL_BUDGET};
use cpc_workload::full_factorial;
use cpc_workload::report::run_campaign;
use cpc_workload::runner::measure_with_model;
use cpc_workload::service::{task_key, JobService, KillPoint, ServiceConfig};
use cpc_workload::Measurement;
use std::path::Path;

const USAGE: &str = "usage: campaign [--quick] [--out DIR] [--resume] [--max-cells N]\n\
     \x20      [--workers N] [--shards N] [--threads N] [--kill-after N] [--cache DIR]";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(2);
}

/// Drives the full factorial through the crash-safe job service. On a
/// scheduled kill the process exits with [`EXIT_CELL_BUDGET`], exactly
/// like an exhausted `--max-cells` budget; otherwise the queue is
/// drained and `DIR/journal.jsonl` holds every cell in task order,
/// ready for the figure render.
#[allow(clippy::too_many_arguments)]
fn run_service(
    out: &str,
    system: &System,
    steps: usize,
    model: EnergyModel,
    workers: usize,
    shards: usize,
    threads: usize,
    kill_after: Option<usize>,
    cache_dir: Option<String>,
    resume: bool,
) {
    let mut cfg = ServiceConfig::new(out, format!("campaign steps={steps} model={model:?}"));
    cfg.workers = workers.max(1);
    cfg.shards = shards.max(1);
    cfg.kill = kill_after.map(|n| (n, KillPoint::MidCommit));
    cfg.cache = cache_dir.map(Into::into);
    if !resume {
        // A fresh campaign: clear the queue and the journal. The cache
        // survives on purpose — it is content-addressed, so serving a
        // prior campaign's identical cells is sound.
        let _ = std::fs::remove_file(cfg.journal_path());
        for shard in 0..cfg.shards {
            let _ = std::fs::remove_file(cfg.dir.join(format!("queue-{shard:02}.jsonl")));
        }
    }

    let cells = full_factorial(&PAPER_PROC_COUNTS);
    let key_of = |m: &Measurement| task_key(&m.point).expect("experiment point serializes");
    let mut service = JobService::<Measurement>::open(cfg, key_of)
        .unwrap_or_else(|e| die(format!("cannot open job service in {out}: {e}")));
    let exec = |point: &cpc_workload::factors::ExperimentPoint| {
        let m = measure_with_model(system, *point, steps, model);
        let elapsed = m.energy_time();
        (m, elapsed)
    };
    let outcome = if threads > 1 {
        service.run_pooled(&cells, &cpc_pool::Pool::new(threads), exec)
    } else {
        service.run(&cells, exec)
    }
    .unwrap_or_else(|e| die(format!("job service failed: {e}")));

    println!(
        "service: {}/{} cells durable ({} executed, {} cache hit(s), {} pre-seeded)",
        outcome.completed,
        outcome.total,
        outcome.executed,
        outcome.cache_hits,
        outcome.journal_preseeded
    );
    if outcome.reclaimed > 0 || outcome.dropped_lines > 0 || outcome.duplicates_dropped > 0 {
        println!(
            "service: recovered {} dead lease(s), {} torn line(s), {} duplicate record(s)",
            outcome.reclaimed, outcome.dropped_lines, outcome.duplicates_dropped
        );
    }
    if outcome.killed {
        eprintln!(
            "service killed mid-commit after {} fresh cell(s); \
             re-run with --resume to continue",
            outcome.executed
        );
        std::process::exit(EXIT_CELL_BUDGET);
    }
    if !outcome.drained || outcome.abandoned > 0 {
        eprintln!(
            "service did not drain: {} cell(s) dead-lettered",
            outcome.abandoned
        );
        std::process::exit(1);
    }
}

fn main() {
    let mut args = Args::parse("campaign", USAGE);
    let quick = args.flag("--quick");
    let resume = args.flag("--resume");
    let out = args.value("--out").unwrap_or_else(|| "results".to_string());
    let max_cells: Option<usize> = args.parsed("--max-cells", "an integer cell count");
    let workers: Option<usize> = args.parsed("--workers", "an integer worker count");
    let shards: Option<usize> = args.parsed("--shards", "an integer shard count");
    let threads: Option<usize> = args.parsed("--threads", "an integer thread count");
    let kill_after: Option<usize> = args.parsed("--kill-after", "an integer fresh-cell count");
    let cache_dir: Option<String> = args.value("--cache");
    args.finish();
    let service_mode = workers.is_some()
        || shards.is_some()
        || threads.is_some()
        || kill_after.is_some()
        || cache_dir.is_some();

    let system = if quick {
        cpc_workload::runner::quick_system()
    } else {
        cpc_workload::runner::myoglobin_shared().clone()
    };
    let (steps, model) = if quick {
        (
            2,
            EnergyModel::Pme(cpc_workload::runner::quick_pme_params()),
        )
    } else {
        (
            cpc_workload::runner::PAPER_STEPS,
            EnergyModel::Pme(cpc_workload::runner::paper_pme_params()),
        )
    };

    if let Err(e) = std::fs::create_dir_all(&out) {
        die(format!("cannot create {out}: {e}"));
    }
    if service_mode {
        run_service(
            &out,
            &system,
            steps,
            model,
            workers.unwrap_or(1),
            shards.unwrap_or(4),
            threads.unwrap_or(1).max(1),
            kill_after,
            cache_dir,
            resume,
        );
    }

    let mut lab = if quick {
        Lab::custom(&system, steps, model)
    } else {
        Lab::paper(&system)
    };
    let journal_path = Path::new(&out).join("journal.jsonl");
    let Some(journal_str) = journal_path.to_str() else {
        die(format!(
            "journal path {} is not valid UTF-8",
            journal_path.display()
        ));
    };
    // After a drained service run the journal holds every cell: the
    // render below re-measures nothing, it only reads the artifact.
    attach_journal(&mut lab, journal_str, resume || service_mode);
    if let Some(cells) = max_cells {
        lab.set_cell_budget(cells);
    }

    let artifacts = run_campaign(&mut lab, &out)
        .unwrap_or_else(|e| die(format!("cannot write campaign artifacts under {out}: {e}")));
    println!(
        "campaign complete: {}/{} findings hold",
        artifacts.findings_held, artifacts.findings_total
    );
    println!("artifacts in {}:", artifacts.dir.display());
    for p in [
        &artifacts.figures,
        &artifacts.findings,
        &artifacts.factor_effects,
        &artifacts.comparison,
        &artifacts.measurements,
    ] {
        println!("  {}", p.display());
    }
    println!("  {}", journal_path.display());
}
