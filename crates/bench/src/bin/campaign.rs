//! Runs the complete reproduction campaign and writes a self-contained
//! artifact directory (figures, findings, factor effects, raw JSON,
//! paper-vs-measured table).
//!
//! ```text
//! cargo run --release -p cpc-bench --bin campaign \
//!     [--quick] [--out DIR] [--resume] [--max-cells N]
//! ```
//!
//! Every completed measurement cell is journaled to `DIR/journal.jsonl`
//! as it finishes. A campaign killed mid-sweep (or stopped by
//! `--max-cells N`, which exits with code 3 after N fresh cells) can be
//! re-run with `--resume`: finished cells are skipped and the final
//! manifest is identical to an uninterrupted run's.
use cpc_bench::attach_journal;
use cpc_md::EnergyModel;
use cpc_workload::figures::Lab;
use cpc_workload::report::run_campaign;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results".to_string());
    let max_cells: Option<usize> = args
        .iter()
        .position(|a| a == "--max-cells")
        .map(|i| match args.get(i + 1).map(|n| n.parse()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("--max-cells requires an integer cell count");
                std::process::exit(2);
            }
        });

    let system = if quick {
        cpc_workload::runner::quick_system()
    } else {
        cpc_workload::runner::myoglobin_shared().clone()
    };
    let mut lab = if quick {
        Lab::custom(
            &system,
            2,
            EnergyModel::Pme(cpc_workload::runner::quick_pme_params()),
        )
    } else {
        Lab::paper(&system)
    };

    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {out}: {e}");
        std::process::exit(2);
    }
    let journal_path = Path::new(&out).join("journal.jsonl");
    let Some(journal_str) = journal_path.to_str() else {
        eprintln!("journal path {} is not valid UTF-8", journal_path.display());
        std::process::exit(2);
    };
    attach_journal(&mut lab, journal_str, resume);
    if let Some(cells) = max_cells {
        lab.set_cell_budget(cells);
    }

    let artifacts = run_campaign(&mut lab, &out).unwrap_or_else(|e| {
        eprintln!("cannot write campaign artifacts under {out}: {e}");
        std::process::exit(2);
    });
    println!(
        "campaign complete: {}/{} findings hold",
        artifacts.findings_held, artifacts.findings_total
    );
    println!("artifacts in {}:", artifacts.dir.display());
    for p in [
        &artifacts.figures,
        &artifacts.findings,
        &artifacts.factor_effects,
        &artifacts.comparison,
        &artifacts.measurements,
    ] {
        println!("  {}", p.display());
    }
    println!("  {}", journal_path.display());
}
