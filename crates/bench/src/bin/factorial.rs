//! Regenerates the full factorial design table (paper Section 3.1).
use cpc_bench::FigureArgs;

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let mut lab = args.lab(&system);
    println!("{}", cpc_workload::figures::factorial_table(&mut lab));
    args.finish(&lab);
}
