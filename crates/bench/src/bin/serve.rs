//! The campaign gateway as a process: serves the overload-safe
//! multi-tenant HTTP/JSON gateway over real measurement cells, plus a
//! tiny raw-TCP client for CI smokes.
//!
//! ```text
//! cargo run --release -p cpc-bench --bin serve -- \
//!     --root DIR [--port N] [--quick] [--kill-after N]
//! cargo run --release -p cpc-bench --bin serve -- --port N --get PATH
//! cargo run --release -p cpc-bench --bin serve -- --port N --post PATH --body JSON
//! cargo run --release -p cpc-bench --bin serve -- --demo-campaign
//! ```
//!
//! * **Server mode** (default): binds `127.0.0.1:PORT` (`--port 0`
//!   picks a free port; the chosen address is printed first), opens
//!   the gateway over `--root` — recovering any campaign already
//!   durable there — and serves submissions whose `cells` name
//!   processor counts; each count expands to the full factor space,
//!   so a submission of `[1,2,4,8]` is exactly the direct
//!   `campaign --workers` task list and the resulting journal is
//!   byte-identical to the direct path's. A pump thread advances
//!   DRR-granted cells as they arrive — parked on a condvar between
//!   grants, woken by each handled request — executing them on an
//!   N-thread work-stealing pool under `--threads N` (default 1;
//!   results commit in task-index order, so the journal is
//!   byte-identical at every thread count). Connections are accepted
//!   by a bounded worker pool (the global `cpc_pool` width, clamped
//!   to 1..=8) that reads requests and writes responses outside the
//!   gateway lock, so a slow client stalls one worker, not the
//!   server. `--kill-after N` arms the
//!   service kill switch: the process exits with code 3 after its
//!   N-th fresh cell, and restarting with the same `--root` resumes
//!   from the durable queue alone.
//! * **Client mode** (`--get` / `--post`): one raw-TCP HTTP request
//!   against a running server; the response is printed. Exit 0 on
//!   2xx, 4 on a shed 429/503/507 (retry later), 1 on any other
//!   status.
//! * **`--enospc-while FILE`** (server mode): every write the gateway
//!   makes fails with ENOSPC while FILE exists — the CI disk-pressure
//!   smoke touches the file, watches a submission shed 507 over the
//!   wire, removes it, and watches the same campaign complete.
//! * **`--demo-campaign`**: prints a submission body for the quick
//!   campaign, ready to pipe into `--post /campaigns --body`.
use cpc_bench::cli::Args;
use cpc_gateway::{CampaignModel, Gateway, GatewayConfig, TcpConn};
use cpc_md::EnergyModel;
use cpc_workload::factors::ExperimentPoint;
use cpc_workload::figures::EXIT_CELL_BUDGET;
use cpc_workload::full_factorial;
use cpc_workload::runner::measure_with_model;
use cpc_workload::service::{task_key, KillPoint};
use cpc_workload::Measurement;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const USAGE: &str = "usage: serve --root DIR [--port N] [--quick] [--threads N] [--kill-after N]\n\
     \x20      [--enospc-while FILE]\n\
     \x20      | --port N --get PATH | --port N --post PATH --body JSON\n\
     \x20      | --demo-campaign";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(2);
}

/// The real campaign model: cells are experiment points, executing
/// one runs the measurement, and the protocol string matches the
/// direct `campaign` binary so journals are interchangeable.
struct MeasurementModel {
    system: cpc_md::System,
    steps: usize,
    model: EnergyModel,
}

impl CampaignModel for MeasurementModel {
    type Task = ExperimentPoint;
    type Result = Measurement;

    fn parse_cells(&self, cells: &Value) -> Result<Vec<ExperimentPoint>, String> {
        let arr = cells
            .as_array()
            .ok_or_else(|| "cells must be a JSON array of processor counts".to_string())?;
        let mut counts = Vec::new();
        for v in arr {
            let n = v
                .as_u64()
                .ok_or_else(|| "processor counts must be positive integers".to_string())?;
            if n == 0 || n > 64 {
                return Err(format!("processor count {n} outside 1..=64"));
            }
            counts.push(n as usize);
        }
        if counts.is_empty() {
            return Err("cells must name at least one processor count".to_string());
        }
        Ok(full_factorial(&counts))
    }

    fn key_of(r: &Measurement) -> String {
        task_key(&r.point).expect("experiment point serializes")
    }

    fn exec(&self, point: &ExperimentPoint) -> (Measurement, f64) {
        let m = measure_with_model(&self.system, *point, self.steps, self.model);
        let elapsed = m.energy_time();
        (m, elapsed)
    }
}

/// One raw-TCP request against a running server; returns the process
/// exit code. Raw on purpose: the smoke must see exactly what a
/// from-scratch client sees, not what our own Conn plumbing shows.
fn client(port: u16, method: &str, path: &str, body: Option<&str>) -> i32 {
    let stream = TcpStream::connect(("127.0.0.1", port))
        .unwrap_or_else(|e| die(format!("cannot connect to 127.0.0.1:{port}: {e}")));
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("a finite timeout");
    let mut stream = stream;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    if let Err(e) = stream.write_all(request.as_bytes()) {
        die(format!("cannot send request: {e}"));
    }
    let mut response = Vec::new();
    if let Err(e) = stream.read_to_end(&mut response) {
        die(format!("cannot read response: {e}"));
    }
    let text = String::from_utf8_lossy(&response);
    print!("{text}");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die("response carried no status line"));
    match status {
        200..=299 => 0,
        429 | 503 | 507 => 4,
        _ => 1,
    }
}

fn serve(
    root: &str,
    port: u16,
    quick: bool,
    threads: usize,
    kill_after: Option<usize>,
    enospc_while: Option<String>,
) -> ! {
    let system = if quick {
        cpc_workload::runner::quick_system()
    } else {
        cpc_workload::runner::myoglobin_shared().clone()
    };
    let (steps, model) = if quick {
        (
            2,
            EnergyModel::Pme(cpc_workload::runner::quick_pme_params()),
        )
    } else {
        (
            cpc_workload::runner::PAPER_STEPS,
            EnergyModel::Pme(cpc_workload::runner::paper_pme_params()),
        )
    };
    let mut cfg = GatewayConfig::new(root, format!("campaign steps={steps} model={model:?}"));
    cfg.threads = threads.max(1);
    cfg.kill = kill_after.map(|n| (n, KillPoint::MidCommit));
    let deadline = cfg.limits.deadline;
    let model = MeasurementModel {
        system,
        steps,
        model,
    };
    let gw = match enospc_while {
        Some(trigger) => {
            eprintln!("serve: disk fills while {trigger} exists");
            Gateway::open_on(Arc::new(cpc_vfs::EnospcTrigger::new(trigger)), cfg, model)
        }
        None => Gateway::open(cfg, model),
    }
    .unwrap_or_else(|e| die(format!("cannot open gateway in {root}: {e}")));

    let listener = TcpListener::bind(("127.0.0.1", port))
        .unwrap_or_else(|e| die(format!("cannot bind 127.0.0.1:{port}: {e}")));
    let addr = listener
        .local_addr()
        .expect("a bound socket has an address");
    // The first line of output is the contract with wrappers: the
    // chosen address, even under --port 0.
    println!("serve: listening on {addr} (root {root})");

    let gw = Arc::new(Mutex::new(gw));
    // Pump wakeup: every handled request rings the condvar (a new
    // submission means new work; any other request still deserves
    // prompt progress on whatever is queued), so the pump parks
    // between grants instead of sleep-polling. The timed wait is the
    // liveness backstop: stalled-campaign revival and retry horizons
    // advance on pump calls alone, with no request to ring the bell.
    let wake = Arc::new((Mutex::new(false), Condvar::new()));
    let pump_gw = Arc::clone(&gw);
    let pump_wake = Arc::clone(&wake);
    std::thread::spawn(move || loop {
        let report = pump_gw.lock().expect("gateway lock").pump(4);
        if report.killed {
            eprintln!(
                "serve: injected kill fired; exiting — restart with the same --root to resume"
            );
            std::process::exit(EXIT_CELL_BUDGET);
        }
        if report.granted > 0 {
            // Work flowed: pump again immediately.
            continue;
        }
        let (pending, bell) = &*pump_wake;
        let mut rung = pending.lock().expect("pump wake lock");
        while !*rung {
            let (guard, timeout) = bell
                .wait_timeout(rung, Duration::from_millis(500))
                .expect("pump wake lock");
            rung = guard;
            if timeout.timed_out() {
                break;
            }
        }
        *rung = false;
    });

    // Bounded accept-worker pool: `accept` is thread-safe on a shared
    // listener, so each worker loops accept -> handle -> ring the pump
    // bell. Requests are read and responses written outside the
    // gateway lock (`handle_shared`), so one slowloris peer stalls
    // only its own worker; routing itself stays serialized, which
    // keeps admission order — and therefore the journal bytes —
    // identical to the single-threaded accept loop's.
    let workers = cpc_pool::global().threads().clamp(1, 8);
    eprintln!("serve: {workers} accept worker(s)");
    let listener = &listener;
    cpc_pool::scope(|s| {
        for _ in 0..workers {
            let gw = Arc::clone(&gw);
            let wake = Arc::clone(&wake);
            s.spawn(move || loop {
                let Ok((stream, _)) = listener.accept() else {
                    continue;
                };
                let mut conn = TcpConn::new(stream, deadline);
                Gateway::handle_shared(&gw, &mut conn);
                let (pending, bell) = &*wake;
                *pending.lock().expect("pump wake lock") = true;
                bell.notify_one();
            });
        }
    });
    unreachable!("accept workers never exit");
}

fn main() {
    let mut args = Args::parse("serve", USAGE);
    if args.flag("--demo-campaign") {
        args.finish();
        println!("{{\"tenant\":\"ci\",\"cells\":[1,2,4,8]}}");
        return;
    }
    let port: u16 = args.parsed("--port", "a TCP port").unwrap_or(7070);
    let get = args.value("--get");
    let post = args.value("--post");
    let body = args.value("--body");
    if let Some(path) = get {
        if post.is_some() || body.is_some() {
            args.conflict("--get excludes --post/--body");
        }
        args.finish();
        std::process::exit(client(port, "GET", &path, None));
    }
    if let Some(path) = post {
        let Some(body) = body else {
            args.conflict("--post requires --body JSON");
        };
        args.finish();
        std::process::exit(client(port, "POST", &path, Some(&body)));
    }
    if body.is_some() {
        args.conflict("--body without --post");
    }
    let root = args
        .value("--root")
        .unwrap_or_else(|| "results/serve".to_string());
    let quick = args.flag("--quick");
    let threads: usize = args
        .parsed("--threads", "an integer thread count")
        .unwrap_or(1);
    let kill_after: Option<usize> = args.parsed("--kill-after", "an integer fresh-cell count");
    let enospc_while = args.value("--enospc-while");
    args.finish();
    if let Err(e) = std::fs::create_dir_all(&root) {
        die(format!("cannot create {root}: {e}"));
    }
    serve(&root, port, quick, threads, kill_after, enospc_while);
}
