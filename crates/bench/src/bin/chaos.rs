//! Chaos campaign driver: samples deterministic fault schedules,
//! checks every invariant oracle against each, and shrinks any failure
//! to a minimal replayable reproducer.
//!
//! ```text
//! cargo run -p cpc-bench --bin chaos -- --schedules 50 --seed 7
//!     [--soak] [--resume] [--out DIR] [--ranks P] [--steps N]
//! cargo run -p cpc-bench --bin chaos -- --service 100 --seed 11 [--out DIR]
//! cargo run -p cpc-bench --bin chaos -- --plant [--out DIR]
//! cargo run -p cpc-bench --bin chaos -- --replay FILE [--out DIR]
//! cargo run -p cpc-bench --bin chaos -- --straggle-smoke [--out DIR]
//! ```
//!
//! * **Campaign mode** (default): checks schedules `0..N` sampled from
//!   `(seed, index)`; every verdict is journaled to `DIR/chaos.jsonl`
//!   through the checksummed [`Journal`], so `--resume` skips already
//!   checked schedules after a kill. Each failing schedule is
//!   minimized and written as `DIR/repro-IIIII.json`. Exit 0 when every
//!   oracle held, 1 otherwise. Verdicts and reproducers are fully
//!   deterministic: the same seed produces byte-identical artifacts on
//!   every rerun.
//! * **Soak mode** (`--soak`): ignores the schedule budget and scans
//!   indices upward indefinitely, stopping (exit 1) at the first
//!   violation — kill it when you have soaked long enough.
//! * **Plant mode** (`--plant`): self-test of the oracles and the
//!   minimizer against the pre-ABFT engine. Scans the campaign sampler
//!   for a schedule carrying a gray-zone SDC flip (neither benign nor
//!   watchdog-visible, buried in sampled noise events), checks it with
//!   the ABFT checksums disarmed, asserts an oracle catches it,
//!   minimizes, and asserts the reproducer has at most 3 events and
//!   still fails on replay. Exit 0 exactly when all of that holds.
//! * **Replay mode** (`--replay FILE`): re-checks a reproducer
//!   artifact. Exit 0 when it still provokes a violation (it
//!   reproduces), 1 when it no longer does.
//! * **Service mode** (`--service N`): chaos at the *campaign job
//!   service* layer instead of the MD engine. Samples N service fault
//!   schedules — worker kills mid-cell, orchestrator kills mid-commit,
//!   torn queue-shard and results-journal writes, stale leases, cache
//!   bit flips — runs each campaign through
//!   [`run_service_chaos`](cpc_workload::service::run_service_chaos),
//!   and checks the two service oracles: no lost cell / no unlicensed
//!   re-execution, and byte-identical artifacts after kill-resume.
//!   Verdicts are journaled to `DIR/service_chaos.jsonl`; `--resume`
//!   skips checked schedules. Exit 0 when every schedule passed.
//! * **Disk mode** (`--disk N`): chaos at the *filesystem* layer.
//!   Samples N disk fault schedules — transient and persistent ENOSPC,
//!   EIO on write and fsync, short writes, rename failures, power cuts
//!   with and without writeback reordering — runs each campaign
//!   through [`run_disk_chaos`](cpc_workload::run_disk_chaos) on a
//!   simulated filesystem, and checks the five crash-consistency
//!   oracles: no acked-then-lost, no corrupt-accept, no panic, no
//!   post-failed-fsync trust, and byte-identical artifacts once faults
//!   clear. Verdicts are journaled to `DIR/disk_chaos.jsonl`;
//!   `--resume` skips checked schedules. Exit 0 when every schedule
//!   passed.
//! * **Transport mode** (`--transport N`): chaos at the *HTTP gateway*
//!   layer. Samples N transport fault schedules — malformed and
//!   truncated requests, slowloris readers, mid-response disconnects,
//!   connection floods, gateway kills — drives each campaign through
//!   [`run_gateway_chaos`](cpc_gateway::run_gateway_chaos), and checks
//!   the six gateway oracles: no panic, no fd leak, no deadline
//!   overrun, no lost cell, no doubly-executed cell, byte-identical
//!   artifacts versus the direct (no-gateway) reference. Verdicts are
//!   journaled to `DIR/transport_chaos.jsonl`; `--resume` skips
//!   checked schedules. Exit 0 when every schedule passed.
//! * **Sched mode** (`--sched N`): chaos at the *work-stealing
//!   executor* layer. Samples N adversarial thread schedules — steal
//!   storms, worker pauses at yield points, a worker panic mid-task, a
//!   mid-campaign thread-count change, a lease expiry racing a slow
//!   worker — runs each campaign through
//!   [`run_sched_chaos`](cpc_workload::run_sched_chaos) (a serial
//!   reference, a fault-free sweep over threads {1,2,4,8}, then the
//!   chaotic run), and checks the cross-thread determinism oracles:
//!   byte-identical artifacts at every thread count and interleaving,
//!   no lost or doubly-committed task, no deadlock, panicked workers
//!   reclaimed through the lease path, the pool never poisoned, and
//!   every stale lease rejected. Verdicts are journaled to
//!   `DIR/sched_chaos.jsonl`; `--resume` skips checked schedules.
//!   Exit 0 when every schedule passed.
//! * **Straggle-smoke mode** (`--straggle-smoke`): CI gate for
//!   degraded-mode rebalancing. Runs a compute-dominated workload
//!   under a persistent straggler, asserts the mitigation contract
//!   (zero rollbacks, no eviction, adaptive overhead below the ratio
//!   bound of the static-decomposition overhead), and journals the
//!   verdict to `DIR/straggle_smoke.json` — fully deterministic, so CI
//!   runs it twice and `cmp`s the artifacts.
//! * **ABFT-smoke mode** (`--abft-smoke`): CI gate for the ABFT layer.
//!   The planted gray-zone schedule must pass every oracle with the
//!   checksums armed (detected and repaired in place), must fail and
//!   minimize to <= 3 events with them disarmed, and arming must cost
//!   at most 5% wall clock on the compute-dominated workload while
//!   leaving fault-free physics bit-identical. Journals
//!   `DIR/abft_smoke.json`; deterministic, CI `cmp`s two runs.
//! * **Composed mode** (`--composed N`): the cross-layer conductor.
//!   Samples N [`ComposedPlan`]s — a joint schedule drawing every
//!   layer's faults from its own seeded sub-channel, so masking one
//!   layer never perturbs another's draws — and drives each through
//!   [`run_composed_chaos`](cpc_gateway::run_composed_chaos) with all
//!   five layers (disk, transport, sched, service, MD) armed at once.
//!   Every per-layer ledger is absorbed into one [`CrossLedger`] and
//!   checked against the union of the single-layer oracles plus the
//!   interaction oracles: global counted executions within the
//!   composed allowance, no acked-then-lost across a disk fault + a
//!   kill, and the drained artifact byte-identical to a fault-free
//!   serial reference. Failures minimize layer-first (drop whole
//!   layers, then events within survivors) and land in
//!   `DIR/repro-cross-IIIII.json`. Verdicts journal to
//!   `DIR/composed_chaos.jsonl`; `--resume` skips checked schedules.
//! * **Plant-composed mode** (`--plant-composed [--corpus DIR]`):
//!   self-test of the cross-layer oracles and the layer-first
//!   minimizer. Buries a gray-zone SDC flip under sampled noise from
//!   the other four layers, asserts the conductor convicts it, that
//!   minimization prunes every noise layer, and that the pin replays
//!   with a byte-identical verdict. With `--corpus DIR` the pin and a
//!   passing determinism pin are (re)planted into the checked-in
//!   reproducer corpus.
//! * **Replay-corpus mode** (`--replay-corpus DIR`): CI gate over the
//!   reproducer corpus. Replays every `*.json` cross reproducer in
//!   DIR and exits 0 only if each one's verdict (pass or the recorded
//!   failure) is byte-identical to what the corpus recorded.
//! * **Bench mode** (`--bench [--out DIR]`): times the chaos harnesses
//!   themselves — schedules/second for each single-layer mode and the
//!   composed conductor — asserting every timed schedule passes its
//!   oracles, and writes `DIR/BENCH_chaos.json`.

use cpc_bench::cli::{open_verdict_journal, Args};
use cpc_charmm::chaos::{
    flatten, minimize_composed, ChaosHarness, CrossLedger, CrossReproducer, DiskLedger,
    GatewayLedger, Reproducer, SchedLedger, ScheduleReport, ServiceLedger,
};
use cpc_charmm::{
    run_parallel_md_faulty, AbftConfig, DurableConfig, FaultConfig, MdConfig, RecoveryConfig,
};
use cpc_cluster::{
    sdc_class, ClusterConfig, ComposedFaultSpace, ComposedPlan, DiskFaultSpace, FaultPlan,
    FaultSpace, Layer, NetworkKind, SchedFaultSpace, SdcClass, SdcTarget, ServiceFaultSpace,
    TransportFaultSpace, LAYERS,
};
use cpc_gateway::{demo_cells, demo_flood_cells, run_composed_chaos, run_gateway_chaos, DemoModel};
use cpc_md::EnergyModel;
use cpc_mpi::Middleware;
use cpc_vfs::DiskFaultPlan;
use cpc_workload::run_disk_chaos;
use cpc_workload::run_sched_chaos;
use cpc_workload::service::run_service_chaos;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// One journaled campaign verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Verdict {
    /// Campaign seed.
    seed: u64,
    /// Schedule index within the campaign.
    index: u64,
    /// The oracle report.
    report: ScheduleReport,
}

/// Real-time stall budget (seconds) for every chaotic run: a schedule
/// that would hang forever instead surfaces `SimError::Stalled`, which
/// the termination oracle reports as a violation.
const STALL_TIMEOUT: f64 = 20.0;

const USAGE: &str = "usage: chaos [--schedules N] [--seed S] [--soak] [--resume] [--out DIR]\n\
     \x20      [--journal FILE] [--ranks P] [--steps N]\n\
     \x20      | --service N | --transport N | --disk N | --sched N | --composed N\n\
     \x20      | --plant | --plant-composed | --replay FILE | --replay-corpus DIR\n\
     \x20      | --corpus DIR | --straggle-smoke | --abft-smoke | --bench";

/// Exit 2 (usage/environment error) with a message — the typed
/// replacement for `expect` on malformed inputs and I/O failures.
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("chaos: {msg}");
    std::process::exit(2);
}

/// The flags every journaled campaign mode shares: where artifacts
/// go, which seed keys the sampler, whether to resume the verdict
/// journal, and an optional journal-path override replacing the
/// mode's default `DIR/<mode>_chaos.jsonl`.
struct ModeOpts {
    out: PathBuf,
    seed: u64,
    resume: bool,
    journal: Option<PathBuf>,
}

impl ModeOpts {
    fn journal_path(&self, default_name: &str) -> PathBuf {
        self.journal
            .clone()
            .unwrap_or_else(|| self.out.join(default_name))
    }
}

/// Splits a recovered journal prefix into the schedules already
/// checked under `seed` and the ones among them that failed — the
/// resume bookkeeping every campaign mode repeats.
fn split_prior<V>(
    prior: &[V],
    seed: u64,
    key: impl Fn(&V) -> (u64, u64),
    passed: impl Fn(&V) -> bool,
) -> (HashSet<u64>, Vec<u64>) {
    let done = prior
        .iter()
        .map(&key)
        .filter(|k| k.0 == seed)
        .map(|k| k.1)
        .collect();
    let failures = prior
        .iter()
        .filter(|v| key(v).0 == seed && !passed(v))
        .map(|v| key(v).1)
        .collect();
    (done, failures)
}

/// The chaos workload: a small water box on a uniprocessor GigE
/// cluster — large enough to exercise every fault path, small enough
/// that a campaign of hundreds of schedules (each run three ways)
/// finishes in CI time.
fn workload(ranks: usize, steps: usize) -> (cpc_md::System, MdConfig) {
    let mut sys = cpc_md::builder::water_box(2, 3.1);
    cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
    sys.assign_velocities(150.0, 3);
    let cluster =
        ClusterConfig::uni(ranks, NetworkKind::ScoreGigE).with_stall_timeout(STALL_TIMEOUT);
    let cfg = MdConfig {
        steps,
        ..MdConfig::paper_protocol(EnergyModel::Classic, Middleware::Mpi, cluster)
    };
    (sys, cfg)
}

fn make_harness(ranks: usize, steps: usize) -> ChaosHarness {
    let (sys, cfg) = workload(ranks, steps);
    let scratch = std::env::temp_dir().join(format!("cpc-chaos-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    ChaosHarness::new(sys, cfg, scratch)
        .unwrap_or_else(|e| die(format!("fault-free golden run failed: {e}")))
}

/// An ABFT-disarmed harness: the pre-ABFT engine the plant self-test
/// must run against, because an armed engine repairs the planted flip
/// and the oracles (correctly) find nothing to catch.
fn make_disarmed_harness(ranks: usize, steps: usize) -> ChaosHarness {
    let (sys, cfg) = workload(ranks, steps);
    let scratch =
        std::env::temp_dir().join(format!("cpc-chaos-disarmed-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    ChaosHarness::with_options(
        sys,
        cfg,
        scratch,
        RecoveryConfig::default(),
        AbftConfig::default(),
    )
    .unwrap_or_else(|e| die(format!("fault-free golden run failed: {e}")))
}

/// The planted known-bad schedule, drawn from the campaign sampler
/// itself: scan `(seed, 0..)` for the first sampled plan carrying an
/// undetectable-class position flip in the mid-mantissa band — far
/// above the benign bound, far below anything the numerical watchdog
/// notices — then strip the crashes (a crash earns recovery tolerance
/// and makes the corruption non-silent) and every other flip, keeping
/// the sampled loss/straggler/degradation/storage noise for the
/// minimizer to chew through. Deterministic in `seed`.
fn planted_from_space(space: &FaultSpace, seed: u64) -> (u64, FaultPlan) {
    for index in 0u64.. {
        let plan = space.sample(seed, index);
        let Some(flip) = plan.sdc.iter().copied().find(|f| {
            sdc_class(f) == SdcClass::Undetectable
                && f.target == SdcTarget::Positions
                && (40..=50).contains(&f.bit)
        }) else {
            continue;
        };
        let mut planted = plan.clone();
        planted.crashes.clear();
        planted.sdc = vec![flip];
        return (index, planted);
    }
    unreachable!("the sampler draws the gray zone");
}

fn write_reproducer(out: &Path, name: &str, repro: &Reproducer) -> PathBuf {
    let path = out.join(name);
    if let Err(e) = std::fs::write(&path, repro.to_json()) {
        die(format!("cannot write {}: {e}", path.display()));
    }
    path
}

fn plant_mode(out: &Path) -> i32 {
    let h = make_disarmed_harness(4, 8);
    let space = FaultSpace::new(
        h.cfg().cluster.ranks,
        h.cfg().cluster.nodes(),
        8,
        h.golden_wall(),
        24,
    );
    let (index, plan) = planted_from_space(&space, 7);
    println!(
        "planted schedule: campaign index {index}, gray flip {:?} plus {} noise event(s)",
        plan.sdc[0],
        flatten(&plan).len() - 1
    );
    let report = h.check(&plan);
    if report.passed() {
        eprintln!("PLANT FAILURE: the known-bad schedule passed every oracle");
        return 1;
    }
    println!(
        "planted schedule caught: {} violation(s), first: {}",
        report.violations.len(),
        report.violations[0]
    );
    let repro = h.minimize_to_reproducer(&plan, 7, index);
    let path = write_reproducer(out, "planted_repro.json", &repro);
    println!(
        "minimized {} -> {} event(s) in {} probe(s): {}",
        flatten(&plan).len(),
        repro.events,
        repro.probes,
        path.display()
    );
    if repro.events > 3 {
        eprintln!(
            "PLANT FAILURE: reproducer kept {} events (> 3)",
            repro.events
        );
        return 1;
    }
    // The artifact must replay: parse it back and re-provoke.
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(format!("cannot read {}: {e}", path.display())));
    let parsed = Reproducer::from_json(&text)
        .unwrap_or_else(|e| die(format!("cannot parse {}: {e}", path.display())));
    let replay = h.check(&parsed.plan);
    if replay.passed() {
        eprintln!("PLANT FAILURE: minimized reproducer no longer fails");
        return 1;
    }
    println!(
        "replay of minimized reproducer still fails: {}",
        replay.violations[0]
    );
    0
}

/// The straggle-smoke workload: a bigger water box than the campaign's
/// so the run is compute-dominated. On the comm-bound campaign box a
/// slow CPU hides entirely behind the collective incasts (static
/// overhead of a 2x straggler is ~0.3%) and there is nothing for
/// rebalancing to reclaim; the bigger box exposes the straggler to the
/// decomposition, which is the regime this smoke gates.
fn compute_workload(ranks: usize, steps: usize) -> (cpc_md::System, MdConfig) {
    let mut sys = cpc_md::builder::water_box(3, 3.1);
    cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
    sys.assign_velocities(150.0, 3);
    let cluster =
        ClusterConfig::uni(ranks, NetworkKind::ScoreGigE).with_stall_timeout(STALL_TIMEOUT);
    let cfg = MdConfig {
        steps,
        ..MdConfig::paper_protocol(EnergyModel::Classic, Middleware::Mpi, cluster)
    };
    (sys, cfg)
}

/// The deterministic artifact the straggle smoke journals: the oracle
/// report plus the overhead comparison the CI log wants to show.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StraggleSmoke {
    slowdown: f64,
    golden_wall: f64,
    adaptive_overhead: f64,
    static_overhead: f64,
    ratio: f64,
    report: ScheduleReport,
}

fn straggle_smoke_mode(out: &Path) -> i32 {
    const SLOWDOWN: f64 = 2.5;
    const RATIO_BOUND: f64 = cpc_charmm::chaos::ADAPTIVE_OVERHEAD_RATIO;
    let (sys, cfg) = compute_workload(4, 8);
    let scratch = std::env::temp_dir().join(format!("cpc-straggle-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let h = ChaosHarness::new(sys, cfg, &scratch)
        .unwrap_or_else(|e| die(format!("fault-free golden run failed: {e}")));

    let plan = FaultPlan::none().with_straggler(0, SLOWDOWN);
    let report = h.check(&plan);
    let rollbacks = report.recoveries + report.watchdog_trips;
    let mut bad = Vec::new();
    if !report.passed() {
        for v in &report.violations {
            bad.push(format!("oracle violation: {v}"));
        }
    }
    if rollbacks > 0 {
        bad.push(format!("{rollbacks} rollback episode(s); expected none"));
    }
    if report.evictions > 0 {
        bad.push(format!(
            "{} eviction(s); a {SLOWDOWN}x straggler is rebalance territory",
            report.evictions
        ));
    }
    if report.rebalances == 0 {
        bad.push("the ladder never re-cut the partition".to_string());
    }

    // Static-decomposition reference for the CI log: same plan, same
    // checkpointing, rebalancing off. check() already ran this
    // comparison inside the mitigation oracle; repeating it here puts
    // the actual overheads in the artifact.
    let (sys2, cfg2) = compute_workload(4, 8);
    // ABFT armed to match the harness: the overhead ratio must compare
    // like against like.
    let static_fault = FaultConfig::new(plan)
        .with_recovery(RecoveryConfig {
            rebalance: false,
            ..RecoveryConfig::default()
        })
        .with_abft(AbftConfig::armed())
        .with_durable(DurableConfig::new(scratch.join("static-ref")).with_keep(16));
    let st = run_parallel_md_faulty(&sys2, &cfg2, &static_fault)
        .unwrap_or_else(|e| die(format!("static reference run failed: {e}")));
    let adaptive_overhead = report.wall_time / h.golden_wall() - 1.0;
    let static_overhead = st.report.wall_time / h.golden_wall() - 1.0;
    let ratio = adaptive_overhead / static_overhead;
    if static_overhead <= 0.05 {
        bad.push(format!(
            "static overhead {static_overhead:.4} too small — the workload no longer exposes the straggler"
        ));
    } else if ratio >= RATIO_BOUND {
        bad.push(format!(
            "adaptive overhead {adaptive_overhead:.4} is {ratio:.2} x static {static_overhead:.4} (bound {RATIO_BOUND})"
        ));
    }

    let smoke = StraggleSmoke {
        slowdown: SLOWDOWN,
        golden_wall: h.golden_wall(),
        adaptive_overhead,
        static_overhead,
        ratio,
        report,
    };
    let path = out.join("straggle_smoke.json");
    let json = serde_json::to_string_pretty(&smoke).expect("smoke verdict serializes");
    if let Err(e) = std::fs::write(&path, json) {
        die(format!("cannot write {}: {e}", path.display()));
    }
    println!(
        "straggle smoke: {SLOWDOWN}x persistent straggler, {} rebalance(s), \
         {rollbacks} rollback(s), overhead {adaptive_overhead:.4} adaptive vs \
         {static_overhead:.4} static (ratio {ratio:.2}, bound {RATIO_BOUND})",
        smoke.report.rebalances
    );
    println!("artifact: {}", path.display());
    if bad.is_empty() {
        0
    } else {
        for b in &bad {
            eprintln!("STRAGGLE SMOKE FAILURE: {b}");
        }
        1
    }
}

/// Wall-clock budget for arming the ABFT checksums on the
/// compute-dominated workload: at most 5% over the disarmed engine.
const ABFT_OVERHEAD_BUDGET: f64 = 0.05;

/// The deterministic artifact the ABFT smoke journals.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AbftSmoke {
    seed: u64,
    planted_index: u64,
    armed_report: ScheduleReport,
    disarmed_violations: usize,
    repro_events: usize,
    plain_wall: f64,
    armed_wall: f64,
    overhead: f64,
    overhead_budget: f64,
}

fn abft_smoke_mode(out: &Path) -> i32 {
    let mut bad = Vec::new();

    // (a) Armed engine vs the planted gray-zone schedule: every oracle
    // holds because the checksums catch the flip and repair it.
    let armed = make_harness(4, 8);
    let space = FaultSpace::new(
        armed.cfg().cluster.ranks,
        armed.cfg().cluster.nodes(),
        8,
        armed.golden_wall(),
        24,
    );
    let (index, plan) = planted_from_space(&space, 7);
    println!(
        "planted schedule: campaign index {index}, gray flip {:?} plus {} noise event(s)",
        plan.sdc[0],
        flatten(&plan).len() - 1
    );
    let armed_report = armed.check(&plan);
    if !armed_report.passed() {
        for v in &armed_report.violations {
            bad.push(format!("armed engine violated an oracle: {v}"));
        }
    }
    if armed_report.abft_detections == 0 {
        bad.push("armed engine raised no corruption verdict for the planted flip".to_string());
    }
    println!(
        "armed: {} detection(s), {} repair(s), {} watchdog trip(s), deviation {:e}",
        armed_report.abft_detections,
        armed_report.abft_recomputes,
        armed_report.watchdog_trips,
        armed_report.max_deviation
    );

    // (b) Disarmed engine vs the same schedule: the corruption slips
    // through, an oracle catches the divergence, and ddmin shrinks the
    // schedule to the flip.
    let disarmed = make_disarmed_harness(4, 8);
    let disarmed_report = disarmed.check(&plan);
    if disarmed_report.passed() {
        bad.push("disarmed engine passed: the planted flip is not actually harmful".to_string());
    }
    let repro = disarmed.minimize_to_reproducer(&plan, 7, index);
    write_reproducer(out, "abft_smoke_repro.json", &repro);
    println!(
        "disarmed: {} violation(s), minimized to {} event(s)",
        disarmed_report.violations.len(),
        repro.events
    );
    if repro.events > 3 {
        bad.push(format!("reproducer kept {} events (> 3)", repro.events));
    }

    // (c) Overhead gate on the compute-dominated workload: arming the
    // checksums must cost <= 5% wall clock and change no physics bit.
    let (sys, cfg) = compute_workload(4, 8);
    let plain = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default())
        .unwrap_or_else(|e| die(format!("disarmed reference run failed: {e}")));
    let armed_run = run_parallel_md_faulty(
        &sys,
        &cfg,
        &FaultConfig::default().with_abft(AbftConfig::armed()),
    )
    .unwrap_or_else(|e| die(format!("armed reference run failed: {e}")));
    let overhead = armed_run.report.wall_time / plain.report.wall_time - 1.0;
    println!(
        "overhead: armed {:.6} s vs plain {:.6} s = {:.2}% (budget {:.0}%)",
        armed_run.report.wall_time,
        plain.report.wall_time,
        100.0 * overhead,
        100.0 * ABFT_OVERHEAD_BUDGET
    );
    if overhead > ABFT_OVERHEAD_BUDGET {
        bad.push(format!(
            "ABFT overhead {:.4} exceeds budget {ABFT_OVERHEAD_BUDGET}",
            overhead
        ));
    }
    if armed_run.report.final_positions != plain.report.final_positions
        || armed_run.report.final_velocities != plain.report.final_velocities
    {
        bad.push("arming ABFT changed fault-free physics".to_string());
    }
    if armed_run.abft_detections != 0 {
        bad.push(format!(
            "{} false positive(s) on the fault-free workload",
            armed_run.abft_detections
        ));
    }

    let smoke = AbftSmoke {
        seed: 7,
        planted_index: index,
        armed_report,
        disarmed_violations: disarmed_report.violations.len(),
        repro_events: repro.events,
        plain_wall: plain.report.wall_time,
        armed_wall: armed_run.report.wall_time,
        overhead,
        overhead_budget: ABFT_OVERHEAD_BUDGET,
    };
    let path = out.join("abft_smoke.json");
    let json = serde_json::to_string_pretty(&smoke).expect("smoke verdict serializes");
    if let Err(e) = std::fs::write(&path, json) {
        die(format!("cannot write {}: {e}", path.display()));
    }
    println!("artifact: {}", path.display());
    if bad.is_empty() {
        0
    } else {
        for b in &bad {
            eprintln!("ABFT SMOKE FAILURE: {b}");
        }
        1
    }
}

/// One journaled service-chaos verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServiceVerdict {
    /// Campaign seed.
    seed: u64,
    /// Schedule index within the campaign.
    index: u64,
    /// Whether both service oracles held.
    passed: bool,
    /// Rendered violations (empty when passed).
    violations: Vec<String>,
    /// The cross-incarnation accounting the oracles checked.
    ledger: ServiceLedger,
}

/// Cells per synthetic service campaign: small enough that hundreds of
/// schedules (each run as reference + faulted incarnations) finish in
/// CI time, large enough that every sampled kill/tear index lands.
const SERVICE_CELLS: u64 = 6;
/// Queue shards of the synthetic campaign.
const SERVICE_SHARDS: usize = 4;

/// Service-level chaos campaign: schedules `0..N` sampled from
/// `(seed, index)`, each driving a full campaign through the crash-safe
/// job service under kills, torn writes, stale leases and cache rot.
fn service_mode(opts: &ModeOpts, schedules: u64) -> i32 {
    let seed = opts.seed;
    let journal_path = opts.journal_path("service_chaos.jsonl");
    let (mut journal, prior) = open_verdict_journal::<ServiceVerdict, _>(
        "chaos",
        &journal_path,
        opts.resume,
        |v| (v.seed, v.index),
    );
    let (done, mut failures) = split_prior(&prior, seed, |v| (v.seed, v.index), |v| v.passed);
    // Duplicates the recovery scrub dropped inside each schedule's
    // campaign: the quiet half of the exactly-once story, surfaced in
    // the summary so a regression in the scrub is visible in CI logs.
    let mut duplicates_scrubbed: usize = prior
        .iter()
        .filter(|v| v.seed == seed)
        .map(|v| v.ledger.duplicate_results)
        .sum();

    let space = ServiceFaultSpace::new(SERVICE_CELLS as usize, SERVICE_SHARDS);
    let tasks: Vec<u64> = (0..SERVICE_CELLS).collect();
    let mut exec = |t: &u64| -> (Vec<f64>, f64) { (vec![*t as f64, (*t * *t) as f64], 0.25) };
    let key_of = |r: &Vec<f64>| serde_json::to_string(&(r[0] as u64)).expect("key serializes");
    let scratch = std::env::temp_dir().join(format!("cpc-service-chaos-{}", std::process::id()));
    println!(
        "service chaos campaign: seed {seed}, {schedules} schedules, \
         {SERVICE_CELLS} cells x {SERVICE_SHARDS} shards per campaign"
    );

    let mut checked = 0u64;
    for index in 0..schedules {
        if done.contains(&index) {
            continue;
        }
        let plan = space.sample(seed, index);
        let dir = scratch.join(format!("s{index:05}"));
        let report = run_service_chaos(&dir, &tasks, "chaos-service", &plan, key_of, &mut exec)
            .unwrap_or_else(|e| die(format!("schedule {index} I/O failure: {e}")));
        let _ = std::fs::remove_dir_all(&dir);
        checked += 1;
        duplicates_scrubbed += report.ledger.duplicate_results;
        let verdict = ServiceVerdict {
            seed,
            index,
            passed: report.passed(),
            violations: report.violations.iter().map(|v| v.to_string()).collect(),
            ledger: report.ledger.clone(),
        };
        if let Err(e) = journal.append(&verdict) {
            die(format!("cannot journal verdict {index}: {e}"));
        }
        if !verdict.passed {
            println!(
                "schedule {index} ({:?}): {} VIOLATION(S)",
                plan.faults,
                verdict.violations.len()
            );
            for v in &verdict.violations {
                println!("  - {v}");
            }
            failures.push(index);
        } else if (index + 1).is_multiple_of(25) {
            println!(
                "schedule {index}: ok ({} incarnation(s), {} kill(s), {} torn line(s))",
                report.ledger.incarnations, report.ledger.kills, report.ledger.dropped_lines
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "checked {checked} fresh schedule(s) ({} total), {} violation(s), \
         {duplicates_scrubbed} duplicate result(s) scrubbed at recovery",
        done.len() as u64 + checked,
        failures.len()
    );
    if !failures.is_empty() {
        failures.sort_unstable();
        failures.dedup();
        println!("failing schedules: {failures:?}");
        return 1;
    }
    println!("both service oracles held on every schedule");
    0
}

/// One journaled sched-chaos verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SchedVerdict {
    /// Campaign seed.
    seed: u64,
    /// Schedule index within the campaign.
    index: u64,
    /// Whether every cross-thread determinism oracle held.
    passed: bool,
    /// Rendered violations (empty when passed).
    violations: Vec<String>,
    /// The cross-thread accounting the oracles checked.
    ledger: SchedLedger,
}

/// Cells per synthetic sched-chaos campaign: enough that every sampled
/// fault position (panic latches, pause points, the thread-change
/// commit threshold, the lease-race lease index) lands inside the run,
/// small enough that each schedule's six runs (reference + four-count
/// sweep + chaos) finish in CI time.
const SCHED_CELLS: u64 = 8;

/// Executor-level chaos campaign: schedules `0..N` sampled from
/// `(seed, index)`, each driving a full campaign through the
/// work-stealing pool under an adversarial interleaving.
fn sched_mode(opts: &ModeOpts, schedules: u64) -> i32 {
    let seed = opts.seed;
    let journal_path = opts.journal_path("sched_chaos.jsonl");
    let (mut journal, prior) = open_verdict_journal::<SchedVerdict, _>(
        "chaos",
        &journal_path,
        opts.resume,
        |v| (v.seed, v.index),
    );
    let (done, mut failures) = split_prior(&prior, seed, |v| (v.seed, v.index), |v| v.passed);

    let space = SchedFaultSpace::new(SCHED_CELLS as usize);
    let tasks: Vec<u64> = (0..SCHED_CELLS).collect();
    let exec = |t: &u64| -> (Vec<f64>, f64) { (vec![*t as f64, (*t * *t) as f64], 0.25) };
    let key_of = |r: &Vec<f64>| serde_json::to_string(&(r[0] as u64)).expect("key serializes");
    let scratch = std::env::temp_dir().join(format!("cpc-sched-chaos-{}", std::process::id()));
    println!(
        "sched chaos campaign: seed {seed}, {schedules} schedules, \
         {SCHED_CELLS} cells per campaign on the work-stealing pool"
    );

    let mut checked = 0u64;
    let mut panics_total = 0usize;
    let mut pauses_total = 0usize;
    let mut steals_total = 0usize;
    for index in 0..schedules {
        if done.contains(&index) {
            continue;
        }
        let plan = space.sample(seed, index);
        let dir = scratch.join(format!("x{index:05}"));
        let report = run_sched_chaos(&dir, &tasks, "chaos-sched", &plan, key_of, exec)
            .unwrap_or_else(|e| die(format!("schedule {index} I/O failure: {e}")));
        let _ = std::fs::remove_dir_all(&dir);
        checked += 1;
        panics_total += report.ledger.panics_injected;
        pauses_total += report.ledger.pauses_taken;
        steals_total += report.ledger.steals;
        let verdict = SchedVerdict {
            seed,
            index,
            passed: report.passed(),
            violations: report.violations.iter().map(|v| v.to_string()).collect(),
            ledger: report.ledger.clone(),
        };
        if let Err(e) = journal.append(&verdict) {
            die(format!("cannot journal verdict {index}: {e}"));
        }
        if !verdict.passed {
            println!(
                "schedule {index} ({} thread(s), {:?}): {} VIOLATION(S)",
                plan.threads,
                plan.faults,
                verdict.violations.len()
            );
            for v in &verdict.violations {
                println!("  - {v}");
            }
            failures.push(index);
        } else if (index + 1).is_multiple_of(25) {
            println!(
                "schedule {index}: ok ({} thread(s), {} steal(s), {} pause(s), {} panic(s) contained)",
                report.ledger.threads,
                report.ledger.steals,
                report.ledger.pauses_taken,
                report.ledger.panics_caught
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "checked {checked} fresh schedule(s) ({} total), {} violation(s); \
         {steals_total} steal(s), {pauses_total} forced pause(s), \
         {panics_total} injected panic(s) contained",
        done.len() as u64 + checked,
        failures.len()
    );
    if !failures.is_empty() {
        failures.sort_unstable();
        failures.dedup();
        println!("failing schedules: {failures:?}");
        return 1;
    }
    println!("every cross-thread determinism oracle held on every schedule");
    0
}

/// One journaled disk-chaos verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DiskVerdict {
    /// Campaign seed.
    seed: u64,
    /// Schedule index within the campaign.
    index: u64,
    /// Whether all five crash-consistency oracles held.
    passed: bool,
    /// Rendered violations (empty when passed).
    violations: Vec<String>,
    /// The cross-incarnation accounting the oracles checked.
    ledger: DiskLedger,
}

/// Cells per synthetic disk-chaos campaign, matching the service-chaos
/// campaign so the two layers exercise the same workload.
const DISK_CELLS: u64 = 6;

/// Disk-level chaos campaign: schedules `0..N` sampled from
/// `(seed, index)`, each driving a full campaign through the job
/// service on a simulated filesystem injecting ENOSPC, EIO, short
/// writes, rename failures and power cuts.
fn disk_mode(opts: &ModeOpts, schedules: u64) -> i32 {
    let seed = opts.seed;
    let journal_path = opts.journal_path("disk_chaos.jsonl");
    let (mut journal, prior) = open_verdict_journal::<DiskVerdict, _>(
        "chaos",
        &journal_path,
        opts.resume,
        |v| (v.seed, v.index),
    );
    let (done, mut failures) = split_prior(&prior, seed, |v| (v.seed, v.index), |v| v.passed);

    let tasks: Vec<u64> = (0..DISK_CELLS).collect();
    let exec = |t: &u64| -> (Vec<f64>, f64) { (vec![*t as f64, (*t * *t) as f64], 0.25) };
    let key_of = |r: &Vec<f64>| serde_json::to_string(&(r[0] as u64)).expect("key serializes");

    // Probe the fault-free mutating-op horizon: the index space every
    // sampled fault position is drawn from. Entirely in memory — the
    // disk campaign touches no real filesystem beyond its own journal.
    let probe = run_disk_chaos(&tasks, "chaos-disk", &DiskFaultPlan::none(), key_of, exec)
        .unwrap_or_else(|e| die(format!("fault-free probe failed: {e}")));
    if !probe.passed() {
        println!("fault-free probe FAILED its own oracles:");
        for v in &probe.violations {
            println!("  - {v}");
        }
        return 1;
    }
    let space = DiskFaultSpace::new(probe.ledger.disk.ops);
    println!(
        "disk chaos campaign: seed {seed}, {schedules} schedules, \
         {DISK_CELLS} cells per campaign over a {}-op filesystem horizon",
        probe.ledger.disk.ops
    );

    let mut checked = 0u64;
    let mut power_losses = 0u64;
    let mut enospc_total = 0u64;
    let mut restarts_total = 0usize;
    for index in 0..schedules {
        if done.contains(&index) {
            continue;
        }
        let plan = space.sample(seed, index);
        let report = run_disk_chaos(&tasks, "chaos-disk", &plan, key_of, exec)
            .unwrap_or_else(|e| die(format!("schedule {index} I/O failure: {e}")));
        checked += 1;
        power_losses += report.ledger.disk.power_losses;
        enospc_total += report.ledger.disk.enospc_failures;
        restarts_total += report.ledger.restarts;
        let verdict = DiskVerdict {
            seed,
            index,
            passed: report.passed(),
            violations: report.violations.iter().map(|v| v.to_string()).collect(),
            ledger: report.ledger.clone(),
        };
        if let Err(e) = journal.append(&verdict) {
            die(format!("cannot journal verdict {index}: {e}"));
        }
        if !verdict.passed {
            println!(
                "schedule {index} ({:?}): {} VIOLATION(S)",
                plan.faults,
                verdict.violations.len()
            );
            for v in &verdict.violations {
                println!("  - {v}");
            }
            failures.push(index);
        } else if (index + 1).is_multiple_of(25) {
            println!(
                "schedule {index}: ok ({} incarnation(s), {} restart(s), {} ENOSPC, {} lift(s))",
                report.ledger.incarnations,
                report.ledger.restarts,
                report.ledger.disk.enospc_failures,
                report.ledger.enospc_lifts
            );
        }
    }

    println!(
        "checked {checked} fresh schedule(s) ({} total), {} violation(s); \
         {power_losses} power cut(s) and {enospc_total} ENOSPC failure(s) absorbed \
         across {restarts_total} restart(s)",
        done.len() as u64 + checked,
        failures.len()
    );
    if !failures.is_empty() {
        failures.sort_unstable();
        failures.dedup();
        println!("failing schedules: {failures:?}");
        return 1;
    }
    println!("all five crash-consistency oracles held on every schedule");
    0
}

/// One journaled transport-chaos verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TransportVerdict {
    /// Campaign seed.
    seed: u64,
    /// Schedule index within the campaign.
    index: u64,
    /// Whether all six gateway oracles held.
    passed: bool,
    /// Rendered violations (empty when passed).
    violations: Vec<String>,
    /// The cross-incarnation transport accounting the oracles checked.
    ledger: GatewayLedger,
}

/// Cells per synthetic gateway campaign, matching the service-chaos
/// campaign so the two layers exercise the same workload.
const TRANSPORT_CELLS: u64 = 6;

/// Transport-level chaos campaign: schedules `0..N` sampled from
/// `(seed, index)`, each driving a full campaign through the HTTP
/// gateway under malformed requests, slowloris readers, disconnects,
/// floods and process kills.
fn transport_mode(opts: &ModeOpts, schedules: u64) -> i32 {
    let seed = opts.seed;
    let journal_path = opts.journal_path("transport_chaos.jsonl");
    let (mut journal, prior) = open_verdict_journal::<TransportVerdict, _>(
        "chaos",
        &journal_path,
        opts.resume,
        |v| (v.seed, v.index),
    );
    let (done, mut failures) = split_prior(&prior, seed, |v| (v.seed, v.index), |v| v.passed);

    let space = TransportFaultSpace::new(TRANSPORT_CELLS as usize);
    let cells = demo_cells(TRANSPORT_CELLS);
    let scratch = std::env::temp_dir().join(format!("cpc-transport-chaos-{}", std::process::id()));
    println!(
        "transport chaos campaign: seed {seed}, {schedules} schedules, \
         {TRANSPORT_CELLS} cells per campaign through the HTTP gateway"
    );

    let mut checked = 0u64;
    let mut shed_total = 0usize;
    let mut rejected_total = 0usize;
    let mut kills_total = 0usize;
    for index in 0..schedules {
        if done.contains(&index) {
            continue;
        }
        let plan = space.sample(seed, index);
        let dir = scratch.join(format!("t{index:05}"));
        let report =
            run_gateway_chaos(&dir, || DemoModel, &cells, "demo", &plan, &demo_flood_cells)
                .unwrap_or_else(|e| die(format!("schedule {index} I/O failure: {e}")));
        let _ = std::fs::remove_dir_all(&dir);
        checked += 1;
        shed_total += report.ledger.shed;
        rejected_total += report.ledger.rejected;
        kills_total += report.ledger.kills;
        let verdict = TransportVerdict {
            seed,
            index,
            passed: report.passed(),
            violations: report.violations.iter().map(|v| v.to_string()).collect(),
            ledger: report.ledger.clone(),
        };
        if let Err(e) = journal.append(&verdict) {
            die(format!("cannot journal verdict {index}: {e}"));
        }
        if !verdict.passed {
            println!(
                "schedule {index} ({:?}): {} VIOLATION(S)",
                plan.faults,
                verdict.violations.len()
            );
            for v in &verdict.violations {
                println!("  - {v}");
            }
            failures.push(index);
        } else if (index + 1).is_multiple_of(25) {
            println!(
                "schedule {index}: ok ({} conn(s), {} rejected, {} shed, {} incarnation(s))",
                report.ledger.conns_opened,
                report.ledger.rejected,
                report.ledger.shed,
                report.ledger.incarnations
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "checked {checked} fresh schedule(s) ({} total), {} violation(s); \
         {rejected_total} malformed rejected, {shed_total} shed, {kills_total} kill(s) survived",
        done.len() as u64 + checked,
        failures.len()
    );
    if !failures.is_empty() {
        failures.sort_unstable();
        failures.dedup();
        println!("failing schedules: {failures:?}");
        return 1;
    }
    println!("all six gateway oracles held on every schedule");
    0
}

fn replay_mode(file: &str) -> i32 {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        std::process::exit(2);
    });
    let repro = Reproducer::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {file}: {e}");
        std::process::exit(2);
    });
    // Replay under the engine that produced the artifact: a disarmed
    // reproducer replayed armed would be repaired, not reproduced.
    let h = if repro.abft {
        make_harness(repro.ranks, repro.steps)
    } else {
        println!("reproducer was minimized with ABFT disarmed; replaying disarmed");
        make_disarmed_harness(repro.ranks, repro.steps)
    };
    let report = h.check(&repro.plan);
    if report.passed() {
        println!("reproducer did NOT reproduce: every oracle held");
        1
    } else {
        println!("reproduced {} violation(s):", report.violations.len());
        for v in &report.violations {
            println!("  - {v}");
        }
        0
    }
}

/// One journaled composed-chaos verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ComposedVerdict {
    /// Campaign seed.
    seed: u64,
    /// Schedule index within the campaign.
    index: u64,
    /// Whether the full cross-layer oracle union held.
    passed: bool,
    /// Layers the schedule exercised (unmasked and non-empty).
    armed: Vec<String>,
    /// Rendered violations (empty when passed).
    violations: Vec<String>,
    /// The unified cross-layer book the oracles checked.
    ledger: CrossLedger,
}

/// Cells per composed campaign, matching the single-layer service,
/// disk and transport campaigns so the conductor stresses the same
/// workload they do — just all at once.
const COMPOSED_CELLS: u64 = 6;

/// Probes the fault-free composed campaign for its disk-op horizon
/// (the index space disk faults are drawn from), then assembles the
/// joint five-layer envelope around the given MD envelope.
fn composed_space(md: FaultSpace) -> ComposedFaultSpace {
    let cells = demo_cells(COMPOSED_CELLS);
    let probe = run_composed_chaos(
        || DemoModel,
        &cells,
        "demo",
        &ComposedPlan::quiet(2),
        &demo_flood_cells,
        None,
    )
    .unwrap_or_else(|e| die(format!("fault-free composed probe failed: {e}")));
    if !probe.passed() {
        for v in &probe.violations {
            eprintln!("  - {v}");
        }
        die("fault-free composed probe failed its own oracles");
    }
    ComposedFaultSpace::new(
        md,
        ServiceFaultSpace::new(COMPOSED_CELLS as usize, SERVICE_SHARDS),
        TransportFaultSpace::new(COMPOSED_CELLS as usize),
        DiskFaultSpace::new(probe.ledger.disk.disk.ops),
        SchedFaultSpace::new(COMPOSED_CELLS as usize),
    )
}

/// Runs one composed schedule through the conductor, wiring the MD
/// layer to `harness` when one is supplied (corpus entries and bench
/// rows that never arm the MD layer skip the engine entirely).
fn run_composed(
    harness: Option<&ChaosHarness>,
    cells: &str,
    plan: &ComposedPlan,
) -> cpc_gateway::ComposedChaosReport {
    let result = match harness {
        Some(h) => {
            let mut md_check = |p: &FaultPlan| h.check(p);
            run_composed_chaos(
                || DemoModel,
                cells,
                "demo",
                plan,
                &demo_flood_cells,
                Some(&mut md_check),
            )
        }
        None => run_composed_chaos(|| DemoModel, cells, "demo", plan, &demo_flood_cells, None),
    };
    result.unwrap_or_else(|e| die(format!("composed campaign I/O failure: {e}")))
}

/// Accumulates pairwise interaction coverage: a schedule covers the
/// layer pair `(a, b)` when both layers carried armed events.
fn cover_pairs(pairs: &mut [[u64; 5]; 5], events: &[usize; 5]) {
    for a in 0..5 {
        for b in (a + 1)..5 {
            if events[a] > 0 && events[b] > 0 {
                pairs[a][b] += 1;
            }
        }
    }
}

/// Composed-chaos campaign (`--composed N`): every schedule arms all
/// five fault layers against one serve-backed campaign, the unified
/// `CrossLedger` is checked against the union of the single-layer
/// oracles plus the interaction oracles, failures are triaged by the
/// cross-layer minimizer (whole layers dropped first, then events
/// within the survivors) into `DIR/cross-repro-IIIII.json`, and the
/// run fails unless every pairwise layer interaction was exercised at
/// least once.
fn composed_mode(opts: &ModeOpts, schedules: u64) -> i32 {
    let seed = opts.seed;
    let journal_path = opts.journal_path("composed_chaos.jsonl");
    let (mut journal, prior) = open_verdict_journal::<ComposedVerdict, _>(
        "chaos",
        &journal_path,
        opts.resume,
        |v| (v.seed, v.index),
    );
    let (done, mut failures) = split_prior(&prior, seed, |v| (v.seed, v.index), |v| v.passed);

    let h = make_harness(4, 8);
    let md_space = FaultSpace::new(
        h.cfg().cluster.ranks,
        h.cfg().cluster.nodes(),
        8,
        h.golden_wall(),
        24,
    );
    let space = composed_space(md_space);
    let cells = demo_cells(COMPOSED_CELLS);
    println!(
        "composed chaos campaign: seed {seed}, {schedules} schedules, all five layers \
         armed against one {COMPOSED_CELLS}-cell campaign"
    );

    let mut pairs = [[0u64; 5]; 5];
    for v in prior.iter().filter(|v| v.seed == seed) {
        cover_pairs(&mut pairs, &v.ledger.layer_events);
    }
    let mut checked = 0u64;
    for index in 0..schedules {
        if done.contains(&index) {
            continue;
        }
        let plan = space.sample(seed, index);
        let report = run_composed(Some(&h), &cells, &plan);
        checked += 1;
        cover_pairs(&mut pairs, &report.ledger.layer_events);
        let verdict = ComposedVerdict {
            seed,
            index,
            passed: report.passed(),
            armed: plan
                .armed_layers()
                .iter()
                .map(|l| l.name().to_string())
                .collect(),
            violations: report.violations.iter().map(|v| v.to_string()).collect(),
            ledger: report.ledger.clone(),
        };
        if let Err(e) = journal.append(&verdict) {
            die(format!("cannot journal verdict {index}: {e}"));
        }
        if !verdict.passed {
            println!("schedule {index}: {} VIOLATION(S)", verdict.violations.len());
            for v in &verdict.violations {
                println!("  - {v}");
            }
            let (min_plan, probes) =
                minimize_composed(&plan, |cand| !run_composed(Some(&h), &cells, cand).passed());
            let min_report = run_composed(Some(&h), &cells, &min_plan);
            let survivors: Vec<&str> = min_plan.armed_layers().iter().map(|l| l.name()).collect();
            let repro = CrossReproducer {
                seed,
                index,
                cells: COMPOSED_CELLS as usize,
                ranks: h.cfg().cluster.ranks,
                nodes: h.cfg().cluster.nodes(),
                steps: 8,
                abft: true,
                expect_fail: true,
                events: min_plan.events(),
                probes,
                violations: min_report.violations.iter().map(|v| v.to_string()).collect(),
                plan: min_plan,
            };
            let path = opts.out.join(format!("cross-repro-{index:05}.json"));
            if let Err(e) = std::fs::write(&path, repro.to_json()) {
                die(format!("cannot write {}: {e}", path.display()));
            }
            println!(
                "  minimized to {} event(s) in layer(s) [{}] in {} probe(s): {}",
                repro.events,
                survivors.join(", "),
                probes,
                path.display()
            );
            failures.push(index);
        } else if (index + 1).is_multiple_of(10) {
            println!(
                "schedule {index}: ok ({} incarnation(s), {} kill(s), executed {} within license {})",
                report.ledger.gateway.incarnations,
                report.ledger.service.kills + report.ledger.gateway.kills,
                report.ledger.executed_true,
                report.ledger.exec_allowance
            );
        }
    }

    let mut coverage = Vec::new();
    let mut missing = Vec::new();
    for a in 0..5 {
        for b in (a + 1)..5 {
            let pair = format!("{}x{}", LAYERS[a].name(), LAYERS[b].name());
            coverage.push(format!("{pair} {}", pairs[a][b]));
            if pairs[a][b] == 0 {
                missing.push(pair);
            }
        }
    }
    println!("pairwise interaction coverage: {}", coverage.join(", "));
    println!(
        "checked {checked} fresh schedule(s) ({} total), {} violation(s)",
        done.len() as u64 + checked,
        failures.len()
    );
    if !failures.is_empty() {
        failures.sort_unstable();
        failures.dedup();
        println!("failing schedules: {failures:?}");
        return 1;
    }
    if done.len() as u64 + checked > 0 && !missing.is_empty() {
        println!(
            "COVERAGE FAILURE: pairwise interaction(s) never exercised: {}",
            missing.join(", ")
        );
        return 1;
    }
    println!("the full cross-layer oracle union held on every schedule");
    0
}

/// Composed plant self-test (`--plant-composed`): proves the
/// cross-layer oracles and minimizer catch a known-bad composed
/// schedule, then seeds the replayable reproducer corpus with a
/// regression pin (must still fail) and a determinism pin (must still
/// pass, byte-identical verdict).
fn plant_composed_mode(corpus: &Path) -> i32 {
    if let Err(e) = std::fs::create_dir_all(corpus) {
        die(format!("cannot create {}: {e}", corpus.display()));
    }
    let cells = demo_cells(COMPOSED_CELLS);

    // (a) Regression pin: the gray-zone MD flip the single-layer plant
    // uses, checked with ABFT disarmed so it is actually harmful —
    // buried under sampled noise in the other four layers, so the
    // minimizer has whole layers to discard before it can shrink.
    let h = make_disarmed_harness(4, 8);
    let md_space = FaultSpace::new(
        h.cfg().cluster.ranks,
        h.cfg().cluster.nodes(),
        8,
        h.golden_wall(),
        24,
    );
    let space = composed_space(md_space);
    let (index, planted_md) = planted_from_space(&space.md, 7);
    let mut plan = space.sample(7, index);
    plan.md = planted_md;
    println!(
        "planted composed schedule: campaign index {index}, gray flip {:?} buried under \
         {} noise event(s) across the other four layers",
        plan.md.sdc[0],
        plan.events() - 1
    );
    let report = run_composed(Some(&h), &cells, &plan);
    if report.passed() {
        eprintln!("PLANT FAILURE: the known-bad composed schedule passed every oracle");
        return 1;
    }
    println!(
        "caught: {} violation(s), first: {}",
        report.violations.len(),
        report.violations[0]
    );
    let (min_plan, probes) =
        minimize_composed(&plan, |cand| !run_composed(Some(&h), &cells, cand).passed());
    let min_report = run_composed(Some(&h), &cells, &min_plan);
    if min_report.passed() {
        eprintln!("PLANT FAILURE: minimized reproducer no longer fails");
        return 1;
    }
    let survivors: Vec<&str> = min_plan.armed_layers().iter().map(|l| l.name()).collect();
    println!(
        "minimized {} -> {} event(s) in layer(s) [{}] in {} probe(s)",
        plan.events(),
        min_plan.events(),
        survivors.join(", "),
        probes
    );
    if min_plan.events() > 10 {
        eprintln!(
            "PLANT FAILURE: reproducer kept {} events (> 10)",
            min_plan.events()
        );
        return 1;
    }
    let repro = CrossReproducer {
        seed: 7,
        index,
        cells: COMPOSED_CELLS as usize,
        ranks: h.cfg().cluster.ranks,
        nodes: h.cfg().cluster.nodes(),
        steps: 8,
        abft: false,
        expect_fail: true,
        events: min_plan.events(),
        probes,
        violations: min_report.violations.iter().map(|v| v.to_string()).collect(),
        plan: min_plan,
    };
    let path = corpus.join("planted_cross.json");
    if let Err(e) = std::fs::write(&path, repro.to_json()) {
        die(format!("cannot write {}: {e}", path.display()));
    }
    println!("regression pin: {}", path.display());

    // The artifact must replay with a byte-identical verdict.
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(format!("cannot read {}: {e}", path.display())));
    let parsed = CrossReproducer::from_json(&text)
        .unwrap_or_else(|e| die(format!("cannot parse {}: {e}", path.display())));
    let replayed = run_composed(Some(&h), &cells, &parsed.plan);
    let rendered: Vec<String> = replayed.violations.iter().map(|v| v.to_string()).collect();
    if replayed.passed() || rendered != repro.violations {
        eprintln!("PLANT FAILURE: reproducer replay diverged from the recorded verdict");
        return 1;
    }
    println!("replay of the regression pin still fails with a byte-identical verdict");

    // (b) Determinism pin: a passing sampled schedule with all five
    // layers armed and ABFT armed; replay must pass with an empty,
    // byte-identical verdict.
    let armed = make_harness(4, 8);
    let armed_space = composed_space(FaultSpace::new(
        armed.cfg().cluster.ranks,
        armed.cfg().cluster.nodes(),
        8,
        armed.golden_wall(),
        24,
    ));
    let pin_plan = armed_space.sample(7, 0);
    let pin_report = run_composed(Some(&armed), &cells, &pin_plan);
    if !pin_report.passed() {
        eprintln!("PLANT FAILURE: the determinism-pin schedule fails its oracles:");
        for v in &pin_report.violations {
            eprintln!("  - {v}");
        }
        return 1;
    }
    let pin = CrossReproducer {
        seed: 7,
        index: 0,
        cells: COMPOSED_CELLS as usize,
        ranks: armed.cfg().cluster.ranks,
        nodes: armed.cfg().cluster.nodes(),
        steps: 8,
        abft: true,
        expect_fail: false,
        events: pin_plan.events(),
        probes: 0,
        violations: Vec::new(),
        plan: pin_plan,
    };
    let path = corpus.join("determinism_pin.json");
    if let Err(e) = std::fs::write(&path, pin.to_json()) {
        die(format!("cannot write {}: {e}", path.display()));
    }
    println!("determinism pin: {}", path.display());
    0
}

/// Corpus replay (`--replay-corpus DIR`): re-runs every reproducer in
/// the checked-in corpus and holds each to its recorded expectation —
/// regression pins must still fail, determinism pins must still pass,
/// and in both cases the rendered verdict must be byte-identical to
/// the one recorded in the artifact.
fn replay_corpus_mode(dir: &Path) -> i32 {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| die(format!("cannot read corpus {}: {e}", dir.display())));
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        die(format!("corpus {} holds no reproducers", dir.display()));
    }
    let mut harnesses: HashMap<(usize, usize, bool), ChaosHarness> = HashMap::new();
    let mut bad = 0usize;
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(format!("cannot read {}: {e}", path.display())));
        let repro = CrossReproducer::from_json(&text)
            .unwrap_or_else(|e| die(format!("cannot parse {}: {e}", path.display())));
        let cells = demo_cells(repro.cells as u64);
        let report = if repro.plan.armed(Layer::Md) {
            let h = harnesses
                .entry((repro.ranks, repro.steps, repro.abft))
                .or_insert_with(|| {
                    if repro.abft {
                        make_harness(repro.ranks, repro.steps)
                    } else {
                        make_disarmed_harness(repro.ranks, repro.steps)
                    }
                });
            run_composed(Some(h), &cells, &repro.plan)
        } else {
            run_composed(None, &cells, &repro.plan)
        };
        let failed = !report.passed();
        let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if failed != repro.expect_fail {
            println!(
                "{name}: MISMATCH — expected {}, got {}",
                if repro.expect_fail { "fail" } else { "pass" },
                if failed { "fail" } else { "pass" }
            );
            bad += 1;
        } else if rendered != repro.violations {
            println!("{name}: NONDETERMINISTIC — verdict diverged from the recorded one");
            bad += 1;
        } else {
            println!(
                "{name}: ok ({} as recorded, {} armed event(s))",
                if failed { "fails" } else { "passes" },
                repro.plan.events()
            );
        }
    }
    println!("replayed {} reproducer(s), {} mismatch(es)", paths.len(), bad);
    if bad == 0 {
        0
    } else {
        1
    }
}

/// One timed row of `BENCH_chaos.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    mode: &'static str,
    schedules: u64,
    wall_s: f64,
    schedules_per_sec: f64,
}

/// The `BENCH_chaos.json` artifact.
#[derive(Debug, Clone, Serialize)]
struct BenchOut {
    host_cpus: usize,
    note: &'static str,
    modes: Vec<BenchRow>,
}

/// Throughput snapshot (`--bench`): schedules/second for each
/// single-layer chaos harness and for the composed conductor, written
/// to `DIR/BENCH_chaos.json`. The composed rows drive the full
/// five-layer conductor but skip the MD engine (the campaign rows of
/// the MD harness are what price that layer).
fn bench_mode(out: &Path) -> i32 {
    use std::time::Instant;
    const K: u64 = 12;
    let scratch = std::env::temp_dir().join(format!("cpc-bench-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut rows: Vec<BenchRow> = Vec::new();
    let time = |mode: &'static str, n: u64, run: &mut dyn FnMut(u64)| -> BenchRow {
        let t0 = Instant::now();
        for i in 0..n {
            run(i);
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let row = BenchRow {
            mode,
            schedules: n,
            wall_s,
            schedules_per_sec: n as f64 / wall_s,
        };
        println!(
            "{mode}: {n} schedule(s) in {wall_s:.3} s = {:.1} schedules/s",
            row.schedules_per_sec
        );
        row
    };

    let key_of = |r: &Vec<f64>| serde_json::to_string(&(r[0] as u64)).expect("key serializes");
    let exec = |t: &u64| -> (Vec<f64>, f64) { (vec![*t as f64, (*t * *t) as f64], 0.25) };

    let tasks: Vec<u64> = (0..SERVICE_CELLS).collect();
    let sspace = ServiceFaultSpace::new(SERVICE_CELLS as usize, SERVICE_SHARDS);
    let mut sexec = exec;
    let row = time("service", K, &mut |i| {
        let dir = scratch.join(format!("sv{i}"));
        let plan = sspace.sample(7, i);
        let r = run_service_chaos(&dir, &tasks, "bench-service", &plan, key_of, &mut sexec)
            .unwrap_or_else(|e| die(format!("service bench schedule {i} failed: {e}")));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(r.passed(), "service bench schedule {i} violated an oracle");
    });
    rows.push(row);

    let probe = run_disk_chaos(&tasks, "bench-disk", &DiskFaultPlan::none(), key_of, exec)
        .unwrap_or_else(|e| die(format!("disk bench probe failed: {e}")));
    let dspace = DiskFaultSpace::new(probe.ledger.disk.ops);
    let row = time("disk", K, &mut |i| {
        let plan = dspace.sample(7, i);
        let r = run_disk_chaos(&tasks, "bench-disk", &plan, key_of, exec)
            .unwrap_or_else(|e| die(format!("disk bench schedule {i} failed: {e}")));
        assert!(r.passed(), "disk bench schedule {i} violated an oracle");
    });
    rows.push(row);

    let cells = demo_cells(COMPOSED_CELLS);
    let tspace = TransportFaultSpace::new(COMPOSED_CELLS as usize);
    let row = time("transport", K, &mut |i| {
        let dir = scratch.join(format!("tr{i}"));
        let plan = tspace.sample(7, i);
        let r = run_gateway_chaos(&dir, || DemoModel, &cells, "demo", &plan, &demo_flood_cells)
            .unwrap_or_else(|e| die(format!("transport bench schedule {i} failed: {e}")));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(r.passed(), "transport bench schedule {i} violated an oracle");
    });
    rows.push(row);

    let stasks: Vec<u64> = (0..SCHED_CELLS).collect();
    let xspace = SchedFaultSpace::new(SCHED_CELLS as usize);
    let row = time("sched", K, &mut |i| {
        let dir = scratch.join(format!("sc{i}"));
        let plan = xspace.sample(7, i);
        let r = run_sched_chaos(&dir, &stasks, "bench-sched", &plan, key_of, exec)
            .unwrap_or_else(|e| die(format!("sched bench schedule {i} failed: {e}")));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(r.passed(), "sched bench schedule {i} violated an oracle");
    });
    rows.push(row);

    let cspace = composed_space(FaultSpace::new(4, 4, 8, 2.0, 24));
    let row = time("composed", K, &mut |i| {
        let plan = cspace.sample(7, i);
        let r = run_composed(None, &cells, &plan);
        assert!(r.passed(), "composed bench schedule {i} violated an oracle");
    });
    rows.push(row);
    let _ = std::fs::remove_dir_all(&scratch);

    let artifact = BenchOut {
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        note: "schedules/second per chaos harness; composed rows drive the full \
               five-layer conductor with the MD engine unwired",
        modes: rows,
    };
    let path = out.join("BENCH_chaos.json");
    let json = serde_json::to_string_pretty(&artifact).expect("bench artifact serializes");
    if let Err(e) = std::fs::write(&path, json) {
        die(format!("cannot write {}: {e}", path.display()));
    }
    println!("artifact: {}", path.display());
    0
}

fn main() {
    let mut args = Args::parse("chaos", USAGE);
    let out = args
        .value("--out")
        .unwrap_or_else(|| "results/chaos".to_string());
    let replay = args.value("--replay");
    let replay_corpus = args.value("--replay-corpus");
    let corpus = args
        .value("--corpus")
        .unwrap_or_else(|| "reproducers".to_string());
    let plant = args.flag("--plant");
    let plant_composed = args.flag("--plant-composed");
    let straggle_smoke = args.flag("--straggle-smoke");
    let abft_smoke = args.flag("--abft-smoke");
    let bench = args.flag("--bench");
    let service: Option<u64> = args.parsed("--service", "an integer schedule count");
    let transport: Option<u64> = args.parsed("--transport", "an integer schedule count");
    let disk: Option<u64> = args.parsed("--disk", "an integer schedule count");
    let sched: Option<u64> = args.parsed("--sched", "an integer schedule count");
    let composed: Option<u64> = args.parsed("--composed", "an integer schedule count");
    let schedules: u64 = args
        .parsed("--schedules", "an integer schedule count")
        .unwrap_or(50);
    let seed: u64 = args.parsed("--seed", "an integer seed").unwrap_or(7);
    let ranks: usize = args.parsed("--ranks", "an integer rank count").unwrap_or(4);
    let steps: usize = args.parsed("--steps", "an integer step count").unwrap_or(8);
    let soak = args.flag("--soak");
    let resume = args.flag("--resume");
    let journal = args.value("--journal").map(PathBuf::from);
    args.exclusive(&[
        ("--service", service.is_some()),
        ("--transport", transport.is_some()),
        ("--disk", disk.is_some()),
        ("--sched", sched.is_some()),
        ("--composed", composed.is_some()),
        ("--plant", plant),
        ("--plant-composed", plant_composed),
        ("--replay", replay.is_some()),
        ("--replay-corpus", replay_corpus.is_some()),
        ("--straggle-smoke", straggle_smoke),
        ("--abft-smoke", abft_smoke),
        ("--bench", bench),
    ]);
    args.finish();

    let out = PathBuf::from(out);
    if let Err(e) = std::fs::create_dir_all(&out) {
        die(format!("cannot create {}: {e}", out.display()));
    }
    let opts = ModeOpts {
        out: out.clone(),
        seed,
        resume,
        journal,
    };

    if let Some(file) = replay {
        std::process::exit(replay_mode(&file));
    }
    if let Some(dir) = replay_corpus {
        std::process::exit(replay_corpus_mode(Path::new(&dir)));
    }
    if plant {
        std::process::exit(plant_mode(&out));
    }
    if plant_composed {
        std::process::exit(plant_composed_mode(Path::new(&corpus)));
    }
    if straggle_smoke {
        std::process::exit(straggle_smoke_mode(&out));
    }
    if abft_smoke {
        std::process::exit(abft_smoke_mode(&out));
    }
    if bench {
        std::process::exit(bench_mode(&out));
    }
    if let Some(n) = service {
        std::process::exit(service_mode(&opts, n));
    }
    if let Some(n) = transport {
        std::process::exit(transport_mode(&opts, n));
    }
    if let Some(n) = disk {
        std::process::exit(disk_mode(&opts, n));
    }
    if let Some(n) = sched {
        std::process::exit(sched_mode(&opts, n));
    }
    if let Some(n) = composed {
        std::process::exit(composed_mode(&opts, n));
    }
    std::process::exit(campaign_mode(&opts, schedules, soak, ranks, steps));
}

/// The default MD-layer campaign: schedules `0..N` (or unbounded under
/// `--soak`) sampled from `(seed, index)`, checked by the full oracle
/// suite, failures minimized to reproducer artifacts.
fn campaign_mode(opts: &ModeOpts, schedules: u64, soak: bool, ranks: usize, steps: usize) -> i32 {
    let seed = opts.seed;
    let out = &opts.out;
    let journal_path = opts.journal_path("chaos.jsonl");
    let (mut journal, prior) =
        open_verdict_journal::<Verdict, _>("chaos", &journal_path, opts.resume, |v| {
            (v.seed, v.index)
        });
    let (done, mut failures) =
        split_prior(&prior, seed, |v| (v.seed, v.index), |v| v.report.passed());

    let h = make_harness(ranks, steps);
    let space = FaultSpace::new(
        h.cfg().cluster.ranks,
        h.cfg().cluster.nodes(),
        steps as u64,
        h.golden_wall(),
        24, // atoms of the quick water box; SDC atom indices wrap anyway
    );
    println!(
        "chaos campaign: seed {seed}, {} schedules{}, p = {ranks}, {steps} steps, horizon {:.4} s",
        schedules,
        if soak {
            " per soak round (unbounded)"
        } else {
            ""
        },
        h.golden_wall()
    );

    let mut checked = 0u64;
    let mut index = 0u64;
    loop {
        if !soak && index >= schedules {
            break;
        }
        if done.contains(&index) {
            index += 1;
            continue;
        }
        let plan = space.sample(seed, index);
        let report = h.check(&plan);
        checked += 1;
        let failed = !report.passed();
        if let Err(e) = journal.append(&Verdict {
            seed,
            index,
            report: report.clone(),
        }) {
            die(format!("cannot journal verdict {index}: {e}"));
        }
        if failed {
            println!("schedule {index}: {} VIOLATION(S)", report.violations.len());
            for v in &report.violations {
                println!("  - {v}");
            }
            let repro = h.minimize_to_reproducer(&plan, seed, index);
            let path = write_reproducer(out, &format!("repro-{index:05}.json"), &repro);
            println!(
                "  minimized to {} event(s) in {} probe(s): {}",
                repro.events,
                repro.probes,
                path.display()
            );
            failures.push(index);
            if soak {
                break;
            }
        } else if (index + 1).is_multiple_of(10) {
            println!("schedule {index}: ok ({} events)", report.events);
        }
        index += 1;
    }

    println!(
        "checked {checked} fresh schedule(s) ({} total), {} violation(s)",
        done.len() as u64 + checked,
        failures.len()
    );
    if !failures.is_empty() {
        failures.sort_unstable();
        failures.dedup();
        println!("failing schedules: {failures:?}");
        return 1;
    }
    println!("all oracles held");
    0
}
