//! Chaos campaign driver: samples deterministic fault schedules,
//! checks every invariant oracle against each, and shrinks any failure
//! to a minimal replayable reproducer.
//!
//! ```text
//! cargo run -p cpc-bench --bin chaos -- --schedules 50 --seed 7
//!     [--soak] [--resume] [--out DIR] [--ranks P] [--steps N]
//! cargo run -p cpc-bench --bin chaos -- --plant [--out DIR]
//! cargo run -p cpc-bench --bin chaos -- --replay FILE [--out DIR]
//! cargo run -p cpc-bench --bin chaos -- --straggle-smoke [--out DIR]
//! ```
//!
//! * **Campaign mode** (default): checks schedules `0..N` sampled from
//!   `(seed, index)`; every verdict is journaled to `DIR/chaos.jsonl`
//!   through the checksummed [`Journal`], so `--resume` skips already
//!   checked schedules after a kill. Each failing schedule is
//!   minimized and written as `DIR/repro-IIIII.json`. Exit 0 when every
//!   oracle held, 1 otherwise. Verdicts and reproducers are fully
//!   deterministic: the same seed produces byte-identical artifacts on
//!   every rerun.
//! * **Soak mode** (`--soak`): ignores the schedule budget and scans
//!   indices upward indefinitely, stopping (exit 1) at the first
//!   violation — kill it when you have soaked long enough.
//! * **Plant mode** (`--plant`): self-test of the oracles and the
//!   minimizer. Builds a known-bad schedule (a gray-zone SDC flip that
//!   is neither benign nor watchdog-visible, buried in noise events),
//!   asserts an oracle catches it, minimizes, and asserts the
//!   reproducer has at most 3 events and still fails on replay. Exit 0
//!   exactly when all of that holds.
//! * **Replay mode** (`--replay FILE`): re-checks a reproducer
//!   artifact. Exit 0 when it still provokes a violation (it
//!   reproduces), 1 when it no longer does.
//! * **Straggle-smoke mode** (`--straggle-smoke`): CI gate for
//!   degraded-mode rebalancing. Runs a compute-dominated workload
//!   under a persistent straggler, asserts the mitigation contract
//!   (zero rollbacks, no eviction, adaptive overhead below the ratio
//!   bound of the static-decomposition overhead), and journals the
//!   verdict to `DIR/straggle_smoke.json` — fully deterministic, so CI
//!   runs it twice and `cmp`s the artifacts.

use cpc_charmm::chaos::{flatten, ChaosHarness, Reproducer, ScheduleReport};
use cpc_charmm::{run_parallel_md_faulty, DurableConfig, FaultConfig, MdConfig, RecoveryConfig};
use cpc_cluster::{
    ClusterConfig, FaultPlan, FaultSpace, LinkDegradation, NetworkKind, SdcFault, SdcTarget,
};
use cpc_md::EnergyModel;
use cpc_mpi::Middleware;
use cpc_workload::journal::Journal;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// One journaled campaign verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Verdict {
    /// Campaign seed.
    seed: u64,
    /// Schedule index within the campaign.
    index: u64,
    /// The oracle report.
    report: ScheduleReport,
}

/// Real-time stall budget (seconds) for every chaotic run: a schedule
/// that would hang forever instead surfaces `SimError::Stalled`, which
/// the termination oracle reports as a violation.
const STALL_TIMEOUT: f64 = 20.0;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--schedules N] [--seed S] [--soak] [--resume] [--out DIR]\n\
         \x20      [--ranks P] [--steps N] | --plant | --replay FILE | --straggle-smoke"
    );
    std::process::exit(2);
}

fn parse_flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
    })
}

/// The chaos workload: a small water box on a uniprocessor GigE
/// cluster — large enough to exercise every fault path, small enough
/// that a campaign of hundreds of schedules (each run three ways)
/// finishes in CI time.
fn workload(ranks: usize, steps: usize) -> (cpc_md::System, MdConfig) {
    let mut sys = cpc_md::builder::water_box(2, 3.1);
    cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
    sys.assign_velocities(150.0, 3);
    let cluster =
        ClusterConfig::uni(ranks, NetworkKind::ScoreGigE).with_stall_timeout(STALL_TIMEOUT);
    let cfg = MdConfig {
        steps,
        ..MdConfig::paper_protocol(EnergyModel::Classic, Middleware::Mpi, cluster)
    };
    (sys, cfg)
}

fn make_harness(ranks: usize, steps: usize) -> ChaosHarness {
    let (sys, cfg) = workload(ranks, steps);
    let scratch = std::env::temp_dir().join(format!("cpc-chaos-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    ChaosHarness::new(sys, cfg, scratch).expect("fault-free golden run must succeed")
}

/// The planted known-bad schedule: a mid-mantissa SDC flip — far above
/// the benign bound yet invisible to the numerical watchdog — hidden
/// among harmless loss/straggler/degradation noise. The sampler never
/// draws from this gray zone, which is exactly why it must be planted:
/// it validates that the oracles catch what the fuzzer cannot, and
/// that the minimizer strips the noise.
fn planted_plan(h: &ChaosHarness) -> FaultPlan {
    let wall = h.golden_wall();
    FaultPlan::none()
        .with_loss(0.05)
        .with_straggler(0, 1.5)
        .with_degradation(LinkDegradation::global(0.0, 0.5 * wall, 0.1, 2.0))
        .with_crash(1, 0.7 * wall)
        .with_sdc(SdcFault {
            step: 2,
            target: SdcTarget::Positions,
            atom: 3,
            axis: 1,
            bit: 40,
        })
}

fn write_reproducer(out: &Path, name: &str, repro: &Reproducer) -> PathBuf {
    let path = out.join(name);
    std::fs::write(&path, repro.to_json()).expect("write reproducer artifact");
    path
}

fn plant_mode(out: &Path) -> i32 {
    let h = make_harness(4, 8);
    let plan = planted_plan(&h);
    let report = h.check(&plan);
    if report.passed() {
        eprintln!("PLANT FAILURE: the known-bad schedule passed every oracle");
        return 1;
    }
    println!(
        "planted schedule caught: {} violation(s), first: {}",
        report.violations.len(),
        report.violations[0]
    );
    let repro = h.minimize_to_reproducer(&plan, 0, 0);
    let path = write_reproducer(out, "planted_repro.json", &repro);
    println!(
        "minimized {} -> {} event(s) in {} probe(s): {}",
        flatten(&plan).len(),
        repro.events,
        repro.probes,
        path.display()
    );
    if repro.events > 3 {
        eprintln!(
            "PLANT FAILURE: reproducer kept {} events (> 3)",
            repro.events
        );
        return 1;
    }
    // The artifact must replay: parse it back and re-provoke.
    let parsed = Reproducer::from_json(&std::fs::read_to_string(&path).expect("read artifact"))
        .expect("parse reproducer artifact");
    let replay = h.check(&parsed.plan);
    if replay.passed() {
        eprintln!("PLANT FAILURE: minimized reproducer no longer fails");
        return 1;
    }
    println!(
        "replay of minimized reproducer still fails: {}",
        replay.violations[0]
    );
    0
}

/// The straggle-smoke workload: a bigger water box than the campaign's
/// so the run is compute-dominated. On the comm-bound campaign box a
/// slow CPU hides entirely behind the collective incasts (static
/// overhead of a 2x straggler is ~0.3%) and there is nothing for
/// rebalancing to reclaim; the bigger box exposes the straggler to the
/// decomposition, which is the regime this smoke gates.
fn compute_workload(ranks: usize, steps: usize) -> (cpc_md::System, MdConfig) {
    let mut sys = cpc_md::builder::water_box(3, 3.1);
    cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
    sys.assign_velocities(150.0, 3);
    let cluster =
        ClusterConfig::uni(ranks, NetworkKind::ScoreGigE).with_stall_timeout(STALL_TIMEOUT);
    let cfg = MdConfig {
        steps,
        ..MdConfig::paper_protocol(EnergyModel::Classic, Middleware::Mpi, cluster)
    };
    (sys, cfg)
}

/// The deterministic artifact the straggle smoke journals: the oracle
/// report plus the overhead comparison the CI log wants to show.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StraggleSmoke {
    slowdown: f64,
    golden_wall: f64,
    adaptive_overhead: f64,
    static_overhead: f64,
    ratio: f64,
    report: ScheduleReport,
}

fn straggle_smoke_mode(out: &Path) -> i32 {
    const SLOWDOWN: f64 = 2.5;
    const RATIO_BOUND: f64 = cpc_charmm::chaos::ADAPTIVE_OVERHEAD_RATIO;
    let (sys, cfg) = compute_workload(4, 8);
    let scratch = std::env::temp_dir().join(format!("cpc-straggle-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let h = ChaosHarness::new(sys, cfg, &scratch).expect("fault-free golden run must succeed");

    let plan = FaultPlan::none().with_straggler(0, SLOWDOWN);
    let report = h.check(&plan);
    let rollbacks = report.recoveries + report.watchdog_trips;
    let mut bad = Vec::new();
    if !report.passed() {
        for v in &report.violations {
            bad.push(format!("oracle violation: {v}"));
        }
    }
    if rollbacks > 0 {
        bad.push(format!("{rollbacks} rollback episode(s); expected none"));
    }
    if report.evictions > 0 {
        bad.push(format!(
            "{} eviction(s); a {SLOWDOWN}x straggler is rebalance territory",
            report.evictions
        ));
    }
    if report.rebalances == 0 {
        bad.push("the ladder never re-cut the partition".to_string());
    }

    // Static-decomposition reference for the CI log: same plan, same
    // checkpointing, rebalancing off. check() already ran this
    // comparison inside the mitigation oracle; repeating it here puts
    // the actual overheads in the artifact.
    let (sys2, cfg2) = compute_workload(4, 8);
    let static_fault = FaultConfig::new(plan)
        .with_recovery(RecoveryConfig {
            rebalance: false,
            ..RecoveryConfig::default()
        })
        .with_durable(DurableConfig::new(scratch.join("static-ref")).with_keep(16));
    let st = run_parallel_md_faulty(&sys2, &cfg2, &static_fault).expect("static reference run");
    let adaptive_overhead = report.wall_time / h.golden_wall() - 1.0;
    let static_overhead = st.report.wall_time / h.golden_wall() - 1.0;
    let ratio = adaptive_overhead / static_overhead;
    if static_overhead <= 0.05 {
        bad.push(format!(
            "static overhead {static_overhead:.4} too small — the workload no longer exposes the straggler"
        ));
    } else if ratio >= RATIO_BOUND {
        bad.push(format!(
            "adaptive overhead {adaptive_overhead:.4} is {ratio:.2} x static {static_overhead:.4} (bound {RATIO_BOUND})"
        ));
    }

    let smoke = StraggleSmoke {
        slowdown: SLOWDOWN,
        golden_wall: h.golden_wall(),
        adaptive_overhead,
        static_overhead,
        ratio,
        report,
    };
    let path = out.join("straggle_smoke.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&smoke).expect("smoke verdict serializes"),
    )
    .expect("write straggle smoke artifact");
    println!(
        "straggle smoke: {SLOWDOWN}x persistent straggler, {} rebalance(s), \
         {rollbacks} rollback(s), overhead {adaptive_overhead:.4} adaptive vs \
         {static_overhead:.4} static (ratio {ratio:.2}, bound {RATIO_BOUND})",
        smoke.report.rebalances
    );
    println!("artifact: {}", path.display());
    if bad.is_empty() {
        0
    } else {
        for b in &bad {
            eprintln!("STRAGGLE SMOKE FAILURE: {b}");
        }
        1
    }
}

fn replay_mode(file: &str) -> i32 {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        std::process::exit(2);
    });
    let repro = Reproducer::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {file}: {e}");
        std::process::exit(2);
    });
    let h = make_harness(repro.ranks, repro.steps);
    let report = h.check(&repro.plan);
    if report.passed() {
        println!("reproducer did NOT reproduce: every oracle held");
        1
    } else {
        println!("reproduced {} violation(s):", report.violations.len());
        for v in &report.violations {
            println!("  - {v}");
        }
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/chaos".to_string());
    let out = PathBuf::from(out);
    std::fs::create_dir_all(&out).expect("create output directory");

    if let Some(file) = args
        .iter()
        .position(|a| a == "--replay")
        .and_then(|i| args.get(i + 1).cloned())
    {
        std::process::exit(replay_mode(&file));
    }
    if args.iter().any(|a| a == "--plant") {
        std::process::exit(plant_mode(&out));
    }
    if args.iter().any(|a| a == "--straggle-smoke") {
        std::process::exit(straggle_smoke_mode(&out));
    }

    let schedules: u64 = parse_flag_value(&args, "--schedules").unwrap_or(50);
    let seed: u64 = parse_flag_value(&args, "--seed").unwrap_or(7);
    let ranks: usize = parse_flag_value(&args, "--ranks").unwrap_or(4);
    let steps: usize = parse_flag_value(&args, "--steps").unwrap_or(8);
    let soak = args.iter().any(|a| a == "--soak");
    let resume = args.iter().any(|a| a == "--resume");

    let journal_path = out.join("chaos.jsonl");
    let (mut journal, prior) = if resume {
        let (j, recovery) =
            Journal::<Verdict>::resume(&journal_path).expect("resume chaos journal");
        if recovery.dropped > 0 {
            eprintln!(
                "journal {}: discarded {} torn/damaged trailing line(s)",
                journal_path.display(),
                recovery.dropped
            );
        }
        eprintln!(
            "journal {}: resuming past {} checked schedule(s)",
            journal_path.display(),
            recovery.entries.len()
        );
        (j, recovery.entries)
    } else {
        (
            Journal::<Verdict>::create(&journal_path).expect("create chaos journal"),
            Vec::new(),
        )
    };
    let done: HashSet<u64> = prior
        .iter()
        .filter(|v| v.seed == seed)
        .map(|v| v.index)
        .collect();
    let mut failures: Vec<u64> = prior
        .iter()
        .filter(|v| v.seed == seed && !v.report.passed())
        .map(|v| v.index)
        .collect();

    let h = make_harness(ranks, steps);
    let space = FaultSpace::new(
        h.cfg().cluster.ranks,
        h.cfg().cluster.nodes(),
        steps as u64,
        h.golden_wall(),
        24, // atoms of the quick water box; SDC atom indices wrap anyway
    );
    println!(
        "chaos campaign: seed {seed}, {} schedules{}, p = {ranks}, {steps} steps, horizon {:.4} s",
        schedules,
        if soak {
            " per soak round (unbounded)"
        } else {
            ""
        },
        h.golden_wall()
    );

    let mut checked = 0u64;
    let mut index = 0u64;
    loop {
        if !soak && index >= schedules {
            break;
        }
        if done.contains(&index) {
            index += 1;
            continue;
        }
        let plan = space.sample(seed, index);
        let report = h.check(&plan);
        checked += 1;
        let failed = !report.passed();
        journal
            .append(&Verdict {
                seed,
                index,
                report: report.clone(),
            })
            .expect("journal chaos verdict");
        if failed {
            println!("schedule {index}: {} VIOLATION(S)", report.violations.len());
            for v in &report.violations {
                println!("  - {v}");
            }
            let repro = h.minimize_to_reproducer(&plan, seed, index);
            let path = write_reproducer(&out, &format!("repro-{index:05}.json"), &repro);
            println!(
                "  minimized to {} event(s) in {} probe(s): {}",
                repro.events,
                repro.probes,
                path.display()
            );
            failures.push(index);
            if soak {
                break;
            }
        } else if (index + 1).is_multiple_of(10) {
            println!("schedule {index}: ok ({} events)", report.events);
        }
        index += 1;
    }

    println!(
        "checked {checked} fresh schedule(s) ({} total), {} violation(s)",
        done.len() as u64 + checked,
        failures.len()
    );
    if !failures.is_empty() {
        failures.sort_unstable();
        failures.dedup();
        println!("failing schedules: {failures:?}");
        std::process::exit(1);
    }
    println!("all oracles held");
}
