//! Regenerates the paper's Figure 7 from virtual-cluster measurements.
use cpc_bench::FigureArgs;

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let mut lab = args.lab(&system);
    println!("{}", cpc_workload::figures::fig7(&mut lab));
    args.finish(&lab);
}
