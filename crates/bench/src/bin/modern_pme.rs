//! "Future work, implemented": how much of the paper's PME scalability
//! wall is the replicated-data implementation rather than the
//! algorithm? Compares CHARMM-style parallel PME (full-mesh global
//! sum plus convolution-mesh allgather) against a spatially decomposed
//! PME (halo exchanges only) on the same virtual clusters.
use cpc_bench::FigureArgs;
use cpc_charmm::{ParallelPme, SpatialPme};
use cpc_cluster::{elapsed_time, run_cluster, ClusterConfig, NetworkKind, Phase, PIII_1GHZ};
use cpc_mpi::{Comm, Middleware};

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let params = if args.quick {
        cpc_workload::runner::quick_pme_params()
    } else {
        cpc_workload::runner::paper_pme_params()
    };

    println!(
        "One PME k-space evaluation, {} atoms, mesh {}x{}x{} (virtual time):\n",
        system.n_atoms(),
        params.grid.nx,
        params.grid.ny,
        params.grid.nz
    );
    println!(
        "{:<24} {:>3} {:>16} {:>16} {:>9}",
        "network", "p", "replicated (ms)", "spatial (ms)", "speedup"
    );
    for network in [
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
    ] {
        for p in [2usize, 4, 8] {
            let sys = &system;
            let time_for = |spatial: bool| {
                let cfg = ClusterConfig::uni(p, network);
                let out = run_cluster(cfg, |ctx| {
                    ctx.set_phase(Phase::Pme);
                    let mut comm = Comm::new(ctx, Middleware::Mpi);
                    if spatial {
                        SpatialPme::new(params, p).energy_forces(&mut comm, sys, &PIII_1GHZ);
                    } else {
                        ParallelPme::new(params, p).energy_forces(&mut comm, sys, &PIII_1GHZ);
                    }
                });
                elapsed_time(&out)
            };
            let replicated = time_for(false);
            let spatial = time_for(true);
            println!(
                "{:<24} {:>3} {:>16.2} {:>16.2} {:>8.2}x",
                network.label(),
                p,
                replicated * 1e3,
                spatial * 1e3,
                replicated / spatial
            );
        }
        println!();
    }
    println!(
        "Reading: a mesh-aware decomposition removes the two full-mesh\n\
         exchanges per step. On TCP at p=8 that is most of the PME overhead —\n\
         the paper's PME wall is largely the replicated-data implementation,\n\
         which is exactly how later MD engines (NAMD, GROMACS 4, LAMMPS)\n\
         escaped it."
    );
}
