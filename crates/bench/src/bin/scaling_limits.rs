//! Tests the paper's closing quantitative claims (Section 5): "the
//! amount of parallelism in CHARMM should suffice to run efficient
//! parallel calculations on clusters with up to the 32 to 64
//! processors ... for PME, good scalability is limited to a reasonable
//! fraction (e.g. a quarter) of such a cluster."
//!
//! Measures classic-only and PME calculations out to 32 processors on
//! SCore (the "improved communication system software" the conclusion
//! recommends) and reports where parallel efficiency crosses 50%.
use cpc_bench::FigureArgs;
use cpc_cluster::NetworkKind;
use cpc_md::EnergyModel;
use cpc_workload::runner::{measure_with_model, paper_pme_params, quick_pme_params};
use cpc_workload::ExperimentPoint;

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let (pme_model, steps) = if args.quick {
        (EnergyModel::Pme(quick_pme_params()), 2)
    } else {
        (EnergyModel::Pme(paper_pme_params()), 10)
    };

    for (label, model) in [
        ("classic (switch/shift) model", EnergyModel::Classic),
        ("PME model", pme_model),
    ] {
        println!("=== {label}, SCore on Ethernet ===");
        println!(
            "{:>4} {:>10} {:>9} {:>11}",
            "p", "total(s)", "speedup", "efficiency"
        );
        let mut t1 = 0.0;
        let mut half_eff_at = None;
        for p in [1usize, 2, 4, 8, 16, 32] {
            let point = ExperimentPoint {
                network: NetworkKind::ScoreGigE,
                ..ExperimentPoint::focal(p)
            };
            let m = measure_with_model(&system, point, steps, model);
            let total = m.energy_time();
            if p == 1 {
                t1 = total;
            }
            let speedup = t1 / total;
            let eff = speedup / p as f64;
            if eff < 0.5 && half_eff_at.is_none() && p > 1 {
                half_eff_at = Some(p);
            }
            println!(
                "{p:>4} {total:>10.3} {speedup:>8.2}x {:>10.1}%",
                100.0 * eff
            );
        }
        match half_eff_at {
            Some(p) => println!("-> efficiency drops below 50% at p = {p}\n"),
            None => println!("-> efficiency stays above 50% through p = 32\n"),
        }
    }
    println!(
        "Paper's claim: classic parallelism carries to 32-64 processors with\n\
         good communication software; PME to roughly a quarter of that."
    );
}
