//! Regenerates every figure and the factorial table in one run
//! (measurements are shared across figures).
use cpc_bench::FigureArgs;

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let mut lab = args.lab(&system);
    println!("{}", cpc_workload::figures::all_figures(&mut lab));
    args.finish(&lab);
}
