//! Quantifies the effect of every platform factor on the energy
//! calculation time: the 2^3 factorial analysis (Jain \[11\]) the paper's
//! experimental design is built on, plus marginal means over the full
//! three-network factorial.
use cpc_bench::FigureArgs;
use cpc_workload::analysis::{factorial_2k, marginal_means};

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let mut lab = args.lab(&system);
    for procs in [2usize, 4, 8] {
        println!("{}\n", factorial_2k(&mut lab, procs).render());
    }
    println!("{}", marginal_means(&mut lab, 8));
    args.finish(&lab);
}
