//! Regenerates the paper's Figure 8 from virtual-cluster measurements.
use cpc_bench::FigureArgs;

fn main() {
    let args = FigureArgs::parse();
    let system = args.system();
    let mut lab = args.lab(&system);
    println!("{}", cpc_workload::figures::fig8(&mut lab));
    args.finish(&lab);
}
