//! Prints the structure of the energy calculation (paper Figure 2).
fn main() {
    println!("{}", cpc_workload::figures::phase_trace());
}
