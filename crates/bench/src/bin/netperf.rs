//! Network microbenchmark for the virtual interconnects — the
//! calibration card. Prints the latency, bandwidth curve and
//! tiny-message behaviour of every modeled network, the numbers the
//! DESIGN.md substitution table promises.
use cpc_cluster::{elapsed_time, run_cluster, ClusterConfig, MsgClass, NetworkKind, OpShape};

fn ping_pong(cfg: ClusterConfig, bytes: usize, reps: usize) -> f64 {
    let out = run_cluster(cfg, |ctx| {
        let doubles = bytes.div_ceil(8);
        for r in 0..reps as u64 {
            if ctx.rank() == 0 {
                ctx.send(1, r, vec![0.0; doubles], MsgClass::Payload, OpShape::p2p());
                ctx.recv(1, r);
            } else {
                ctx.recv(0, r);
                ctx.send(0, r, vec![0.0; doubles], MsgClass::Payload, OpShape::p2p());
            }
        }
    });
    elapsed_time(&out) / reps as f64
}

fn main() {
    println!("Virtual-network calibration card (ping-pong, 2 ranks, mean of 40):\n");
    println!(
        "{:<26} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "network", "latency(us)", "8KB MB/s", "64KB MB/s", "1MB MB/s", "4MB MB/s"
    );
    for kind in NetworkKind::ALL {
        let cfg = ClusterConfig::uni(2, kind);
        let rtt = ping_pong(cfg, 8, 40);
        let bw = |bytes: usize| {
            let t = ping_pong(cfg, bytes, 12);
            // One direction per half round trip.
            bytes as f64 / (t / 2.0) / 1e6
        };
        println!(
            "{:<26} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            kind.label(),
            rtt / 2.0 * 1e6,
            bw(8 * 1024),
            bw(64 * 1024),
            bw(1024 * 1024),
            bw(4 * 1024 * 1024),
        );
    }
    println!(
        "\n(compare: the paper cites TCP/GigE latency in the tens of microseconds\n\
         with mediocre effective MPI bandwidth, SCore at ~20 us on the same\n\
         wire, Myrinet near 10 us and ~130 MB/s — the 1993 Cray T3D class)"
    );
}
