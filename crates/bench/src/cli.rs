//! Shared command-line parsing for the bench binaries.
//!
//! Every campaign binary (`campaign`, `chaos`, `fault_sweep`, the
//! figure binaries) takes the same shape of flags — `--out DIR`,
//! `--resume`, `--seed S`, budget knobs — and used to hand-roll the
//! same scan-and-exit loop. [`Args`] is that loop, once: a positional
//! scanner with typed [`CliError`]s, where every malformed invocation
//! exits with code 2 (the usage/environment discipline: 0 = success,
//! 1 = a gate failed, 2 = the run never validly started, 3 =
//! [`EXIT_CELL_BUDGET`](cpc_workload::figures::EXIT_CELL_BUDGET)).

use cpc_workload::journal::{Journal, Recovery};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// Exit code for usage and environment errors.
pub const EXIT_USAGE: i32 = 2;

/// A typed usage error. Every variant is fatal with [`EXIT_USAGE`];
/// the type exists so tests (and callers that want to recover) see
/// *which* way an invocation was malformed, not a formatted string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag that takes a value appeared last, or its value was
    /// swallowed by another flag.
    MissingValue {
        /// The flag missing its value.
        flag: String,
    },
    /// A flag's value did not parse.
    InvalidValue {
        /// The flag whose value was rejected.
        flag: String,
        /// The rejected text.
        value: String,
        /// What the flag wanted, e.g. "an integer cell count".
        expected: &'static str,
    },
    /// Arguments nothing consumed.
    UnknownArgs {
        /// The leftover arguments, in order.
        args: Vec<String>,
    },
    /// A structurally valid combination that makes no sense, e.g.
    /// `--resume` without `--journal`.
    Conflict {
        /// Human-readable explanation.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { flag } => write!(f, "{flag} requires a value"),
            CliError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag} requires {expected} (got {value:?})"),
            CliError::UnknownArgs { args } => write!(f, "unknown argument(s): {}", args.join(" ")),
            CliError::Conflict { message } => f.write_str(message),
        }
    }
}

/// An argument scanner over one invocation. Flags are consumed by the
/// accessor methods in any order; [`Args::finish`] rejects whatever
/// was left. `--help`/`-h` print the usage string and exit 0.
pub struct Args {
    tool: &'static str,
    usage: &'static str,
    argv: Vec<String>,
    taken: Vec<bool>,
}

impl Args {
    /// Scans `std::env::args` (program name skipped).
    pub fn parse(tool: &'static str, usage: &'static str) -> Self {
        Self::from_vec(tool, usage, std::env::args().skip(1).collect())
    }

    /// Scans an explicit vector (tests).
    pub fn from_vec(tool: &'static str, usage: &'static str, argv: Vec<String>) -> Self {
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            println!("{usage}");
            std::process::exit(0);
        }
        let taken = vec![false; argv.len()];
        Args {
            tool,
            usage,
            argv,
            taken,
        }
    }

    /// Reports `err` and the usage line, then exits with [`EXIT_USAGE`].
    pub fn die(&self, err: CliError) -> ! {
        eprintln!("{}: {err}\n{}", self.tool, self.usage);
        std::process::exit(EXIT_USAGE);
    }

    fn position(&self, name: &str) -> Option<usize> {
        (0..self.argv.len()).find(|&i| !self.taken[i] && self.argv[i] == name)
    }

    /// Consumes every occurrence of a bare flag; true when present.
    pub fn flag(&mut self, name: &str) -> bool {
        let mut found = false;
        while let Some(i) = self.position(name) {
            self.taken[i] = true;
            found = true;
        }
        found
    }

    /// Consumes `name VALUE`; `None` when absent.
    pub fn value(&mut self, name: &str) -> Option<String> {
        match self.try_value(name) {
            Ok(v) => v,
            Err(e) => self.die(e),
        }
    }

    fn try_value(&mut self, name: &str) -> Result<Option<String>, CliError> {
        let Some(i) = self.position(name) else {
            return Ok(None);
        };
        self.taken[i] = true;
        match self.argv.get(i + 1) {
            Some(v) if !self.taken[i + 1] => {
                self.taken[i + 1] = true;
                Ok(Some(v.clone()))
            }
            _ => Err(CliError::MissingValue { flag: name.into() }),
        }
    }

    /// Consumes `name VALUE` and parses it; `None` when absent.
    pub fn parsed<T: FromStr>(&mut self, name: &str, expected: &'static str) -> Option<T> {
        match self.try_parsed(name, expected) {
            Ok(v) => v,
            Err(e) => self.die(e),
        }
    }

    fn try_parsed<T: FromStr>(
        &mut self,
        name: &str,
        expected: &'static str,
    ) -> Result<Option<T>, CliError> {
        match self.try_value(name)? {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| CliError::InvalidValue {
                flag: name.into(),
                value: v,
                expected,
            }),
        }
    }

    /// Rejects a combination the scanner cannot see structurally.
    pub fn conflict(&self, message: impl Into<String>) -> ! {
        self.die(CliError::Conflict {
            message: message.into(),
        })
    }

    /// Rejects an invocation selecting more than one of a set of
    /// mutually exclusive modes. `selected` pairs each mode flag with
    /// whether the invocation chose it.
    pub fn exclusive(&self, selected: &[(&str, bool)]) {
        if let Err(e) = Self::try_exclusive(selected) {
            self.die(e);
        }
    }

    fn try_exclusive(selected: &[(&str, bool)]) -> Result<(), CliError> {
        let on: Vec<&str> = selected
            .iter()
            .filter(|(_, chosen)| *chosen)
            .map(|(flag, _)| *flag)
            .collect();
        if on.len() > 1 {
            Err(CliError::Conflict {
                message: format!("{} are mutually exclusive", on.join(" and ")),
            })
        } else {
            Ok(())
        }
    }

    /// Fails on anything no accessor consumed.
    pub fn finish(self) {
        if let Err(e) = self.try_finish() {
            self.die(e);
        }
    }

    fn try_finish(&self) -> Result<(), CliError> {
        let leftover: Vec<String> = (0..self.argv.len())
            .filter(|&i| !self.taken[i])
            .map(|i| self.argv[i].clone())
            .collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(CliError::UnknownArgs { args: leftover })
        }
    }
}

/// Opens (or resumes) a per-mode verdict journal with the recovery
/// discipline every chaos campaign shares: `resume` recovers the
/// intact prefix through [`Journal::resume_keyed`] (torn tails
/// discarded and counted, duplicate verdicts scrubbed first-wins) and
/// reports what recovery did on stderr; a fresh run truncates. Any
/// journal I/O failure is a [`EXIT_USAGE`] environment error — the
/// campaign never validly started.
pub fn open_verdict_journal<V, K>(
    tool: &str,
    path: &Path,
    resume: bool,
    key_of: impl Fn(&V) -> K,
) -> (Journal<V>, Vec<V>)
where
    V: Serialize + Deserialize,
    K: std::hash::Hash + Eq,
{
    let fail = |verb: &str, e: std::io::Error| -> ! {
        eprintln!("{tool}: cannot {verb} {}: {e}", path.display());
        std::process::exit(EXIT_USAGE);
    };
    if resume {
        let (journal, recovery): (_, Recovery<V>) = match Journal::resume_keyed(path, key_of) {
            Ok(pair) => pair,
            Err(e) => fail("resume", e),
        };
        if recovery.dropped > 0 {
            eprintln!(
                "journal {}: discarded {} torn/damaged trailing line(s)",
                path.display(),
                recovery.dropped
            );
        }
        if recovery.duplicates > 0 {
            eprintln!(
                "journal {}: scrubbed {} duplicate verdict(s) (first wins)",
                path.display(),
                recovery.duplicates
            );
        }
        eprintln!(
            "journal {}: resuming past {} checked schedule(s)",
            path.display(),
            recovery.entries.len()
        );
        (journal, recovery.entries)
    } else {
        match Journal::create(path) {
            Ok(journal) => (journal, Vec::new()),
            Err(e) => fail("create", e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_vec("test", "usage", v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_and_values_consume_in_any_order() {
        let mut a = args(&["--out", "dir", "--quick", "--seed", "9"]);
        assert_eq!(a.try_parsed::<u64>("--seed", "a seed"), Ok(Some(9)));
        assert!(a.flag("--quick"));
        assert!(!a.flag("--soak"));
        assert_eq!(a.try_value("--out"), Ok(Some("dir".to_string())));
        assert_eq!(a.try_finish(), Ok(()));
    }

    #[test]
    fn missing_and_invalid_values_are_typed() {
        let mut a = args(&["--seed"]);
        assert_eq!(
            a.try_value("--seed"),
            Err(CliError::MissingValue {
                flag: "--seed".into()
            })
        );
        let mut a = args(&["--seed", "ten"]);
        assert_eq!(
            a.try_parsed::<u64>("--seed", "an integer"),
            Err(CliError::InvalidValue {
                flag: "--seed".into(),
                value: "ten".into(),
                expected: "an integer",
            })
        );
    }

    #[test]
    fn leftovers_are_rejected_with_the_offenders_listed() {
        let mut a = args(&["--quick", "--frob", "x"]);
        assert!(a.flag("--quick"));
        assert_eq!(
            a.try_finish(),
            Err(CliError::UnknownArgs {
                args: vec!["--frob".into(), "x".into()]
            })
        );
    }

    #[test]
    fn a_duplicated_value_flag_is_rejected_not_silently_merged() {
        // First occurrence wins the accessor; the second survives to
        // finish() as an unknown leftover, so `--seed 1 --seed 2`
        // cannot silently mean either one.
        let mut a = args(&["--seed", "1", "--seed", "2"]);
        assert_eq!(a.try_value("--seed"), Ok(Some("1".to_string())));
        assert_eq!(
            a.try_finish(),
            Err(CliError::UnknownArgs {
                args: vec!["--seed".into(), "2".into()]
            })
        );
    }

    #[test]
    fn exclusive_modes_conflict_only_when_two_are_chosen() {
        assert_eq!(Args::try_exclusive(&[("--a", false), ("--b", false)]), Ok(()));
        assert_eq!(Args::try_exclusive(&[("--a", true), ("--b", false)]), Ok(()));
        assert_eq!(
            Args::try_exclusive(&[("--a", true), ("--b", true), ("--c", false)]),
            Err(CliError::Conflict {
                message: "--a and --b are mutually exclusive".into()
            })
        );
    }

    #[test]
    fn a_flag_does_not_swallow_a_consumed_neighbor() {
        // `--resume --out`: --out's "value" position holds a flag that
        // was already consumed, so --out is missing its value rather
        // than silently eating it.
        let mut a = args(&["--out", "--resume"]);
        assert!(a.flag("--resume"));
        assert_eq!(
            a.try_value("--out"),
            Err(CliError::MissingValue {
                flag: "--out".into()
            })
        );
    }
}
