//! # cpc-gateway
//!
//! The overload-safe multi-tenant HTTP/JSON front door to the
//! crash-safe campaign job service (`cpc-workload`): remote clients
//! submit measurement campaigns, poll status, and fetch results over
//! a dependency-free HTTP/1.1 surface, while the gateway defends the
//! service against every hostile-transport behaviour the cluster
//! papers' fault model implies at the edge:
//!
//! * [`http`] — bounded HTTP/1.1 over an abstract [`Conn`]: request
//!   deadlines defeating slowloris clients, explicit size limits for
//!   request line / headers / body, typed errors mapping to exact
//!   status codes,
//! * [`tenancy`] — deficit-round-robin fair scheduling across tenants
//!   with priority aging, so a flooding tenant cannot starve a
//!   well-behaved one,
//! * [`gateway`] — routes, per-tenant bounded admission with 429/503
//!   load shedding (`Retry-After` derived from the Jacobson/Karels
//!   RTO estimator over per-cell costs), content-addressed idempotent
//!   submission dedup, graceful drain, and `kill -9` recovery from
//!   per-campaign `meta.json` + journals,
//! * [`chaos`] — a deterministic transport fault injector
//!   ([`ScriptedConn`]) and the [`run_gateway_chaos`] driver proving
//!   the gateway oracles: no panic, no fd leak, no I/O past a
//!   deadline, no lost or doubly-executed cell, and byte-identical
//!   artifacts after kill-resume through the HTTP path,
//! * [`composed`] — the cross-layer chaos conductor
//!   ([`run_composed_chaos`]): one campaign with the disk, scheduler,
//!   service, and transport fault layers armed simultaneously,
//!   absorbed into a single `CrossLedger` checked by the union of the
//!   single-layer oracles plus the cross-layer interaction oracles,
//! * [`demo`] — the cheap deterministic campaign model tests and CI
//!   gates drive through the full stack.

#![warn(missing_docs)]

pub mod chaos;
pub mod composed;
pub mod demo;
pub mod gateway;
pub mod http;
pub mod tenancy;

pub use chaos::{http_get, http_post, run_gateway_chaos, GatewayChaosReport, ScriptedConn};
pub use composed::{run_composed_chaos, ComposedChaosReport};
pub use demo::{demo_cells, demo_flood_cells, DemoModel};
pub use gateway::{campaign_id, CampaignModel, Gateway, GatewayConfig, GatewayStats, PumpReport};
pub use http::{
    read_request, write_response, Conn, HttpError, HttpLimits, Request, Response, TcpConn,
};
pub use tenancy::{DrrScheduler, TenantPolicy};
