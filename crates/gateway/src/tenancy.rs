//! Deficit-round-robin fair scheduling across tenants, with priority
//! aging so a tenant starved by heavier neighbours earns extra quantum
//! when its turn comes.
//!
//! The scheduler hands out **one cell grant at a time**: the gateway
//! asks [`DrrScheduler::grant`] which tenant's campaign may advance
//! one cell, supplying a backlog probe. Classic DRR semantics with a
//! unit cell cost: each tenant's deficit refills by its quantum when
//! it comes up with work, drains one per grant, and resets when its
//! backlog empties — so a flooding tenant cannot starve a well-behaved
//! one, and long-waiting tenants are served in bounded time.

use std::collections::HashMap;

/// Per-tenant admission and scheduling policy (uniform across
/// tenants; the fairness comes from DRR, not from per-tenant tuning).
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Cells granted per DRR service opportunity.
    pub quantum: usize,
    /// Upper bound on a tenant's pending (submitted, not yet durable)
    /// cells; submissions beyond it are shed with 429.
    pub max_pending_cells: usize,
    /// Grants a backlogged tenant waits per bonus quantum cell
    /// (priority aging): after `aging_rounds` grants went elsewhere,
    /// its next refill grows by one.
    pub aging_rounds: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            quantum: 4,
            max_pending_cells: 64,
            aging_rounds: 8,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Credit {
    deficit: usize,
    starved: usize,
}

/// The deficit-round-robin grant loop over registered tenants.
#[derive(Debug)]
pub struct DrrScheduler {
    quantum: usize,
    aging_rounds: usize,
    order: Vec<String>,
    state: HashMap<String, Credit>,
    cursor: usize,
}

impl DrrScheduler {
    /// A scheduler with the policy's quantum and aging rate.
    pub fn new(policy: &TenantPolicy) -> Self {
        DrrScheduler {
            quantum: policy.quantum.max(1),
            aging_rounds: policy.aging_rounds.max(1),
            order: Vec::new(),
            state: HashMap::new(),
            cursor: 0,
        }
    }

    /// Registers a tenant (idempotent); round-robin order is
    /// first-registration order.
    pub fn register(&mut self, tenant: &str) {
        if !self.state.contains_key(tenant) {
            self.order.push(tenant.to_string());
            self.state.insert(tenant.to_string(), Credit::default());
        }
    }

    /// Registered tenants in round-robin order.
    pub fn tenants(&self) -> &[String] {
        &self.order
    }

    /// Picks the tenant whose campaign may advance one cell, or `None`
    /// when no tenant has backlog. `backlog` reports a tenant's
    /// pending cell count; it is consulted fresh on every grant so the
    /// scheduler never holds stale queue state.
    pub fn grant(&mut self, backlog: impl Fn(&str) -> usize) -> Option<String> {
        let n = self.order.len();
        let mut visited = 0;
        while visited < n {
            let name = self.order[self.cursor].clone();
            let pending = backlog(&name);
            let credit = self.state.get_mut(&name).expect("registered tenant");
            if pending == 0 {
                // Classic DRR: an empty queue forfeits its deficit —
                // idle time cannot be banked into a later burst.
                credit.deficit = 0;
                credit.starved = 0;
                self.cursor = (self.cursor + 1) % n;
                visited += 1;
                continue;
            }
            if credit.deficit == 0 {
                // New service opportunity: quantum plus the aging
                // bonus earned while other tenants were served.
                let bonus = (credit.starved / self.aging_rounds).min(self.quantum);
                credit.deficit = self.quantum + bonus;
                credit.starved = 0;
            }
            credit.deficit -= 1;
            if credit.deficit == 0 {
                self.cursor = (self.cursor + 1) % n;
            }
            // Everyone else with work waited one more grant.
            for other in &self.order {
                if other != &name && backlog(other) > 0 {
                    self.state.get_mut(other).expect("registered").starved += 1;
                }
            }
            return Some(name);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sched(quantum: usize, aging: usize) -> DrrScheduler {
        DrrScheduler::new(&TenantPolicy {
            quantum,
            max_pending_cells: 1000,
            aging_rounds: aging,
        })
    }

    /// Runs `grants` grants against fixed backlogs, decrementing as
    /// cells are granted; returns per-tenant grant counts.
    fn drive(
        s: &mut DrrScheduler,
        mut backlog: HashMap<String, usize>,
        grants: usize,
    ) -> HashMap<String, usize> {
        let mut got: HashMap<String, usize> = HashMap::new();
        for _ in 0..grants {
            let snapshot = backlog.clone();
            let Some(t) = s.grant(|name| *snapshot.get(name).unwrap_or(&0)) else {
                break;
            };
            *backlog.get_mut(&t).unwrap() -= 1;
            *got.entry(t).or_default() += 1;
        }
        got
    }

    #[test]
    fn equal_backlogs_split_grants_evenly() {
        let mut s = sched(4, 8);
        s.register("a");
        s.register("b");
        let got = drive(
            &mut s,
            [("a".into(), 100), ("b".into(), 100)].into_iter().collect(),
            80,
        );
        assert_eq!(got["a"], 40);
        assert_eq!(got["b"], 40);
    }

    #[test]
    fn a_flooding_tenant_cannot_starve_a_small_one() {
        let mut s = sched(4, 8);
        s.register("flood");
        s.register("small");
        // The small tenant's 10 cells all complete within the first
        // ~20 grants despite the flood's 10_000-cell backlog.
        let got = drive(
            &mut s,
            [("flood".into(), 10_000), ("small".into(), 10)]
                .into_iter()
                .collect(),
            24,
        );
        assert_eq!(got["small"], 10, "the small tenant drains");
        assert!(got["flood"] >= 10, "the flood still progresses");
    }

    #[test]
    fn aging_grows_the_refill_of_a_tenant_that_waited() {
        let mut s = sched(2, 2);
        s.register("a");
        s.register("b");
        // Serve only `a` for a while (b has no work — idle time banks
        // nothing), then give b a backlog: while a finishes its
        // quantum b waits with work, earning one bonus cell per
        // `aging_rounds` waited grants, so b's refills exceed the
        // bare quantum.
        let mut b_backlog = 0usize;
        let mut served_b_quanta: Vec<usize> = Vec::new();
        let mut run = 0usize;
        for round in 0..40 {
            let a_backlog = 1000;
            if round == 10 {
                b_backlog = 1000;
            }
            let t = s
                .grant(|name| if name == "a" { a_backlog } else { b_backlog })
                .unwrap();
            if t == "b" {
                run += 1;
            } else if run > 0 {
                served_b_quanta.push(run);
                run = 0;
            }
        }
        if run > 0 {
            served_b_quanta.push(run);
        }
        assert!(
            served_b_quanta.first().copied().unwrap_or(0) >= 2,
            "b's first service opportunity carries at least its quantum: {served_b_quanta:?}"
        );
        assert!(
            served_b_quanta.iter().any(|&q| q > 2),
            "waiting with backlog must earn a bonus beyond the quantum: {served_b_quanta:?}"
        );
    }

    #[test]
    fn no_backlog_means_no_grant_and_registration_is_idempotent() {
        let mut s = sched(4, 8);
        s.register("a");
        s.register("a");
        assert_eq!(s.tenants().len(), 1);
        assert_eq!(s.grant(|_| 0), None);
    }
}
