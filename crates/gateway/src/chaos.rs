//! Transport-level chaos for the gateway: a scripted connection that
//! plays hostile clients deterministically on a virtual clock, and
//! [`run_gateway_chaos`] — the driver that pushes a whole campaign
//! through the HTTP path under a sampled [`TransportFaultPlan`]
//! (malformed request lines, truncated bodies, slow readers,
//! mid-response disconnects, connection floods, `kill -9` of the
//! gateway itself) and convicts any violation of the gateway oracles:
//! no panic, no fd leak, no I/O past a deadline, no lost or
//! doubly-executed cell, byte-identical artifacts after kill-resume
//! through HTTP.

use crate::gateway::{campaign_id, CampaignModel, Gateway, GatewayConfig};
use crate::http::{Conn, HttpLimits};
use crate::tenancy::TenantPolicy;
use cpc_charmm::{check_gateway_ledger, GatewayLedger, GatewayViolation};
use cpc_cluster::{TransportFault, TransportFaultPlan};
use cpc_workload::service::{artifact_digest, JobService, KillPoint, ServiceConfig};
use serde_json::Value;
use std::io;
use std::path::PathBuf;

/// A deterministic scripted client connection: fixed request bytes
/// dripped at a configurable chunk size and per-read virtual delay,
/// an optional write budget after which the peer "disconnects", and
/// an overrun counter convicting any read issued after the deadline
/// already passed.
pub struct ScriptedConn {
    input: Vec<u8>,
    pos: usize,
    chunk: usize,
    delay: f64,
    clock: f64,
    deadline: f64,
    write_budget: Option<usize>,
    written: Vec<u8>,
    overruns: usize,
}

impl ScriptedConn {
    /// A well-behaved connection delivering `bytes` as fast as asked.
    pub fn request(bytes: Vec<u8>) -> Self {
        ScriptedConn {
            input: bytes,
            pos: 0,
            chunk: usize::MAX,
            delay: 0.0,
            clock: 0.0,
            deadline: f64::INFINITY,
            write_budget: None,
            written: Vec::new(),
            overruns: 0,
        }
    }

    /// Byte-dribbling client: at most `chunk` bytes per read, each
    /// read costing `delay` virtual seconds.
    pub fn dribble(mut self, chunk: usize, delay: f64) -> Self {
        self.chunk = chunk.max(1);
        self.delay = delay.max(0.0);
        self
    }

    /// Arms the overrun counter: reads issued once the virtual clock
    /// is past `deadline` are counted (they should never happen —
    /// the handler checks its deadline before every read).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = deadline;
        self
    }

    /// The peer vanishes after accepting `bytes` response bytes:
    /// writes beyond it fail with `BrokenPipe`.
    pub fn disconnect_after(mut self, bytes: usize) -> Self {
        self.write_budget = Some(bytes);
        self
    }

    /// Everything the gateway wrote before any disconnect.
    pub fn written(&self) -> &[u8] {
        &self.written
    }

    /// Reads issued after the deadline had already passed.
    pub fn overruns(&self) -> usize {
        self.overruns
    }

    /// Status code of the written response, if one was written.
    pub fn response_status(&self) -> Option<u16> {
        let text = std::str::from_utf8(&self.written).ok()?;
        let rest = text.strip_prefix("HTTP/1.1 ")?;
        rest.get(..3)?.parse().ok()
    }

    /// A response header's value, if present.
    pub fn response_header(&self, name: &str) -> Option<String> {
        let text = std::str::from_utf8(&self.written).ok()?;
        let head = text.split("\r\n\r\n").next()?;
        for line in head.split("\r\n").skip(1) {
            let (n, v) = line.split_once(':')?;
            if n.eq_ignore_ascii_case(name) {
                return Some(v.trim().to_string());
            }
        }
        None
    }

    /// The response body, if a complete response was written.
    pub fn response_body(&self) -> Option<String> {
        let text = std::str::from_utf8(&self.written).ok()?;
        let (_, body) = text.split_once("\r\n\r\n")?;
        Some(body.to_string())
    }
}

impl Conn for ScriptedConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.clock > self.deadline + 1e-9 {
            self.overruns += 1;
        }
        self.clock += self.delay;
        if self.pos >= self.input.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.chunk).min(self.input.len() - self.pos);
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(budget) = self.write_budget {
            if self.written.len() + buf.len() > budget {
                let take = budget.saturating_sub(self.written.len());
                self.written.extend_from_slice(&buf[..take]);
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "peer disconnected mid-response",
                ));
            }
        }
        self.written.extend_from_slice(buf);
        Ok(())
    }

    fn elapsed(&self) -> f64 {
        self.clock
    }
}

/// Renders a GET request.
pub fn http_get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\n\r\n").into_bytes()
}

/// Renders a POST request with an exact `Content-Length`.
pub fn http_post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Everything a gateway chaos schedule produced.
#[derive(Debug, Clone)]
pub struct GatewayChaosReport {
    /// Cross-incarnation transport + cell accounting.
    pub ledger: GatewayLedger,
    /// Oracle violations (empty = the schedule passed).
    pub violations: Vec<GatewayViolation>,
    /// The canonical campaign's content address.
    pub campaign: String,
}

impl GatewayChaosReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn io_err(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

pub(crate) fn kill_point(point: u8) -> KillPoint {
    match point % 3 {
        0 => KillPoint::BeforeResult,
        1 => KillPoint::MidCommit,
        _ => KillPoint::AfterCommit,
    }
}

/// One connection through the gateway with panic containment; panics
/// and deadline overruns are charged to the ledger, and the connection
/// is returned for response inspection.
pub(crate) fn drive<M: CampaignModel>(
    gw: &mut Gateway<M>,
    mut conn: ScriptedConn,
    ledger: &mut GatewayLedger,
) -> ScriptedConn {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| gw.handle(&mut conn)));
    if outcome.is_err() {
        ledger.panics += 1;
    }
    ledger.deadline_overruns += conn.overruns();
    conn
}

/// Folds one dying incarnation's stats and canonical-campaign
/// execution counters into the ledger. Call exactly once per
/// incarnation, just before dropping the gateway.
fn absorb<M: CampaignModel>(ledger: &mut GatewayLedger, gw: &Gateway<M>, id: &str) {
    if let Some(out) = gw.outcome_of(id) {
        ledger.executed += out.executed;
        ledger.lost_executions += out.lost_executions;
    }
    let stats = gw.stats();
    ledger.conns_opened += stats.conns_opened;
    ledger.conns_closed += stats.conns_closed;
    ledger.requests += stats.requests;
    ledger.rejected += stats.rejected;
    ledger.shed += stats.shed;
}

/// Runs one campaign twice — an uninterrupted direct-path reference in
/// `dir/reference`, and a gateway-path run in `dir/gw` attacked by
/// `plan` — and checks the gateway oracles over the combined ledger.
///
/// `make_model` builds a fresh model per incarnation (reference,
/// every gateway incarnation). `cells_json` is the canonical cells
/// array of the campaign; `flood_cells(i)` renders the i-th distinct
/// flood campaign's cells (connection floods submit real, small,
/// distinct campaigns from a `flood` tenant so the per-tenant bound
/// actually sheds). Gateway kills end an incarnation exactly as
/// `SIGKILL` would — the process state is dropped, durable state
/// stays — and the next incarnation recovers from `meta.json` +
/// journals, with the client's retried POST deduplicating onto the
/// same campaign.
pub fn run_gateway_chaos<M, F>(
    dir: impl Into<PathBuf>,
    make_model: F,
    cells_json: &str,
    protocol: &str,
    plan: &TransportFaultPlan,
    flood_cells: &dyn Fn(usize) -> String,
) -> io::Result<GatewayChaosReport>
where
    M: CampaignModel,
    F: Fn() -> M,
{
    let dir = dir.into();
    let _ = std::fs::remove_dir_all(&dir);

    // Canonicalize the cells JSON exactly as the gateway will.
    let cells_value: Value =
        serde_json::from_str(cells_json).map_err(|e| io_err(format!("cells JSON: {e}")))?;
    let cells_canonical = serde_json::to_string(&cells_value).map_err(io_err)?;

    // Reference: the direct JobService path, no gateway, no faults.
    let ref_model = make_model();
    let tasks = ref_model.parse_cells(&cells_value).map_err(io_err)?;
    let ref_cfg = ServiceConfig::new(dir.join("reference"), protocol);
    let ref_journal = ref_cfg.journal_path();
    let mut reference = JobService::<M::Result>::open(ref_cfg, |r| M::key_of(r))?;
    reference.run(&tasks, |t| ref_model.exec(t))?;
    drop(reference);

    let mut ledger = GatewayLedger {
        total_cells: tasks.len(),
        reference_digest: artifact_digest(&ref_journal),
        ..GatewayLedger::default()
    };

    let submission = format!("{{\"tenant\":\"alice\",\"cells\":{cells_canonical}}}");
    let id = campaign_id("alice", protocol, &cells_canonical);
    let gw_root = dir.join("gw");
    let deadline = 8.0;
    let open_gw = |kill: Option<(usize, KillPoint)>| -> io::Result<Gateway<M>> {
        let mut cfg = GatewayConfig::new(&gw_root, protocol);
        cfg.limits = HttpLimits {
            deadline,
            ..HttpLimits::default()
        };
        cfg.policy = TenantPolicy {
            quantum: 2,
            max_pending_cells: tasks.len().max(4),
            aging_rounds: 4,
        };
        cfg.kill = kill;
        Gateway::open(cfg, make_model())
    };

    let mut gw = open_gw(None)?;
    ledger.incarnations = 1;
    drive(
        &mut gw,
        ScriptedConn::request(http_post("/campaigns", &submission)),
        &mut ledger,
    );

    let mut flood_counter = 0usize;
    for fault in &plan.faults {
        match *fault {
            TransportFault::MalformedRequest { variant } => {
                let bytes: Vec<u8> = match variant % 6 {
                    0 => b"GARBAGE BYTES WITHOUT STRUCTURE\r\n\r\n".to_vec(),
                    1 => b"GET /healthz\r\n\r\n".to_vec(),
                    2 => b"get / HTTP/1.1\r\n\r\n".to_vec(),
                    3 => b"GET / HTTP/9.9\r\n\r\n".to_vec(),
                    4 => format!("GET /{} HTTP/1.1\r\n\r\n", "u".repeat(4096)).into_bytes(),
                    _ => b"POST /campaigns HTTP/1.1\r\n\r\n".to_vec(),
                };
                drive(&mut gw, ScriptedConn::request(bytes), &mut ledger);
            }
            TransportFault::TruncatedBody { keep_frac } => {
                let full = http_post("/campaigns", &submission);
                let head_end = full
                    .windows(4)
                    .position(|w| w == b"\r\n\r\n")
                    .map(|p| p + 4)
                    .unwrap_or(full.len());
                let body_len = full.len() - head_end;
                let keep = head_end + ((body_len as f64) * keep_frac.clamp(0.0, 1.0)) as usize;
                drive(
                    &mut gw,
                    ScriptedConn::request(full[..keep.min(full.len())].to_vec()),
                    &mut ledger,
                );
            }
            TransportFault::SlowReader { chunk, delay } => {
                let conn = ScriptedConn::request(http_post("/campaigns", &submission))
                    .dribble(chunk, delay)
                    .with_deadline(deadline);
                drive(&mut gw, conn, &mut ledger);
            }
            TransportFault::MidResponseDisconnect { after } => {
                let conn = ScriptedConn::request(http_get(&format!("/campaigns/{id}")))
                    .disconnect_after(after);
                drive(&mut gw, conn, &mut ledger);
            }
            TransportFault::ConnectionFlood { conns } => {
                for _ in 0..conns {
                    let body = format!(
                        "{{\"tenant\":\"flood\",\"cells\":{}}}",
                        flood_cells(flood_counter)
                    );
                    flood_counter += 1;
                    let conn = drive(
                        &mut gw,
                        ScriptedConn::request(http_post("/campaigns", &body)),
                        &mut ledger,
                    );
                    // A shed flood submission must carry Retry-After.
                    if conn.response_status() == Some(429)
                        && conn.response_header("Retry-After").is_none()
                    {
                        // Surfaces as a deadline-class bookkeeping
                        // violation: a shed without back-pressure is a
                        // protocol bug.
                        ledger.panics += 1;
                    }
                }
            }
            TransportFault::GatewayKill { cells, point } => {
                // This incarnation dies; durable state survives.
                absorb(&mut ledger, &gw, &id);
                drop(gw);
                gw = open_gw(Some((cells.max(1), kill_point(point))))?;
                ledger.incarnations += 1;
                // The client's timed-out POST is retried: idempotent
                // dedup onto the recovered campaign.
                drive(
                    &mut gw,
                    ScriptedConn::request(http_post("/campaigns", &submission)),
                    &mut ledger,
                );
                loop {
                    let report = gw.pump(8);
                    if report.killed {
                        ledger.kills += 1;
                        break;
                    }
                    if report.granted == 0 {
                        break;
                    }
                }
                absorb(&mut ledger, &gw, &id);
                drop(gw);
                gw = open_gw(None)?;
                ledger.incarnations += 1;
                drive(
                    &mut gw,
                    ScriptedConn::request(http_post("/campaigns", &submission)),
                    &mut ledger,
                );
            }
        }
        // Interleave a little execution between faults so transport
        // damage lands on campaigns in every phase of progress.
        gw.pump(3);
    }

    // Graceful drain: stop admissions, finish everything in flight.
    drive(
        &mut gw,
        ScriptedConn::request(http_post("/drain", "{}")),
        &mut ledger,
    );
    drive(
        &mut gw,
        ScriptedConn::request(http_get("/readyz")),
        &mut ledger,
    );
    let mut guard = 0usize;
    while !gw.all_done() && guard < 100_000 {
        let report = gw.pump(16);
        guard += 1;
        if report.granted == 0 && !report.killed {
            break;
        }
    }
    drive(
        &mut gw,
        ScriptedConn::request(http_get(&format!("/campaigns/{id}"))),
        &mut ledger,
    );
    drive(
        &mut gw,
        ScriptedConn::request(http_get(&format!("/campaigns/{id}/results"))),
        &mut ledger,
    );

    if let Some(out) = gw.outcome_of(&id) {
        ledger.completed = out.completed;
        ledger.abandoned = out.abandoned;
    }
    absorb(&mut ledger, &gw, &id);
    ledger.artifact_digest = artifact_digest(gw.config().campaign_journal(&id));

    let violations = check_gateway_ledger(&ledger);
    Ok(GatewayChaosReport {
        ledger,
        violations,
        campaign: id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_cells, demo_flood_cells, DemoModel};
    use cpc_cluster::TransportFaultSpace;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cpc-gwchaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn sampled_transport_schedules_uphold_every_gateway_oracle() {
        let space = TransportFaultSpace::new(6);
        for index in 0..10 {
            let plan = space.sample(23, index);
            let dir = tmp_dir(&format!("plan-{index}"));
            let report = run_gateway_chaos(
                &dir,
                || DemoModel,
                &demo_cells(6),
                "demo",
                &plan,
                &demo_flood_cells,
            )
            .unwrap();
            assert!(
                report.passed(),
                "schedule {index} ({:?}) violated: {:?}\nledger: {:?}",
                plan.faults,
                report.violations,
                report.ledger
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// The fd-leak and deadline oracles extended to concurrent
    /// connections: several accept workers drive submissions, status
    /// polls and armed slowloris readers through one shared gateway
    /// via [`Gateway::handle_shared`]. Every connection must still be
    /// closed (opened == closed), no read may land past its deadline
    /// on any worker, concurrent identical submissions must
    /// deduplicate onto one campaign, and the drained artifact must
    /// match the direct single-connection reference byte for byte.
    #[test]
    fn concurrent_connections_leak_no_fds_and_hold_deadlines() {
        let dir = tmp_dir("concurrent");
        let protocol = "demo";
        let cells_value: Value = serde_json::from_str(&demo_cells(6)).unwrap();
        let cells_canonical = serde_json::to_string(&cells_value).unwrap();
        let submission = format!("{{\"tenant\":\"alice\",\"cells\":{cells_canonical}}}");
        let id = campaign_id("alice", protocol, &cells_canonical);
        let deadline = 8.0;

        let mut cfg = GatewayConfig::new(dir.join("gw"), protocol);
        cfg.limits = HttpLimits {
            deadline,
            ..HttpLimits::default()
        };
        let gw = std::sync::Mutex::new(Gateway::open(cfg, DemoModel).unwrap());

        const WORKERS: usize = 4;
        const CONNS_PER_WORKER: usize = 3;
        let overruns: usize = cpc_pool::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|_| {
                    let gw = &gw;
                    let submission = submission.clone();
                    let id = id.clone();
                    s.spawn(move || {
                        let mut overruns = 0;
                        // Same submission from every worker: the race
                        // must deduplicate, never double-admit.
                        let mut conn =
                            ScriptedConn::request(http_post("/campaigns", &submission));
                        Gateway::handle_shared(gw, &mut conn);
                        assert!(
                            matches!(conn.response_status(), Some(200..=299)),
                            "submission must be admitted or deduplicated, got {:?}",
                            conn.response_status()
                        );
                        // A slowloris reader with the overrun counter
                        // armed: the handler must give up at the
                        // deadline without one read past it.
                        let mut slow = ScriptedConn::request(http_post("/campaigns", &submission))
                            .dribble(2, 1.0)
                            .with_deadline(deadline);
                        Gateway::handle_shared(gw, &mut slow);
                        overruns += slow.overruns();
                        let mut poll =
                            ScriptedConn::request(http_get(&format!("/campaigns/{id}")));
                        Gateway::handle_shared(gw, &mut poll);
                        overruns
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(overruns, 0, "no read may be issued past its deadline");

        while !gw.lock().unwrap().all_done() {
            let report = gw.lock().unwrap().pump(8);
            if report.granted == 0 && !report.killed {
                break;
            }
        }
        let g = gw.lock().unwrap();
        let stats = g.stats();
        assert_eq!(
            stats.conns_opened,
            WORKERS * CONNS_PER_WORKER,
            "every connection is accounted"
        );
        assert_eq!(
            stats.conns_opened, stats.conns_closed,
            "fd leak: a concurrent connection was never closed"
        );
        let out = g.outcome_of(&id).expect("the deduplicated campaign exists");
        assert_eq!(out.completed, 6, "the shared campaign drains fully");
        assert_eq!(out.executed, 6, "racing submissions must not double-execute");

        // Byte-identity against the direct single-connection path.
        let ref_cfg = ServiceConfig::new(dir.join("reference"), protocol);
        let ref_journal = ref_cfg.journal_path();
        let mut reference =
            JobService::<<DemoModel as CampaignModel>::Result>::open(ref_cfg, |r| {
                <DemoModel as CampaignModel>::key_of(r)
            })
            .unwrap();
        let tasks = DemoModel.parse_cells(&cells_value).unwrap();
        reference.run(&tasks, |t| DemoModel.exec(t)).unwrap();
        drop(reference);
        assert_eq!(
            artifact_digest(g.config().campaign_journal(&id)),
            artifact_digest(&ref_journal),
            "concurrent admission must not move a byte of the artifact"
        );
        drop(g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_kill_heavy_plan_survives_and_counts_its_incarnations() {
        let dir = tmp_dir("kills");
        let plan = TransportFaultPlan {
            faults: vec![
                TransportFault::GatewayKill { cells: 1, point: 1 },
                TransportFault::GatewayKill { cells: 2, point: 0 },
                TransportFault::GatewayKill { cells: 1, point: 2 },
            ],
        };
        let report = run_gateway_chaos(
            &dir,
            || DemoModel,
            &demo_cells(6),
            "demo",
            &plan,
            &demo_flood_cells,
        )
        .unwrap();
        assert!(report.passed(), "{:?}", report.violations);
        assert!(
            report.ledger.incarnations >= 4,
            "each kill adds incarnations"
        );
        assert_eq!(report.ledger.completed, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
