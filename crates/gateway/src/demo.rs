//! A cheap deterministic campaign model for tests, CI gates and the
//! transport-chaos harness: cells are integer ids, and executing cell
//! `id` yields `[id, id²]` at 0.25 virtual seconds — the same
//! synthetic campaign the service-level chaos tests use, so gateway
//! behaviour is comparable across layers.

use crate::gateway::CampaignModel;
use serde_json::Value;

/// The demo model. Stateless; every incarnation behaves identically,
/// which is what makes kill-resume byte-identity checkable.
#[derive(Debug, Default, Clone, Copy)]
pub struct DemoModel;

impl CampaignModel for DemoModel {
    type Task = u64;
    type Result = Vec<f64>;

    fn parse_cells(&self, cells: &Value) -> Result<Vec<u64>, String> {
        let arr = cells
            .as_array()
            .ok_or_else(|| "cells must be a JSON array".to_string())?;
        arr.iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| "cells must be non-negative integers".to_string())
            })
            .collect()
    }

    fn key_of(r: &Vec<f64>) -> String {
        serde_json::to_string(&(r.first().copied().unwrap_or(0.0) as u64)).unwrap_or_default()
    }

    fn exec(&self, task: &u64) -> (Vec<f64>, f64) {
        (vec![*task as f64, (*task * *task) as f64], 0.25)
    }
}

/// The canonical demo cells JSON: `[0,1,...,n-1]`.
pub fn demo_cells(n: u64) -> String {
    let ids: Vec<String> = (0..n).map(|i| i.to_string()).collect();
    format!("[{}]", ids.join(","))
}

/// The i-th distinct single-cell flood campaign, far from the
/// canonical id range.
pub fn demo_flood_cells(i: usize) -> String {
    format!("[{}]", 900_000 + i)
}
