//! Dependency-free HTTP/1.1 request reading and response writing over
//! an abstract [`Conn`], with every limit a hostile client could push
//! against made explicit in [`HttpLimits`].
//!
//! The parser is deliberately strict and bounded: a byte-dribbling
//! slowloris client runs into the request deadline (408), an
//! over-long request line into 414, a header bomb into 431, an
//! oversized or length-less body into 413/411, and plain garbage into
//! 400 — each as a *typed* [`HttpError`] so the gateway can account
//! every rejection. One request per connection (`Connection: close`):
//! the service is a campaign front door, not a byte pump, and the
//! simplest connection lifecycle is the one that cannot leak.

use std::io;
use std::time::Instant;

/// An abstract byte stream with a notion of elapsed time since the
/// connection was accepted. Real sockets implement it with wall-clock
/// time and OS read timeouts ([`TcpConn`]); the chaos harness's
/// scripted connections implement it with a virtual clock so slow
/// readers and deadline enforcement are tested deterministically.
pub trait Conn {
    /// Reads up to `buf.len()` bytes; `Ok(0)` is end-of-stream.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Writes the whole buffer or fails.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Seconds elapsed since the connection was accepted.
    fn elapsed(&self) -> f64;
}

/// Request-level resource limits. Every field is a surface a hostile
/// client can probe; every breach maps to a distinct status code.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Longest accepted request line (method + URI + version) — 414.
    pub max_request_line: usize,
    /// Total header bytes (request line included) — 431.
    pub max_header_bytes: usize,
    /// Largest accepted body — 413.
    pub max_body_bytes: usize,
    /// Seconds a request may take to arrive in full — 408. Defeats
    /// slowloris: the deadline is checked before every read.
    pub deadline: f64,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line: 1024,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
            deadline: 10.0,
        }
    }
}

/// Typed request-read failure; [`HttpError::status`] maps each to the
/// response the gateway sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically broken request (bad request line, bad header,
    /// truncated body, non-UTF-8 head) — 400.
    Malformed(&'static str),
    /// The request did not arrive within [`HttpLimits::deadline`] — 408.
    Timeout,
    /// Body-bearing method without `Content-Length` — 411.
    LengthRequired,
    /// Declared body exceeds [`HttpLimits::max_body_bytes`] — 413.
    BodyTooLarge,
    /// Request line exceeds [`HttpLimits::max_request_line`] — 414.
    UriTooLong,
    /// Headers exceed [`HttpLimits::max_header_bytes`] — 431.
    HeadersTooLarge,
    /// Not an HTTP/1.x request — 505.
    Version,
    /// The peer vanished mid-request; usually no response can be
    /// delivered, but the write is attempted and its failure swallowed.
    Disconnect,
}

impl HttpError {
    /// The status line this error answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Malformed(_) => (400, "Bad Request"),
            HttpError::Timeout => (408, "Request Timeout"),
            HttpError::LengthRequired => (411, "Length Required"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::UriTooLong => (414, "URI Too Long"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::Version => (505, "HTTP Version Not Supported"),
            HttpError::Disconnect => (400, "Bad Request"),
        }
    }
}

/// A parsed request: method, path, raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case token from the request line.
    pub method: String,
    /// Origin-form path (starts with `/`).
    pub path: String,
    /// Exactly `Content-Length` bytes (empty when none declared).
    pub body: Vec<u8>,
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn read_chunk(conn: &mut dyn Conn, buf: &mut [u8]) -> Result<usize, HttpError> {
    match conn.read(buf) {
        Ok(n) => Ok(n),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) =>
        {
            Err(HttpError::Timeout)
        }
        Err(_) => Err(HttpError::Disconnect),
    }
}

/// Reads and validates one request under `limits`. The deadline is
/// checked *before* every read, so a byte-dribbling client gets at
/// most one read past it and the handler never hangs.
pub fn read_request(conn: &mut dyn Conn, limits: &HttpLimits) -> Result<Request, HttpError> {
    let mut head: Vec<u8> = Vec::new();
    let mut buf = [0u8; 512];
    let header_end = loop {
        if let Some(pos) = find(&head, b"\r\n\r\n") {
            break pos;
        }
        if !head.contains(&b'\n') && head.len() > limits.max_request_line {
            return Err(HttpError::UriTooLong);
        }
        if head.len() > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        if conn.elapsed() > limits.deadline {
            return Err(HttpError::Timeout);
        }
        let n = read_chunk(conn, &mut buf)?;
        if n == 0 {
            return Err(if head.is_empty() {
                HttpError::Disconnect
            } else {
                HttpError::Malformed("truncated header")
            });
        }
        head.extend_from_slice(&buf[..n]);
    };

    let text = std::str::from_utf8(&head[..header_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 header"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::UriTooLong);
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().ok_or(HttpError::Malformed("missing path"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra request-line tokens"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("bad path"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(if version.starts_with("HTTP/") {
            HttpError::Version
        } else {
            HttpError::Malformed("bad version")
        });
    }

    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("bad header line"))?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if content_length.replace(n).is_some() {
                return Err(HttpError::Malformed("duplicate content-length"));
            }
        }
    }

    let need = match content_length {
        Some(n) => n,
        None if method == "POST" || method == "PUT" => return Err(HttpError::LengthRequired),
        None => 0,
    };
    if need > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = head[header_end + 4..].to_vec();
    while body.len() < need {
        if conn.elapsed() > limits.deadline {
            return Err(HttpError::Timeout);
        }
        let n = read_chunk(conn, &mut buf)?;
        if n == 0 {
            return Err(HttpError::Malformed("truncated body"));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(need);

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// An outgoing response. Always `Connection: close` with an exact
/// `Content-Length`.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Extra headers beyond the standard three.
    pub headers: Vec<(String, String)>,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response with the standard headers.
    pub fn json(status: u16, reason: &'static str, body: impl Into<String>) -> Self {
        Response {
            status,
            reason,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds one header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Serializes and writes `resp`. A mid-response disconnect surfaces
/// as the `io::Error`; callers that cannot do anything about a dead
/// peer swallow it.
pub fn write_response(conn: &mut dyn Conn, resp: &Response) -> io::Result<()> {
    let mut out = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
    out.push_str("Content-Type: application/json\r\n");
    out.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    out.push_str("Connection: close\r\n");
    for (name, value) in &resp.headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str("\r\n");
    out.push_str(&resp.body);
    conn.write_all(out.as_bytes())
}

/// A real socket behind the [`Conn`] trait: wall-clock elapsed time,
/// with the OS read timeout re-armed before every read so a stalled
/// peer cannot hold the handler past the request deadline.
pub struct TcpConn {
    stream: std::net::TcpStream,
    started: Instant,
    deadline: f64,
}

impl TcpConn {
    /// Wraps an accepted stream; `deadline` should match
    /// [`HttpLimits::deadline`].
    pub fn new(stream: std::net::TcpStream, deadline: f64) -> Self {
        TcpConn {
            stream,
            started: Instant::now(),
            deadline,
        }
    }
}

impl Conn for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::Read;
        let remaining = (self.deadline - self.elapsed()).max(0.05);
        let _ = self
            .stream
            .set_read_timeout(Some(std::time::Duration::from_secs_f64(remaining)));
        self.stream.read(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let _ = self
            .stream
            .set_write_timeout(Some(std::time::Duration::from_secs_f64(
                self.deadline.max(1.0),
            )));
        self.stream.write_all(buf)
    }

    fn elapsed(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ScriptedConn;

    fn limits() -> HttpLimits {
        HttpLimits {
            max_request_line: 128,
            max_header_bytes: 512,
            max_body_bytes: 1024,
            deadline: 5.0,
        }
    }

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut conn = ScriptedConn::request(bytes.to_vec());
        read_request(&mut conn, &limits())
    }

    #[test]
    fn well_formed_post_parses_method_path_and_exact_body() {
        let req = parse(b"POST /campaigns HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.body, b"hello");
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!((req.method.as_str(), req.body.len()), ("GET", 0));
    }

    #[test]
    fn each_limit_breach_maps_to_its_own_typed_error() {
        // Garbage request line.
        assert!(matches!(
            parse(b"NOT A REQUEST AT ALL\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Lower-case method.
        assert!(matches!(
            parse(b"get / HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Unsupported HTTP version.
        assert_eq!(parse(b"GET / HTTP/9.9\r\n\r\n"), Err(HttpError::Version));
        // Over-long URI.
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(300));
        assert_eq!(parse(long.as_bytes()), Err(HttpError::UriTooLong));
        // Header bomb.
        let bomb = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-Pad: aaaaaaaaaaaaaaaa\r\n".repeat(64)
        );
        assert_eq!(parse(bomb.as_bytes()), Err(HttpError::HeadersTooLarge));
        // POST without a length.
        assert_eq!(
            parse(b"POST /campaigns HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        );
        // Declared body over the cap.
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(HttpError::BodyTooLarge)
        );
        // Non-numeric and duplicate content-length.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx"),
            Err(HttpError::Malformed(_))
        ));
        // Truncated body: peer promised 10 bytes, sent 3.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Malformed(_))
        ));
        // Empty connection.
        assert_eq!(parse(b""), Err(HttpError::Disconnect));
    }

    #[test]
    fn slow_reader_hits_the_deadline_without_hanging_or_overrunning() {
        let body = b"POST /campaigns HTTP/1.1\r\nContent-Length: 400\r\n\r\n".to_vec();
        // 1 byte per read, 2 virtual seconds per read: the 5 s
        // deadline fires long before the request completes.
        let mut conn = ScriptedConn::request(body)
            .dribble(1, 2.0)
            .with_deadline(5.0);
        let got = read_request(&mut conn, &limits());
        assert_eq!(got, Err(HttpError::Timeout));
        assert_eq!(conn.overruns(), 0, "no read issued past the deadline");
    }

    #[test]
    fn responses_carry_exact_length_close_and_extra_headers() {
        let mut conn = ScriptedConn::request(Vec::new());
        let resp = Response::json(429, "Too Many Requests", "{\"error\":\"shed\"}")
            .with_header("Retry-After", "7");
        write_response(&mut conn, &resp).unwrap();
        let text = String::from_utf8(conn.written().to_vec()).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"shed\"}"));
    }
}
