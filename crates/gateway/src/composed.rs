//! The cross-layer chaos conductor: one serve-backed campaign driven
//! with **all five fault layers armed at once**.
//!
//! The single-layer harnesses each attack one seam in isolation —
//! [`run_gateway_chaos`](crate::run_gateway_chaos) the transport,
//! `run_service_chaos` the orchestrator, `run_disk_chaos` the disk,
//! `run_sched_chaos` the executor, and the MD harness the simulated
//! cluster. Real outages do not take turns. [`run_composed_chaos`]
//! runs one campaign on a simulated disk carrying a
//! [`DiskFaultPlan`](cpc_vfs::DiskFaultPlan), through a gateway whose
//! pool carries a `SchedFaultPlan`, attacked over the wire by a
//! `TransportFaultPlan` while an orchestrator-level
//! `ServiceFaultPlan` kills and tears it — and absorbs every layer's
//! accounting into one [`CrossLedger`] checked by
//! [`check_cross_ledger`]: the union of the single-layer oracles plus
//! the interaction oracles (acked-then-lost across disk fault ×
//! kill, the global execution bound, end-to-end byte identity) that
//! only a composed schedule can exercise.
//!
//! ## Accounting discipline
//!
//! * **Ground truth executions** come from a counting model wrapper:
//!   every `exec` across every incarnation, revival and flood
//!   campaign increments one shared counter
//!   ([`CrossLedger::executed_true`]). The composed license
//!   ([`CrossLedger::exec_allowance`]) grants `total_cells`, the
//!   flood campaigns' cells, one stranded batch (pool width) per
//!   abnormal boundary (incarnation, crash restart, I/O retry,
//!   ENOSPC lift, stall revival), and one re-execution per destroyed
//!   or dropped durable line, reclaimed lease, presented stale lease
//!   and injected panic.
//! * **Acked-then-lost** replays the committed result *keys* (the
//!   service records a key only after its journal append fsynced)
//!   across every reopen; a torn results journal legitimately
//!   destroys fsynced lines, so the replay set is rebuilt from the
//!   next recovery after that licensed damage.
//! * **Per-layer books** are filled from absorbed outcome snapshots
//!   (an incarnation's counters are read once, just before its
//!   gateway is dropped), so the single-layer oracles keep holding
//!   verbatim under composition; where a cross-layer fault creates a
//!   re-execution the single-layer book cannot see coming (a torn
//!   journal behind the gateway, a crash-stranded batch), the
//!   conductor adds the corresponding license term to that book.

use std::collections::HashSet;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cpc_charmm::{check_cross_ledger, CrossLedger, CrossViolation, ScheduleReport};
use cpc_cluster::{ComposedPlan, FaultPlan, ServiceFault, TransportFault, Layer, LAYERS};
use cpc_pool::{quiet_injected_panics, SchedChaos};
use cpc_vfs::{Fs, SharedFs, SimFs};
use cpc_workload::service::{artifact_digest_on, JobService, KillPoint, ServiceConfig};
use serde_json::Value;

use crate::chaos::{drive, http_get, http_post, kill_point, ScriptedConn};
use crate::gateway::{campaign_id, CampaignModel, Gateway, GatewayConfig, PumpReport};
use crate::http::HttpLimits;
use crate::tenancy::TenantPolicy;

/// Queue journal shards per campaign (the gateway default; the final
/// direct-service verification must reopen with the same layout).
const SHARDS: usize = 4;
/// Connection deadline, virtual seconds.
const DEADLINE: f64 = 8.0;
/// Retry budget for reopening the gateway / the final verification
/// service across disk faults.
const REOPEN_TRIES: usize = 12;
/// Total reopen fuel across the whole run (a backstop against a
/// pathological crash loop; sampled plans carry at most a handful of
/// power cuts).
const REOPEN_FUEL: usize = 64;

/// Everything one composed schedule produced: the unified cross-layer
/// ledger and the oracle verdicts over it.
#[derive(Debug, Clone)]
pub struct ComposedChaosReport {
    /// The unified ledger absorbed from every layer.
    pub ledger: CrossLedger,
    /// Oracle verdicts ([`check_cross_ledger`] over the ledger).
    pub violations: Vec<CrossViolation>,
    /// The campaign id the schedule attacked.
    pub campaign: String,
}

impl ComposedChaosReport {
    /// Whether every composed oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Model wrapper counting ground-truth executions. Injected pool
/// panics fire *before* the task closure runs, so a panicked attempt
/// never increments the counter — only its post-reclaim re-execution
/// does (which the allowance's `panics_injected` term licenses).
struct Counted<M: CampaignModel> {
    inner: M,
    executed: Arc<AtomicUsize>,
}

impl<M: CampaignModel> CampaignModel for Counted<M> {
    type Task = M::Task;
    type Result = M::Result;

    fn parse_cells(&self, cells: &Value) -> Result<Vec<Self::Task>, String> {
        self.inner.parse_cells(cells)
    }

    fn key_of(r: &Self::Result) -> String {
        M::key_of(r)
    }

    fn exec(&self, task: &Self::Task) -> (Self::Result, f64) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.inner.exec(task)
    }

    fn result_json(r: &Self::Result) -> Value {
        M::result_json(r)
    }
}

/// Truncates `path` on `fs` to `keep_frac` of its bytes (the same
/// torn-write model as the single-layer service harness, lifted onto
/// the injectable filesystem). Returns the number of complete lines
/// destroyed; when the rewrite itself fails under an active disk
/// fault the whole file is assumed destroyed (over-licensing a
/// re-execution weakens the bound, under-licensing would falsify it).
fn tear_file_on(fs: &dyn Fs, path: &Path, keep_frac: f64) -> usize {
    let Ok(bytes) = fs.read(path) else { return 0 };
    let lines_before = bytes.iter().filter(|&&b| b == b'\n').count();
    let keep = ((bytes.len() as f64) * keep_frac.clamp(0.0, 1.0)) as usize;
    let kept = bytes[..keep.min(bytes.len())].to_vec();
    let lines_after = kept.iter().filter(|&&b| b == b'\n').count();
    match fs.create(path) {
        Ok(mut f) => {
            if f.write_all(&kept).and_then(|()| f.sync()).is_ok() {
                lines_before - lines_after
            } else {
                lines_before
            }
        }
        Err(_) => 0,
    }
}

/// Rewrites `path` on `fs` with `bytes`, best-effort (at-rest damage
/// injection; a failure under an active disk fault just means the
/// damage did not land).
fn rewrite_on(fs: &dyn Fs, path: &Path, bytes: &[u8]) {
    if let Ok(mut f) = fs.create(path) {
        let _ = f.write_all(bytes);
        let _ = f.sync();
    }
}

struct Conductor<M: CampaignModel, F: Fn() -> M> {
    make_model: F,
    sim: Arc<SimFs>,
    chaos: Arc<SchedChaos>,
    executed: Arc<AtomicUsize>,
    protocol: String,
    submission: String,
    id: String,
    dir: PathBuf,
    journal: PathBuf,
    total: usize,
    threads: usize,
    max_width: usize,
    base_stale: Option<usize>,
    pending_stale: Option<usize>,
    thread_change: Option<(usize, usize)>,
    thread_changed: bool,
    flood_serial: usize,
    revivals: usize,
    extra_cells: usize,
    fuel: usize,
    ledger: CrossLedger,
    acked: HashSet<String>,
    gw: Option<Gateway<Counted<M>>>,
}

impl<M: CampaignModel, F: Fn() -> M> Conductor<M, F> {
    fn cfg(&self, kill: Option<(usize, KillPoint)>, stale: Option<usize>) -> GatewayConfig {
        let mut cfg = GatewayConfig::new("/gw", self.protocol.as_str());
        cfg.limits = HttpLimits {
            deadline: DEADLINE,
            ..HttpLimits::default()
        };
        cfg.policy = TenantPolicy {
            quantum: 2,
            max_pending_cells: self.total.max(4),
            aging_rounds: 4,
        };
        cfg.shards = SHARDS;
        cfg.threads = self.threads;
        cfg.kill = kill;
        cfg.stale_lease_at = stale;
        cfg
    }

    fn queue_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("queue-{:02}.jsonl", shard % SHARDS))
    }

    /// Applies the disk-fault posture after a failed filesystem
    /// operation, mirroring the single-layer disk supervisor: a crash
    /// is handled at the reopen loop head, an active persistent
    /// ENOSPC is lifted once, anything else is a transient retried
    /// past.
    fn absorb_disk_err(&mut self) {
        if self.sim.crashed() {
            // restart happens at the reopen loop head
        } else if self.sim.enospc_active() {
            self.sim.lift_enospc();
            self.ledger.disk.enospc_lifts += 1;
        } else {
            self.ledger.disk.io_retries += 1;
        }
    }

    /// Opens a fresh gateway incarnation (restarting the disk first if
    /// it is power-cut), replays the acked-key oracle against the
    /// recovered results, and re-submits the campaign.
    fn reopen(&mut self, kill: Option<(usize, KillPoint)>) {
        let stale = self.pending_stale.take().or(self.base_stale);
        for _ in 0..REOPEN_TRIES {
            if self.fuel == 0 {
                return;
            }
            self.fuel -= 1;
            if self.sim.crashed() {
                self.sim.restart();
                self.ledger.disk.restarts += 1;
            }
            let model = Counted {
                inner: (self.make_model)(),
                executed: self.executed.clone(),
            };
            match Gateway::open_on(self.sim.clone() as SharedFs, self.cfg(kill, stale), model) {
                Ok(mut gw) => {
                    gw.arm_sched_chaos(self.chaos.clone());
                    self.ledger.gateway.incarnations += 1;
                    if let Some(keys) = gw.result_keys(&self.id) {
                        let keys: HashSet<String> = keys.into_iter().collect();
                        for k in &self.acked {
                            if !keys.contains(k) {
                                self.ledger.disk.acked_then_lost += 1;
                            }
                        }
                        self.acked.extend(keys);
                    }
                    self.gw = Some(gw);
                    self.submit();
                    return;
                }
                Err(_) => self.absorb_disk_err(),
            }
        }
    }

    /// POSTs the campaign (idempotent: the gateway deduplicates on the
    /// canonical id). A non-2xx under an active disk fault applies the
    /// disk posture and retries; a crash mid-submit cycles the whole
    /// incarnation.
    fn submit(&mut self) {
        for _ in 0..8 {
            if self.gw.is_none() {
                return;
            }
            let conn = self.drive_conn(ScriptedConn::request(http_post(
                "/campaigns",
                &self.submission,
            )));
            match conn.response_status() {
                Some(200 | 201) => return,
                _ => {
                    if self.sim.crashed() {
                        self.cycle(None);
                        return;
                    }
                    self.absorb_disk_err();
                }
            }
        }
    }

    fn drive_conn(&mut self, conn: ScriptedConn) -> ScriptedConn {
        match self.gw.as_mut() {
            Some(gw) => drive(gw, conn, &mut self.ledger.gateway),
            None => conn,
        }
    }

    /// Reads one incarnation's counters into the per-layer books.
    /// Called exactly once per gateway instance, just before it is
    /// dropped (and once for each pool an incarnation retires through
    /// a mid-run thread-count swap).
    fn absorb(&mut self) {
        let Some(gw) = self.gw.as_ref() else { return };
        if let Some(out) = gw.outcome_of(&self.id) {
            let s = &mut self.ledger.service;
            s.incarnations += 1;
            s.executed += out.executed;
            s.lost_executions += out.lost_executions;
            s.journal_preseeded += out.journal_preseeded;
            s.cache_hits += out.cache_hits;
            s.cache_corruption_caught += out.cache_stats.corrupt;
            s.reclaimed_leases += out.reclaimed;
            s.dropped_lines += out.dropped_lines;
            s.duplicate_results += out.duplicates_dropped;
            s.stale_presented += out.stale_presented;
            s.stale_rejected += out.stale_rejected;
            s.kills += out.killed as usize;
            self.ledger.gateway.executed += out.executed;
            self.ledger.gateway.lost_executions += out.lost_executions;
            // A lease stranded by a contained panic is normally
            // reclaimed through in-batch expiry, but a composed
            // storage fault can abort the batch first; the reclaim
            // then lands at the next recovery boundary (queue open).
            // Both paths contain the panic.
            self.ledger.sched.panic_reclaimed += out.panic_reclaimed + out.reclaimed;
        }
        let st = gw.stats();
        let g = &mut self.ledger.gateway;
        g.conns_opened += st.conns_opened;
        g.conns_closed += st.conns_closed;
        g.requests += st.requests;
        g.rejected += st.rejected;
        g.shed += st.shed;
        // Every storage-fault stall strands up to a pool width of
        // in-flight executions whose commits never became durable;
        // the revived service re-runs them, so the per-layer books
        // must license the re-executions. Revives are incarnation
        // boundaries for the cross allowance, same as reopens.
        self.revivals += st.revives;
        let stranded = st.stalls * self.max_width.max(self.threads);
        self.ledger.service.lost_executions += stranded;
        self.ledger.gateway.lost_executions += stranded;
        let ps = gw.pool().stats();
        self.ledger.sched.pool_tasks += ps.tasks as usize;
        self.ledger.sched.steals += ps.steals as usize;
        self.ledger.sched.panics_caught += ps.panics_caught as usize;
    }

    /// Absorb → drop → reopen. When the teardown is abnormal (the
    /// disk is power-cut under the live gateway) the final in-memory
    /// counters may include executions whose commits never became
    /// durable; the books get one stranded batch licensed, matching
    /// the width term the global allowance charges per boundary.
    fn cycle(&mut self, kill: Option<(usize, KillPoint)>) {
        let abnormal = self.sim.crashed();
        self.absorb();
        if abnormal {
            self.ledger.service.lost_executions += self.threads;
            self.ledger.gateway.lost_executions += self.threads;
        }
        self.gw = None;
        self.reopen(kill);
    }

    /// One pump with stall-revival tracking, panic containment and
    /// acked-key snapshotting.
    fn pump_tracked(&mut self, budget: usize) -> PumpReport {
        let report = {
            let Some(gw) = self.gw.as_mut() else {
                return PumpReport::default();
            };
            // Stall and revive accounting rides the cumulative
            // gateway stats, absorbed once per incarnation.
            match catch_unwind(AssertUnwindSafe(|| gw.pump(budget))) {
                Ok(r) => Some(r),
                Err(_) => None,
            }
        };
        match report {
            Some(r) => {
                self.snapshot_acked();
                r
            }
            None => {
                // A pump panic is a genuine violation (the disk book
                // convicts on it); the incarnation is untrustworthy.
                self.ledger.disk.panics += 1;
                self.absorb();
                self.gw = None;
                self.reopen(None);
                PumpReport::default()
            }
        }
    }

    fn snapshot_acked(&mut self) {
        let Some(gw) = self.gw.as_ref() else { return };
        if let Some(keys) = gw.result_keys(&self.id) {
            self.acked.extend(keys);
        }
    }

    fn completed(&self) -> usize {
        self.gw
            .as_ref()
            .and_then(|g| g.outcome_of(&self.id))
            .map_or(0, |o| o.completed)
    }

    /// The standing supervision duties between fault injections: land
    /// the scheduled thread-count change, restart a power-cut disk,
    /// lift a persistent ENOSPC once the gateway has visibly quiesced
    /// on it.
    fn supervise(&mut self) {
        if let Some((after, to)) = self.thread_change {
            if !self.thread_changed && self.completed() >= after {
                self.thread_changed = true;
                self.threads = to.max(1);
                self.max_width = self.max_width.max(self.threads);
                if let Some(gw) = self.gw.as_mut() {
                    let ps = gw.pool().stats();
                    self.ledger.sched.pool_tasks += ps.tasks as usize;
                    self.ledger.sched.steals += ps.steals as usize;
                    self.ledger.sched.panics_caught += ps.panics_caught as usize;
                    gw.swap_pool(self.threads, Some(self.chaos.clone()));
                }
            }
        }
        if self.sim.crashed() {
            self.cycle(None);
        } else if self.sim.enospc_active()
            && self
                .gw
                .as_ref()
                .is_none_or(|g| g.stalled_count() > 0 || g.outcome_of(&self.id).is_none())
        {
            self.sim.lift_enospc();
            self.ledger.disk.enospc_lifts += 1;
        }
    }

    fn pump_once(&mut self, budget: usize) {
        self.supervise();
        let r = self.pump_tracked(budget);
        if r.killed {
            self.ledger.gateway.kills += 1;
            self.cycle(None);
        }
        self.supervise();
    }

    /// Arms a kill for the next incarnation, pumps until it fires (or
    /// the campaign drains under it), then reopens clean.
    fn kill_incarnation(&mut self, cells: usize, point: KillPoint) {
        self.cycle(Some((cells.max(1), point)));
        for _ in 0..64 {
            self.supervise();
            if self.gw.as_ref().is_none_or(|g| g.all_done()) {
                break;
            }
            let r = self.pump_tracked(8);
            if r.killed {
                self.ledger.gateway.kills += 1;
                break;
            }
        }
        self.cycle(None);
    }

    fn apply_service_fault(&mut self, fault: ServiceFault) {
        match fault {
            ServiceFault::WorkerKill { cells } => {
                self.kill_incarnation(cells, KillPoint::BeforeResult);
            }
            ServiceFault::OrchestratorKillMidCommit { cells } => {
                self.kill_incarnation(cells, KillPoint::MidCommit);
            }
            ServiceFault::OrchestratorKillAfterCommit { cells } => {
                self.kill_incarnation(cells, KillPoint::AfterCommit);
            }
            ServiceFault::StaleLease { at_lease } => {
                // Landed at the next incarnation boundary (the drain
                // forces one if no kill arrives first).
                self.pending_stale = Some(at_lease);
            }
            ServiceFault::TornQueueWrite { shard, keep_frac } => {
                // At-rest damage semantics: tear between incarnations,
                // never under a live in-memory service.
                self.absorb();
                self.gw = None;
                let path = self.queue_path(shard);
                tear_file_on(self.sim.as_ref(), &path, keep_frac);
                self.reopen(None);
            }
            ServiceFault::TornResultWrite { keep_frac } => {
                self.absorb();
                self.gw = None;
                let path = self.journal.clone();
                let destroyed = tear_file_on(self.sim.as_ref(), &path, keep_frac);
                self.ledger.service.destroyed_results += destroyed;
                // The tear legitimately destroys fsynced lines; the
                // acked-replay set is rebuilt from the next recovery.
                self.acked.clear();
                self.reopen(None);
            }
            ServiceFault::CacheBitFlip { entry, byte, bit } => {
                // Campaign services behind the gateway keep their
                // cache under the campaign dir, but the at-rest
                // damage oracle is the same for any checksummed
                // durable line — land the flip on a queue shard,
                // whose recovery must drop (never trust) the line.
                self.absorb();
                self.gw = None;
                let path = self.queue_path(entry);
                if let Ok(mut bytes) = self.sim.read(&path) {
                    if !bytes.is_empty() {
                        let at = byte % bytes.len();
                        bytes[at] ^= 1 << (bit % 8);
                        rewrite_on(self.sim.as_ref(), &path, &bytes);
                    }
                }
                self.reopen(None);
            }
        }
    }

    fn apply_transport_fault(&mut self, fault: &TransportFault, flood_cells: &dyn Fn(usize) -> String) {
        match *fault {
            TransportFault::MalformedRequest { variant } => {
                let bytes: Vec<u8> = match variant % 6 {
                    0 => b"\x00\x01\x02garbage\xff\xfe".to_vec(),
                    1 => b"GET /healthz\r\n\r\n".to_vec(),
                    2 => b"get /healthz HTTP/1.1\r\n\r\n".to_vec(),
                    3 => b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(),
                    4 => {
                        let long = "x".repeat(4096);
                        format!("GET /{long} HTTP/1.1\r\n\r\n").into_bytes()
                    }
                    _ => b"POST /campaigns HTTP/1.1\r\n\r\n".to_vec(),
                };
                self.drive_conn(ScriptedConn::request(bytes));
            }
            TransportFault::TruncatedBody { keep_frac } => {
                let full = http_post("/campaigns", &self.submission);
                let head_end = full
                    .windows(4)
                    .position(|w| w == b"\r\n\r\n")
                    .map_or(full.len(), |p| p + 4);
                let body_len = full.len() - head_end;
                let keep = head_end + ((body_len as f64) * keep_frac.clamp(0.0, 1.0)) as usize;
                self.drive_conn(ScriptedConn::request(full[..keep.min(full.len())].to_vec()));
            }
            TransportFault::SlowReader { chunk, delay } => {
                let conn = ScriptedConn::request(http_post("/campaigns", &self.submission))
                    .dribble(chunk.max(1), delay)
                    .with_deadline(DEADLINE);
                self.drive_conn(conn);
            }
            TransportFault::MidResponseDisconnect { after } => {
                let conn = ScriptedConn::request(http_get(&format!("/campaigns/{}", self.id)))
                    .disconnect_after(after);
                self.drive_conn(conn);
            }
            TransportFault::ConnectionFlood { conns } => {
                for _ in 0..conns {
                    let cells = flood_cells(self.flood_serial);
                    self.flood_serial += 1;
                    let body = format!("{{\"tenant\":\"flood\",\"cells\":{cells}}}");
                    let conn = self.drive_conn(ScriptedConn::request(http_post("/campaigns", &body)));
                    if conn.response_status() == Some(429)
                        && conn.response_header("Retry-After").is_none()
                    {
                        // Shedding without a Retry-After is a policy
                        // violation the ledger charges as a panic.
                        self.ledger.gateway.panics += 1;
                    }
                }
            }
            TransportFault::GatewayKill { cells, point } => {
                self.kill_incarnation(cells, kill_point(point));
            }
        }
    }

    /// Drives the drain protocol, settles any still-pending stale
    /// injection first, and pumps to completion under supervision.
    fn drain(&mut self, total_faults: usize) {
        if self.pending_stale.is_some() {
            self.cycle(None);
        }
        self.drive_conn(ScriptedConn::request(http_post("/drain", "{}")));
        self.drive_conn(ScriptedConn::request(http_get("/readyz")));
        let budget = 64 + 24 * total_faults;
        for _ in 0..budget {
            self.supervise();
            if self.gw.is_none() {
                self.reopen(None);
                if self.gw.is_none() {
                    break;
                }
            }
            if self.gw.as_ref().is_some_and(|g| g.all_done()) {
                break;
            }
            let r = self.pump_tracked(16);
            if r.killed {
                self.ledger.gateway.kills += 1;
                self.cycle(None);
            }
        }
        self.drive_conn(ScriptedConn::request(http_get(&format!(
            "/campaigns/{}",
            self.id
        ))));
        self.drive_conn(ScriptedConn::request(http_get(&format!(
            "/campaigns/{}/results",
            self.id
        ))));
    }
}

/// Runs one composed chaos schedule: a fault-free direct reference in
/// `/reference`, then the gateway campaign in `/gw` on a disk
/// carrying the plan's disk faults, a pool carrying its scheduler
/// faults, attacked by its service and transport faults — and checks
/// [`check_cross_ledger`] over the absorbed [`CrossLedger`].
///
/// `make_model` builds a fresh model per incarnation. `cells_json` is
/// the campaign's cells array; `flood_cells(i)` renders the i-th
/// distinct flood submission's cells. `md_check`, when given and when
/// the MD layer is unmasked, runs the plan's MD fault schedule
/// through the caller's MD harness and contributes its
/// [`ScheduleReport`] to the ledger (the conductor itself is
/// MD-agnostic; the `chaos` binary supplies the real workload).
pub fn run_composed_chaos<M, F>(
    make_model: F,
    cells_json: &str,
    protocol: &str,
    plan: &ComposedPlan,
    flood_cells: &dyn Fn(usize) -> String,
    md_check: Option<&mut dyn FnMut(&FaultPlan) -> ScheduleReport>,
) -> io::Result<ComposedChaosReport>
where
    M: CampaignModel,
    F: Fn() -> M,
{
    let eff_service = plan.effective_service();
    let eff_transport = plan.effective_transport();
    let eff_disk = plan.effective_disk();
    let eff_sched = plan.effective_sched();
    if eff_sched.panic_count() > 0 {
        quiet_injected_panics();
    }

    let io_err = |e: String| io::Error::new(io::ErrorKind::InvalidInput, e);
    let cells_value: Value =
        serde_json::from_str(cells_json).map_err(|e| io_err(format!("cells: {e}")))?;
    let cells_canonical =
        serde_json::to_string(&cells_value).map_err(|e| io_err(format!("cells: {e}")))?;
    let model = make_model();
    let tasks = model.parse_cells(&cells_value).map_err(io_err)?;
    let total = tasks.len();
    let id = campaign_id("alice", protocol, &cells_canonical);
    let submission = format!("{{\"tenant\":\"alice\",\"cells\":{cells_canonical}}}");

    // Fault-free serial reference on a pristine disk: the byte-
    // identity target for the drained artifact.
    let ref_fs = Arc::new(SimFs::new());
    let ref_cfg = ServiceConfig::new("/reference", protocol);
    let ref_journal = ref_cfg.journal_path();
    let mut reference =
        JobService::<M::Result>::open_on(ref_fs.clone() as SharedFs, ref_cfg, |r| M::key_of(r))?;
    reference.run(&tasks, |t| model.exec(t))?;
    drop(reference);
    let reference_digest = artifact_digest_on(ref_fs.as_ref(), &ref_journal);

    let mut ledger = CrossLedger::default();
    for (slot, layer) in LAYERS.iter().enumerate() {
        ledger.layer_events[slot] = if plan.mask.get(*layer) {
            plan.events_in(*layer)
        } else {
            0
        };
    }
    // The MD layer runs first and independently: its fault stream
    // attacks the simulated cluster, not the campaign's disk.
    if plan.mask.get(Layer::Md) {
        if let Some(check) = md_check {
            ledger.md = Some(check(&plan.effective_md()));
        }
    }

    let threads = eff_sched.threads.max(1);
    let chaos = SchedChaos::new(eff_sched.clone());
    let probe_cfg = GatewayConfig::new("/gw", protocol);
    let mut conductor = Conductor {
        make_model,
        sim: Arc::new(SimFs::with_plan(&eff_disk)),
        chaos,
        executed: Arc::new(AtomicUsize::new(0)),
        protocol: protocol.to_string(),
        submission,
        id: id.clone(),
        dir: probe_cfg.campaign_dir(&id),
        journal: probe_cfg.campaign_journal(&id),
        total,
        threads,
        max_width: threads.max(
            eff_sched
                .thread_change()
                .map_or(0, |(_, to)| to),
        ),
        base_stale: eff_sched.stale_lease_at(),
        pending_stale: None,
        thread_change: eff_sched.thread_change(),
        thread_changed: false,
        flood_serial: 0,
        revivals: 0,
        extra_cells: 0,
        fuel: REOPEN_FUEL,
        ledger,
        acked: HashSet::new(),
        gw: None,
    };

    conductor.reopen(None);

    // Interleave the service and transport streams round-robin, with
    // supervised pumping between injections so every fault lands on a
    // live, mid-flight campaign.
    let rounds = eff_service.faults.len().max(eff_transport.faults.len());
    for i in 0..rounds {
        if let Some(fault) = eff_service.faults.get(i) {
            conductor.apply_service_fault(fault.clone());
        }
        conductor.pump_once(3);
        if let Some(fault) = eff_transport.faults.get(i) {
            conductor.apply_transport_fault(fault, flood_cells);
        }
        conductor.pump_once(3);
    }

    let total_faults = eff_service.faults.len()
        + eff_transport.faults.len()
        + eff_disk.faults.len()
        + eff_sched.faults.len();
    conductor.drain(total_faults);

    // Final accounting: completion counts and the pool-reusability
    // probe from the surviving gateway, flood campaigns' cells into
    // the execution license, then the last absorb.
    if let Some(gw) = conductor.gw.as_ref() {
        if let Some(out) = gw.outcome_of(&id) {
            conductor.ledger.service.completed = out.completed;
            conductor.ledger.service.abandoned = out.abandoned;
            conductor.ledger.gateway.completed = out.completed;
            conductor.ledger.gateway.abandoned = out.abandoned;
            conductor.ledger.sched.completed = out.completed;
            conductor.ledger.sched.abandoned = out.abandoned;
        }
        let probe: Vec<u64> = vec![1, 2, 3];
        conductor.ledger.sched.pool_reusable = gw
            .pool()
            .try_par_map_indexed(&probe, |_, x| *x * 2)
            .is_ok();
        conductor.extra_cells = gw
            .campaign_ids()
            .iter()
            .filter(|c| **c != id)
            .filter_map(|c| gw.outcome_of(c))
            .map(|o| o.total)
            .sum();
    }
    conductor.absorb();
    conductor.gw = None;

    // Post-mortem verification straight from the disk, like the
    // single-layer disk harness: reopen the campaign's service
    // directly (construction is recovery), replay the acked-key
    // oracle one last time, and compare every recovered result
    // byte-for-byte against a fresh execution.
    let mut scfg = ServiceConfig::new(conductor.dir.clone(), protocol);
    scfg.shards = SHARDS;
    let mut final_results = None;
    for _ in 0..REOPEN_TRIES {
        if conductor.sim.crashed() {
            conductor.sim.restart();
            conductor.ledger.disk.restarts += 1;
        }
        match JobService::<M::Result>::open_on(
            conductor.sim.clone() as SharedFs,
            scfg.clone(),
            |r| M::key_of(r),
        ) {
            Ok(s) => {
                final_results = Some(s.results().clone());
                break;
            }
            Err(_) => conductor.absorb_disk_err(),
        }
    }
    if let Some(results) = &final_results {
        for k in &conductor.acked {
            if !results.contains_key(k) {
                conductor.ledger.disk.acked_then_lost += 1;
            }
        }
        let verifier = (conductor.make_model)();
        for task in &tasks {
            let (expected, _) = verifier.exec(task);
            let key = M::key_of(&expected);
            if let Some(got) = results.get(&key) {
                conductor.ledger.disk.completed += 1;
                let same = match (serde_json::to_string(got), serde_json::to_string(&expected)) {
                    (Ok(a), Ok(b)) => a == b,
                    _ => false,
                };
                if !same {
                    conductor.ledger.disk.corrupt_accepted += 1;
                }
            }
        }
    }

    let mut ledger = conductor.ledger;
    let artifact_digest = artifact_digest_on(conductor.sim.as_ref(), &conductor.journal);
    ledger.artifact_digest = artifact_digest;
    ledger.reference_digest = reference_digest;
    for (a, r) in [
        (&mut ledger.service.artifact_digest, &mut ledger.service.reference_digest),
        (&mut ledger.gateway.artifact_digest, &mut ledger.gateway.reference_digest),
        (&mut ledger.disk.artifact_digest, &mut ledger.disk.reference_digest),
        (&mut ledger.sched.artifact_digest, &mut ledger.sched.reference_digest),
    ] {
        *a = artifact_digest;
        *r = reference_digest;
    }

    // Totals and the remaining book columns.
    ledger.service.total_cells = total;
    ledger.gateway.total_cells = total;
    ledger.disk.total_cells = total;
    ledger.sched.total_cells = total;
    ledger.disk.incarnations = ledger.gateway.incarnations;
    ledger.disk.abandoned = ledger.service.abandoned;
    ledger.sched.threads = conductor.threads;
    ledger.sched.executed = ledger.service.executed;
    ledger.sched.panics_injected = conductor.chaos.injected_panics();
    ledger.sched.pauses_taken = conductor.chaos.pauses_taken();
    ledger.sched.stale_presented = ledger.service.stale_presented;
    ledger.sched.stale_rejected = ledger.service.stale_rejected;
    ledger.sched.journal_lines = conductor
        .sim
        .read(&conductor.journal)
        .map(|b| b.iter().filter(|&&x| x == b'\n').count())
        .unwrap_or(0);
    ledger.sched.stalled = false;
    ledger.disk.disk = conductor.sim.counters();

    // A torn results journal behind the gateway creates re-executions
    // the transport-layer book cannot see coming; license them there
    // the same way the service book does.
    ledger.gateway.lost_executions += ledger.service.destroyed_results;
    // The disk book's execution columns mirror the absorbed service
    // counters (ground truth lives in `executed_true` below).
    ledger.disk.executed = ledger.service.executed;
    ledger.disk.lost_executions = ledger.service.lost_executions
        + ledger.service.destroyed_results
        + ledger.service.dropped_lines;

    // The composed execution license: see the module docs.
    let boundaries = ledger.gateway.incarnations
        + ledger.disk.restarts
        + ledger.disk.io_retries
        + ledger.disk.enospc_lifts
        + conductor.revivals;
    ledger.exec_allowance = total
        + conductor.extra_cells
        + conductor.max_width * boundaries
        + ledger.service.destroyed_results
        + ledger.service.dropped_lines
        + ledger.service.reclaimed_leases
        + ledger.service.stale_presented
        + ledger.sched.panics_injected;
    ledger.executed_true = conductor.executed.load(Ordering::Relaxed);

    let violations = check_cross_ledger(&ledger);
    Ok(ComposedChaosReport {
        ledger,
        violations,
        campaign: id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_cells, demo_flood_cells, DemoModel};
    use cpc_cluster::{
        ComposedFaultSpace, DiskFaultSpace, FaultSpace, LayerMask, SchedFaultSpace,
        ServiceFaultSpace, TransportFaultSpace,
    };

    const PROTOCOL: &str = "steps=8;model=demo";
    const CELLS: usize = 6;

    fn run(plan: &ComposedPlan) -> ComposedChaosReport {
        run_composed_chaos(
            DemoModel::default,
            &demo_cells(CELLS as u64),
            PROTOCOL,
            plan,
            &demo_flood_cells,
            None,
        )
        .expect("composed chaos run")
    }

    fn space() -> ComposedFaultSpace {
        ComposedFaultSpace::new(
            FaultSpace::new(4, 4, 8, 60.0, 64),
            ServiceFaultSpace::new(CELLS, SHARDS),
            TransportFaultSpace::new(CELLS),
            DiskFaultSpace::new(400),
            SchedFaultSpace::new(CELLS),
        )
    }

    #[test]
    fn quiet_plan_is_byte_identical_and_clean() {
        let report = run(&ComposedPlan::quiet(2));
        assert!(report.passed(), "violations: {:?}", report.violations);
        let l = &report.ledger;
        assert_eq!(l.gateway.incarnations, 1);
        assert_eq!(l.service.completed, CELLS);
        assert_eq!(l.executed_true, CELLS);
        assert!(l.artifact_digest.is_some());
        assert_eq!(l.artifact_digest, l.reference_digest);
    }

    #[test]
    fn masked_schedule_matches_fault_free_reference() {
        // Any sampled schedule with every layer masked degenerates to
        // the quiet run: byte-identical artifact, no violations.
        let mut plan = space().sample(11, 3);
        plan.mask = LayerMask::none();
        let report = run(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.executed_true, CELLS);
        assert_eq!(report.ledger.artifact_digest, report.ledger.reference_digest);
        assert_eq!(report.ledger.layer_events, [0, 0, 0, 0, 0]);
    }

    #[test]
    fn reproducer_replay_is_deterministic_from_seed_and_mask() {
        // A corpus reproducer pins nothing beyond its plan — which is
        // fully determined by (seed, index, layer mask). Replay must
        // be bitwise repeatable: the same plan, fresh or revived from
        // its JSON corpus form, produces byte-identical verdicts,
        // per-layer event counts and artifact digests.
        let space = space();
        for (seed, index) in [(11u64, 3u64), (29, 1)] {
            let mut plan = space.sample(seed, index);
            plan.mask = plan.mask.without(cpc_cluster::Layer::Transport);
            let json = serde_json::to_string(&plan).expect("plan serializes");
            let revived: ComposedPlan = serde_json::from_str(&json).expect("plan revives");
            let fresh = run(&plan);
            let replay = run(&revived);
            assert_eq!(
                format!("{:?}", fresh.violations),
                format!("{:?}", replay.violations),
                "seed {seed} index {index}: verdict drifted across replays"
            );
            assert_eq!(fresh.ledger.layer_events, replay.ledger.layer_events);
            assert_eq!(fresh.ledger.artifact_digest, replay.ledger.artifact_digest);
            assert_eq!(fresh.ledger.reference_digest, replay.ledger.reference_digest);
        }
    }

    #[test]
    fn composed_schedules_survive_every_layer_at_once() {
        let space = space();
        for index in 0..4 {
            let plan = space.sample(29, index);
            let report = run(&plan);
            assert!(
                report.passed(),
                "schedule {index} convicted: {:?}\nledger: {:#?}",
                report.violations,
                report.ledger
            );
            assert_eq!(
                report.ledger.artifact_digest, report.ledger.reference_digest,
                "schedule {index} diverged from the reference artifact"
            );
        }
    }

    #[test]
    fn double_torn_result_write_heals_on_drain() {
        // Two back-to-back journal tears that each destroy every
        // committed line: the drain must heal all of them back.
        let mut plan = ComposedPlan::quiet(2);
        plan.service = cpc_cluster::ServiceFaultPlan {
            faults: vec![
                cpc_cluster::ServiceFault::TornResultWrite { keep_frac: 0.12 },
                cpc_cluster::ServiceFault::TornResultWrite { keep_frac: 0.11 },
            ],
        };
        let report = run(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.service.completed, CELLS);
        assert_eq!(report.ledger.artifact_digest, report.ledger.reference_digest);
    }

    #[test]
    fn double_tear_under_a_service_only_mask_heals() {
        // Regression (found by `chaos --composed`): a campaign that
        // completed, then lost its whole results journal to a tear,
        // must not latch `done` from the still-drained queue at the
        // recovery that follows — the heal path needs pump grants.
        let mut plan = ComposedPlan::quiet(2);
        plan.mask = LayerMask::none().set(Layer::Service, true);
        plan.service = cpc_cluster::ServiceFaultPlan {
            faults: vec![
                cpc_cluster::ServiceFault::TornResultWrite { keep_frac: 0.12248394148650728 },
                cpc_cluster::ServiceFault::TornResultWrite { keep_frac: 0.11895633382522722 },
            ],
        };
        let report = run(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.service.completed, CELLS);
    }

    #[test]
    fn high_bit_flip_in_a_queue_shard_recovers() {
        // Regression (found by `chaos --composed`): a bit-7 flip
        // leaves the shard invalid UTF-8; recovery must read it as
        // that line's checksum damage, not an unreadable journal —
        // the wedge here was every reopen failing until the fuel ran
        // out, stranding the campaign at 0 of 6 cells.
        let mut plan = ComposedPlan::quiet(2);
        plan.mask = LayerMask::none().set(Layer::Service, true);
        plan.service = cpc_cluster::ServiceFaultPlan {
            faults: vec![cpc_cluster::ServiceFault::CacheBitFlip {
                entry: 5,
                byte: 1439,
                bit: 7,
            }],
        };
        let report = run(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.service.completed, CELLS);
        assert_eq!(report.ledger.artifact_digest, report.ledger.reference_digest);
    }

    #[test]
    fn task_panic_composed_with_persistent_enospc_is_contained() {
        // Regression (found by `chaos --composed`): the storage fault
        // aborts the batch before the in-batch lease-expiry reclaim
        // can land, so the panicked task's lease is reclaimed at the
        // next recovery boundary instead — which must satisfy the
        // containment oracle, not convict it.
        let mut plan = ComposedPlan::quiet(2);
        plan.mask = LayerMask::none()
            .set(Layer::Disk, true)
            .set(Layer::Sched, true);
        plan.disk.faults.push(cpc_vfs::DiskFault::EnospcPersistent { at: 136 });
        plan.sched.faults.push(cpc_pool::SchedFault::TaskPanic { at_start: 3 });
        let report = run(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.service.completed, CELLS);
        assert_eq!(report.ledger.artifact_digest, report.ledger.reference_digest);
    }

    #[test]
    fn stall_under_kill_and_transient_enospc_licenses_stranded_executions() {
        // Regression (found by `chaos --composed`): a transient
        // ENOSPC mid-batch strands executions whose commits were
        // discarded; the revived service legitimately re-runs them,
        // and the per-layer duplicate-execution books must carry the
        // stall's license.
        let mut plan = ComposedPlan::quiet(2);
        plan.mask = LayerMask::none()
            .set(Layer::Service, true)
            .set(Layer::Transport, true)
            .set(Layer::Disk, true);
        plan.service.faults.push(ServiceFault::TornQueueWrite {
            shard: 2,
            keep_frac: 0.8225311486056455,
        });
        plan.transport.faults.push(TransportFault::GatewayKill { cells: 1, point: 1 });
        plan.disk.faults.push(cpc_vfs::DiskFault::EnospcTransient { at: 132, ops: 5 });
        let report = run(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.service.completed, CELLS);
        assert_eq!(report.ledger.artifact_digest, report.ledger.reference_digest);
    }

    #[test]
    fn kill_crash_interaction_exercises_both_layers() {
        // A hand-built cross-layer schedule: an orchestrator kill
        // (service layer) composed with a reordering power cut (disk
        // layer) and a gateway kill (transport layer). The acked-set
        // replay must survive the restart and the artifact must stay
        // byte-identical.
        let mut plan = ComposedPlan::quiet(2);
        plan.service.faults.push(ServiceFault::WorkerKill { cells: 2 });
        plan.transport.faults.push(TransportFault::GatewayKill { cells: 1, point: 1 });
        plan.disk.faults.push(cpc_vfs::DiskFault::PowerLoss {
            at: 60,
            reorder: true,
            keep_seed: 7,
        });
        let report = run(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        let l = &report.ledger;
        assert!(l.gateway.incarnations >= 3, "kills must cycle incarnations");
        assert!(l.service.kills + l.gateway.kills >= 2);
        assert_eq!(l.artifact_digest, l.reference_digest);
    }
}
