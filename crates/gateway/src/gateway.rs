//! The overload-safe multi-tenant campaign gateway: HTTP/JSON routes
//! over the crash-safe [`JobService`], with explicit load shedding,
//! deficit-round-robin fair scheduling across tenants, idempotent
//! deduplicated submissions, and graceful drain.
//!
//! ## Durability model
//!
//! Every campaign lives in its own directory under
//! `<root>/campaigns/<id>/` holding the service's queue shards,
//! results journal and cache plus a `meta.json` (tenant + cells)
//! written atomically *before* the campaign is registered. `kill -9`
//! of the gateway at any instant therefore loses nothing: the next
//! incarnation rescans `campaigns/*/meta.json`, reopens each
//! [`JobService`] (construction is recovery) and resumes stepping.
//! The campaign id is the content address of the submission —
//! `fnv1a64(tenant ‖ protocol ‖ canonical cells JSON)` — so a client
//! that times out and retries its POST lands on the same campaign:
//! retried submissions deduplicate instead of double-executing.
//!
//! ## Overload model
//!
//! Admission is bounded per tenant ([`TenantPolicy::max_pending_cells`]);
//! beyond it the submission is shed with 429. A draining gateway sheds
//! with 503. Both carry `Retry-After` derived from the Jacobson/Karels
//! [`RttEstimator`] over observed per-cell execution times — the same
//! estimator the cluster uses for retransmission timeouts — scaled by
//! the backlog the client is behind.

use crate::http::{read_request, write_response, Conn, HttpLimits, Response};
use crate::tenancy::{DrrScheduler, TenantPolicy};
use cpc_cluster::RttEstimator;
use cpc_pool::{Pool, SchedChaos};
use cpc_vfs::{atomic_publish, is_enospc, real_fs, SharedFs};
use cpc_workload::service::{
    task_key, JobService, KillPoint, ServiceConfig, ServiceOutcome, StepOutcome,
};
use serde_json::Value;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;

/// How a campaign's task list, execution and result rendering plug
/// into the gateway. The gateway is generic so the bench binary can
/// serve real measurement cells while tests and the chaos harness
/// serve a cheap deterministic model through identical code paths.
/// `Sync` (and the `Sync`/`Send` bounds on the associated types)
/// because [`Gateway::pump`] executes each DRR grant's batch of cells
/// concurrently on a `cpc-pool` executor.
pub trait CampaignModel: Sync {
    /// One cell of work, serializable for the queue key.
    type Task: serde::Serialize + Clone + Sync;
    /// One durable result, serializable for the journal.
    type Result: serde::Serialize + serde::Deserialize + Clone + Send;

    /// Parses a submission's `cells` JSON into tasks; `Err` becomes a
    /// 400 with the message.
    fn parse_cells(&self, cells: &Value) -> Result<Vec<Self::Task>, String>;
    /// Maps a journaled result back to its task key (the
    /// [`JobService`] key extractor).
    fn key_of(r: &Self::Result) -> String;
    /// Executes one cell, returning the result and its virtual cost
    /// in seconds. `&self` because the cells of one batch execute
    /// concurrently; per-cell determinism must not depend on
    /// execution order.
    fn exec(&self, task: &Self::Task) -> (Self::Result, f64);
    /// Renders a result for the results endpoint.
    fn result_json(r: &Self::Result) -> Value {
        serde::Serialize::to_value(r)
    }
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Root directory; campaigns live under `<root>/campaigns/<id>/`.
    pub root: PathBuf,
    /// Protocol string folded into every cache key and campaign id.
    pub protocol: String,
    /// HTTP request limits.
    pub limits: HttpLimits,
    /// Tenant admission and fair-scheduling policy.
    pub policy: TenantPolicy,
    /// Queue journal shards per campaign.
    pub shards: usize,
    /// Kill injection applied to campaign services (chaos harness):
    /// the incarnation dies at the n-th fresh execution.
    pub kill: Option<(usize, KillPoint)>,
    /// Worker threads per pump grant: each DRR grant advances up to
    /// this many cells of one campaign concurrently on a `cpc-pool`
    /// executor. 1 (the default) reproduces the serial one-cell-per-
    /// grant pump exactly.
    pub threads: usize,
    /// Stale-lease injection passed through to every campaign service
    /// (chaos harness): the n-th lease is also completed through a
    /// stale duplicate handle, which the queue must reject.
    pub stale_lease_at: Option<usize>,
}

impl GatewayConfig {
    /// Defaults around a root directory and protocol string.
    pub fn new(root: impl Into<PathBuf>, protocol: impl Into<String>) -> Self {
        GatewayConfig {
            root: root.into(),
            protocol: protocol.into(),
            limits: HttpLimits::default(),
            policy: TenantPolicy::default(),
            shards: 4,
            kill: None,
            threads: 1,
            stale_lease_at: None,
        }
    }

    /// The directory of one campaign.
    pub fn campaign_dir(&self, id: &str) -> PathBuf {
        self.root.join("campaigns").join(id)
    }

    /// The results journal of one campaign — the byte-identity
    /// artifact.
    pub fn campaign_journal(&self, id: &str) -> PathBuf {
        self.campaign_dir(id).join("journal.jsonl")
    }
}

/// Connection/request accounting for the chaos ledger and operators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Connections the gateway started handling.
    pub conns_opened: usize,
    /// Connections it finished handling (every exit path).
    pub conns_closed: usize,
    /// Requests handled (including rejected ones).
    pub requests: usize,
    /// Responses with status >= 400.
    pub rejected: usize,
    /// Load-shed responses (429/503, always with `Retry-After`).
    pub shed: usize,
    /// Campaigns quiesced by a storage failure mid-batch (cumulative
    /// transitions, not currently-stalled count — see
    /// [`Gateway::stalled_count`] for the latter). Each stall can
    /// strand up to a pool width of in-flight executions whose
    /// commits never became durable.
    pub stalls: usize,
    /// Stalled campaigns revived by reopening their service from
    /// disk (cumulative).
    pub revives: usize,
}

/// What one [`Gateway::pump`] call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct PumpReport {
    /// Cells advanced.
    pub granted: usize,
    /// The injected kill fired; the gateway is dead.
    pub killed: bool,
}

struct Campaign<M: CampaignModel> {
    id: String,
    tenant: String,
    tasks: Vec<M::Task>,
    service: JobService<M::Result>,
    done: bool,
    /// A storage failure (ENOSPC, EIO, failed fsync) interrupted a
    /// step: the campaign is quiesced — no further steps are driven
    /// through the possibly-poisoned in-memory service. A later pump
    /// revives it by reopening the service from disk (construction is
    /// recovery), which resumes byte-identically once the disk heals.
    stalled: bool,
}

/// The gateway itself. Single-threaded by design: the bench binary
/// serializes connections through a mutex and pumps execution from a
/// worker loop; determinism of the underlying service is what makes
/// kill-resume byte-identical through the HTTP path.
pub struct Gateway<M: CampaignModel> {
    cfg: GatewayConfig,
    fs: SharedFs,
    model: M,
    sched: DrrScheduler,
    campaigns: Vec<Campaign<M>>,
    index: HashMap<String, usize>,
    draining: bool,
    dead: bool,
    rtt: RttEstimator,
    stats: GatewayStats,
    pool: Pool,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// The content address of a submission — what `POST /campaigns`
/// computes for idempotent dedup. Exposed so drivers and tests can
/// predict the campaign id of a canonical cells JSON (as rendered by
/// `serde_json::to_string`, which this gateway uses as the canonical
/// form).
pub fn campaign_id(tenant: &str, protocol: &str, cells_json: &str) -> String {
    format!(
        "{:016x}",
        fnv1a64(format!("{tenant}\n{protocol}\n{cells_json}").as_bytes())
    )
}

fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

impl<M: CampaignModel> Gateway<M> {
    /// Opens the gateway on the real filesystem, recovering every
    /// campaign found under `<root>/campaigns/` (sorted by id for a
    /// deterministic schedule after restart).
    pub fn open(cfg: GatewayConfig, model: M) -> io::Result<Self> {
        Self::open_on(real_fs(), cfg, model)
    }

    /// Opens the gateway on an injected filesystem — the hook through
    /// which the disk chaos campaigns and the live ENOSPC smoke
    /// ([`cpc_vfs::EnospcTrigger`]) reach every durable write the
    /// gateway or its campaign services make.
    pub fn open_on(fs: SharedFs, cfg: GatewayConfig, model: M) -> io::Result<Self> {
        fs.create_dir_all(&cfg.root.join("campaigns"))?;
        let mut gw = Gateway {
            sched: DrrScheduler::new(&cfg.policy),
            pool: Pool::new(cfg.threads.max(1)),
            cfg,
            fs,
            model,
            campaigns: Vec::new(),
            index: HashMap::new(),
            draining: false,
            dead: false,
            rtt: RttEstimator::new(),
            stats: GatewayStats::default(),
        };
        let mut ids: Vec<String> = gw
            .fs
            .read_dir(&gw.cfg.root.join("campaigns"))?
            .into_iter()
            .filter(|p| gw.fs.exists(&p.join("meta.json")))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        ids.sort();
        for id in ids {
            let meta_path = gw.cfg.campaign_dir(&id).join("meta.json");
            let text = gw.fs.read_to_string(&meta_path)?;
            let meta: Value = serde_json::from_str(&text)
                .map_err(|e| io_err(format!("corrupt {}: {e}", meta_path.display())))?;
            let tenant = meta
                .get("tenant")
                .and_then(Value::as_str)
                .ok_or_else(|| io_err("meta.json missing tenant"))?
                .to_string();
            let cells = meta
                .get("cells")
                .ok_or_else(|| io_err("meta.json missing cells"))?;
            let tasks = gw.model.parse_cells(cells).map_err(io_err)?;
            gw.register(id, tenant, tasks)?;
        }
        Ok(gw)
    }

    /// Opens (recovers) one campaign's service from disk and stages
    /// its task list — used at registration and when reviving a
    /// stalled campaign after a storage failure.
    fn open_service(&self, id: &str, tasks: &[M::Task]) -> io::Result<JobService<M::Result>> {
        let mut scfg = ServiceConfig::new(self.cfg.campaign_dir(id), &self.cfg.protocol);
        scfg.shards = self.cfg.shards;
        scfg.kill = self.cfg.kill;
        scfg.stale_lease_at = self.cfg.stale_lease_at;
        let mut service =
            JobService::<M::Result>::open_on(self.fs.clone(), scfg, |r| M::key_of(r))?;
        service.prepare(tasks)?;
        Ok(service)
    }

    /// Whether a campaign is truly finished: the queue drained AND
    /// every cell is accounted for by a durable result or a
    /// dead-letter. A drained queue alone is not enough — a torn
    /// result-journal write can destroy committed results while the
    /// queue still carries their done markers, and such a campaign
    /// must keep pumping so [`JobService::step`] heals the misses.
    fn settled(out: &ServiceOutcome) -> bool {
        out.drained && out.completed + out.abandoned >= out.total
    }

    fn register(&mut self, id: String, tenant: String, tasks: Vec<M::Task>) -> io::Result<()> {
        let service = self.open_service(&id, &tasks)?;
        let done = Self::settled(&service.outcome());
        self.sched.register(&tenant);
        self.index.insert(id.clone(), self.campaigns.len());
        self.campaigns.push(Campaign {
            id,
            tenant,
            tasks,
            service,
            done,
            stalled: false,
        });
        Ok(())
    }

    fn remaining(c: &Campaign<M>) -> usize {
        if c.done {
            return 0;
        }
        let out = c.service.outcome();
        out.total.saturating_sub(out.completed + out.abandoned)
    }

    fn tenant_backlog(&self, tenant: &str) -> usize {
        self.campaigns
            .iter()
            .filter(|c| c.tenant == tenant)
            .map(Self::remaining)
            .sum()
    }

    fn total_backlog(&self) -> usize {
        self.campaigns.iter().map(Self::remaining).sum()
    }

    /// Seconds a shed client should wait before retrying: the
    /// Jacobson/Karels retransmission timeout over observed per-cell
    /// costs, scaled by the backlog ahead of the client.
    fn retry_after(&self, backlog_cells: usize) -> u64 {
        let per_cell = self.rtt.rto().unwrap_or(1.0);
        let secs = (per_cell * backlog_cells.max(1) as f64).ceil();
        (secs as u64).clamp(1, 120)
    }

    fn shed(&mut self, status: u16, reason: &'static str, why: &str, backlog: usize) -> Response {
        let retry = self.retry_after(backlog);
        Response::json(
            status,
            reason,
            format!("{{\"error\":\"{why}\",\"retry_after\":{retry}}}"),
        )
        .with_header("Retry-After", retry.to_string())
    }

    /// Handles one connection end to end: read, route, respond. Every
    /// exit path (including unwritable responses to vanished peers)
    /// closes the connection and is accounted in [`GatewayStats`].
    pub fn handle(&mut self, conn: &mut dyn Conn) {
        self.stats.conns_opened += 1;
        self.stats.requests += 1;
        let limits = self.cfg.limits.clone();
        let resp = match read_request(conn, &limits) {
            Ok(req) => self.route(&req.method, &req.path, &req.body),
            Err(e) => {
                let (status, reason) = e.status();
                Response::json(status, reason, format!("{{\"error\":\"{reason}\"}}"))
            }
        };
        if resp.status >= 400 {
            self.stats.rejected += 1;
        }
        if resp.status == 429 || resp.status == 503 || resp.status == 507 {
            self.stats.shed += 1;
        }
        // A peer that disconnected mid-response is its own problem;
        // the gateway's job is only to never wedge on it.
        let _ = write_response(conn, &resp);
        self.stats.conns_closed += 1;
    }

    /// [`handle`](Self::handle) for a gateway shared across accept
    /// workers: the request is read and the response written OUTSIDE
    /// the lock, so a slow or hostile peer stalls only its own worker
    /// while the others keep routing. The lock is held exactly for
    /// routing and the stats bumps; every exit path still closes the
    /// connection in [`GatewayStats`], so the fd-leak oracle
    /// (`conns_opened == conns_closed`) covers concurrent connections
    /// unchanged.
    pub fn handle_shared(gw: &std::sync::Mutex<Self>, conn: &mut dyn Conn) {
        let limits = {
            let mut g = gw.lock().expect("gateway lock");
            g.stats.conns_opened += 1;
            g.stats.requests += 1;
            g.cfg.limits.clone()
        };
        let resp = match read_request(conn, &limits) {
            Ok(req) => gw
                .lock()
                .expect("gateway lock")
                .route(&req.method, &req.path, &req.body),
            Err(e) => {
                let (status, reason) = e.status();
                Response::json(status, reason, format!("{{\"error\":\"{reason}\"}}"))
            }
        };
        {
            let mut g = gw.lock().expect("gateway lock");
            if resp.status >= 400 {
                g.stats.rejected += 1;
            }
            if resp.status == 429 || resp.status == 503 || resp.status == 507 {
                g.stats.shed += 1;
            }
        }
        let _ = write_response(conn, &resp);
        gw.lock().expect("gateway lock").stats.conns_closed += 1;
    }

    fn route(&mut self, method: &str, path: &str, body: &[u8]) -> Response {
        match (method, path) {
            ("GET", "/healthz") => Response::json(
                200,
                "OK",
                format!(
                    "{{\"status\":\"ok\",\"draining\":{},\"campaigns\":{}}}",
                    self.draining,
                    self.campaigns.len()
                ),
            ),
            ("GET", "/readyz") => {
                if self.draining {
                    let backlog = self.total_backlog();
                    self.shed(503, "Service Unavailable", "draining", backlog)
                } else {
                    Response::json(200, "OK", "{\"ready\":true}")
                }
            }
            ("POST", "/drain") => {
                self.draining = true;
                Response::json(200, "OK", "{\"draining\":true}")
            }
            ("POST", "/campaigns") => self.submit(body),
            ("GET", p) if p.starts_with("/campaigns/") => {
                let rest = &p["/campaigns/".len()..];
                if let Some(id) = rest.strip_suffix("/results") {
                    self.results(id)
                } else if !rest.contains('/') {
                    self.status(rest)
                } else {
                    Response::json(404, "Not Found", "{\"error\":\"no such route\"}")
                }
            }
            ("GET" | "POST", _) => {
                Response::json(404, "Not Found", "{\"error\":\"no such route\"}")
            }
            _ => Response::json(
                405,
                "Method Not Allowed",
                "{\"error\":\"method not allowed\"}",
            ),
        }
    }

    fn submit(&mut self, body: &[u8]) -> Response {
        let bad =
            |why: &str| Response::json(400, "Bad Request", format!("{{\"error\":\"{why}\"}}"));
        let Ok(text) = std::str::from_utf8(body) else {
            return bad("body is not UTF-8");
        };
        let Ok(v) = serde_json::from_str::<Value>(text) else {
            return bad("body is not valid JSON");
        };
        let Some(tenant) = v.get("tenant").and_then(Value::as_str) else {
            return bad("missing tenant");
        };
        if !valid_tenant(tenant) {
            return bad("invalid tenant name");
        }
        let tenant = tenant.to_string();
        let Some(cells) = v.get("cells") else {
            return bad("missing cells");
        };
        let cells_json = match serde_json::to_string(cells) {
            Ok(s) => s,
            Err(_) => return bad("unserializable cells"),
        };
        let id = campaign_id(&tenant, &self.cfg.protocol, &cells_json);

        // Idempotent retried submission: the content address already
        // exists, so the retry maps onto the running campaign instead
        // of double-executing it.
        if self.index.contains_key(&id) {
            let out = self.outcome_of(&id).expect("indexed campaign");
            return Response::json(
                200,
                "OK",
                format!(
                    "{{\"campaign\":\"{id}\",\"cells\":{},\"deduplicated\":true,\"completed\":{}}}",
                    out.total, out.completed
                ),
            );
        }
        if self.draining {
            let backlog = self.total_backlog();
            return self.shed(503, "Service Unavailable", "draining", backlog);
        }
        let tasks = match self.model.parse_cells(cells) {
            Ok(t) => t,
            Err(why) => {
                return bad(&why.replace(['"', '\\'], "'"));
            }
        };
        if tasks.is_empty() {
            return bad("empty campaign");
        }
        let backlog = self.tenant_backlog(&tenant);
        if backlog + tasks.len() > self.cfg.policy.max_pending_cells {
            return self.shed(429, "Too Many Requests", "tenant backlog full", backlog);
        }

        // Durable registration: meta.json lands via atomic_publish
        // (write tmp → fsync → rename → fsync dir) before the campaign
        // is admitted, so a kill — or a power cut — between the two
        // leaves at worst an idle directory the next incarnation
        // re-adopts. The directory fsyncs matter: without them the
        // registration could be acked to the client and then vanish
        // with the page cache.
        let dir = self.cfg.campaign_dir(&id);
        let n = tasks.len();
        let meta = format!("{{\"tenant\":\"{tenant}\",\"cells\":{cells_json}}}");
        let write = |fs: &SharedFs| -> io::Result<()> {
            fs.create_dir_all(&dir)?;
            atomic_publish(fs.as_ref(), &dir.join("meta.json"), meta.as_bytes())?;
            // The campaign directory itself must survive power loss
            // before the client is told anything was created.
            fs.sync_dir(&self.cfg.root.join("campaigns"))
        };
        match write(&self.fs).and_then(|()| self.register(id.clone(), tenant, tasks)) {
            Ok(()) => Response::json(
                201,
                "Created",
                format!("{{\"campaign\":\"{id}\",\"cells\":{n}}}"),
            ),
            Err(e) if is_enospc(&e) => {
                // Out of disk: shed with 507 + Retry-After instead of
                // accepting a submission whose durability cannot be
                // promised. Nothing partial remains admitted in memory;
                // an orphan meta.json (if the failure hit mid-register)
                // is re-adopted by a later incarnation once space
                // returns.
                let backlog = self.total_backlog();
                self.shed(507, "Insufficient Storage", "out of disk space", backlog)
            }
            Err(_) => Response::json(
                500,
                "Internal Server Error",
                "{\"error\":\"cannot persist campaign\"}",
            ),
        }
    }

    fn status(&self, id: &str) -> Response {
        let Some(out) = self.outcome_of(id) else {
            return Response::json(404, "Not Found", "{\"error\":\"no such campaign\"}");
        };
        let c = &self.campaigns[self.index[id]];
        Response::json(
            200,
            "OK",
            format!(
                "{{\"campaign\":\"{id}\",\"tenant\":\"{}\",\"total\":{},\"completed\":{},\
                 \"abandoned\":{},\"done\":{}}}",
                c.tenant, out.total, out.completed, out.abandoned, c.done
            ),
        )
    }

    fn results(&self, id: &str) -> Response {
        let Some(&idx) = self.index.get(id) else {
            return Response::json(404, "Not Found", "{\"error\":\"no such campaign\"}");
        };
        let c = &self.campaigns[idx];
        let mut items: Vec<String> = Vec::new();
        for task in &c.tasks {
            let Ok(key) = task_key(task) else { continue };
            if let Some(r) = c.service.results().get(&key) {
                let v = M::result_json(r);
                items.push(serde_json::to_string(&v).unwrap_or_else(|_| "null".into()));
            }
        }
        Response::json(
            200,
            "OK",
            format!(
                "{{\"campaign\":\"{id}\",\"done\":{},\"results\":[{}]}}",
                c.done,
                items.join(",")
            ),
        )
    }

    /// Advances up to `budget` cells. Each DRR grant drives one batch
    /// of up to `cfg.threads` cells of the granted tenant's campaign,
    /// executed concurrently on the gateway's `cpc-pool` executor and
    /// committed in task order — at the default `threads = 1` this is
    /// exactly the old serial one-cell-per-grant pump, and at any
    /// thread count the campaign journals are byte-identical. Returns
    /// how many cells advanced and whether the injected kill fired
    /// (after which the gateway refuses further work, modelling the
    /// dead process).
    pub fn pump(&mut self, budget: usize) -> PumpReport {
        let mut report = PumpReport::default();
        // Bounded by grants, not cells: a batch that advances nothing
        // (every cell dead-lettered mid-batch) must not spin forever.
        for _ in 0..budget {
            if report.granted >= budget {
                break;
            }
            if self.dead {
                report.killed = true;
                break;
            }
            let backlogs: HashMap<String, usize> = self
                .sched
                .tenants()
                .iter()
                .map(|t| (t.clone(), self.tenant_backlog(t)))
                .collect();
            let Some(tenant) = self.sched.grant(|t| *backlogs.get(t).unwrap_or(&0)) else {
                break;
            };
            let Some(idx) = self
                .campaigns
                .iter()
                .position(|c| c.tenant == tenant && !c.done)
            else {
                continue;
            };
            // A stalled campaign is revived by reopening its service
            // from disk — never by trusting the in-memory instance
            // that saw the storage failure (its journal may be
            // poisoned; per the fsyncgate policy a retried fsync would
            // lie). If the disk is still sick the reopen fails and the
            // campaign stays quiesced for a later pump.
            if self.campaigns[idx].stalled {
                let id = self.campaigns[idx].id.clone();
                let tasks = self.campaigns[idx].tasks.clone();
                match self.open_service(&id, &tasks) {
                    Ok(service) => {
                        self.stats.revives += 1;
                        let c = &mut self.campaigns[idx];
                        c.done = Self::settled(&service.outcome());
                        c.service = service;
                        c.stalled = false;
                        if c.done {
                            continue;
                        }
                    }
                    Err(_) => continue,
                }
            }
            let campaign = &mut self.campaigns[idx];
            let model = &self.model;
            let width = self.pool.threads().min(budget - report.granted).max(1);
            let batch = campaign.service.pooled_batch(
                &campaign.tasks,
                &self.pool,
                width,
                &|t: &M::Task| model.exec(t),
            );
            match batch {
                Ok(b) => {
                    report.granted += b.advanced;
                    // Per-cell costs feed the shed-back-pressure
                    // estimator exactly like RTT samples, in commit
                    // order (cache hits cost nothing, as before).
                    for &cost in &b.exec_costs {
                        self.rtt.observe(cost.max(1e-6));
                    }
                    match b.step {
                        StepOutcome::Progress => {
                            // The batch that completes the last cell
                            // leaves the queue drained with zero
                            // backlog; without marking it done here
                            // the scheduler would never grant the
                            // campaign again and it would idle
                            // forever.
                            if Self::settled(&campaign.service.outcome()) {
                                campaign.done = true;
                            }
                        }
                        StepOutcome::Drained => campaign.done = true,
                        StepOutcome::Killed => {
                            self.dead = true;
                            report.killed = true;
                            break;
                        }
                    }
                }
                Err(_) => {
                    // A storage failure mid-batch (ENOSPC, EIO, failed
                    // fsync): quiesce the campaign. It is NOT done —
                    // marking it done would silently drop every
                    // unfinished cell. The durable state on disk
                    // decides what re-runs when a later pump revives
                    // the service, and because recovery is
                    // construction, the resumed artifact is
                    // byte-identical to an unfaulted run's.
                    campaign.stalled = true;
                    self.stats.stalls += 1;
                }
            }
        }
        report
    }

    /// True when every registered campaign has drained.
    pub fn all_done(&self) -> bool {
        self.campaigns.iter().all(|c| c.done)
    }

    /// Campaigns currently quiesced by a storage failure, awaiting
    /// revival.
    pub fn stalled_count(&self) -> usize {
        self.campaigns.iter().filter(|c| c.stalled).count()
    }

    /// Rebuilds the pump executor with an adversarial-schedule
    /// injector armed (chaos harness): steal storms, worker pauses and
    /// injected panics now land inside the gateway's own pump batches.
    /// The injector's counters are shared, so one `SchedChaos` can
    /// span every incarnation of a composed schedule.
    pub fn arm_sched_chaos(&mut self, chaos: std::sync::Arc<SchedChaos>) {
        self.pool = Pool::new(self.cfg.threads.max(1)).with_chaos(chaos);
    }

    /// Replaces the pump executor with one of `threads` workers
    /// (chaos harness: a mid-campaign thread-count change), keeping
    /// `chaos` armed when given. Batch width follows the new count.
    pub fn swap_pool(&mut self, threads: usize, chaos: Option<std::sync::Arc<SchedChaos>>) {
        self.cfg.threads = threads.max(1);
        let pool = Pool::new(self.cfg.threads);
        self.pool = match chaos {
            Some(c) => pool.with_chaos(c),
            None => pool,
        };
    }

    /// The pump executor — exposed so chaos drivers can absorb its
    /// panic/steal counters and probe post-chaos reusability.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The filesystem this gateway runs on.
    pub fn fs(&self) -> &SharedFs {
        &self.fs
    }

    /// True after `POST /drain`.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// True after the injected kill fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Connection/request accounting.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Registered campaign ids in registration order.
    pub fn campaign_ids(&self) -> Vec<String> {
        self.campaigns.iter().map(|c| c.id.clone()).collect()
    }

    /// The service outcome snapshot of one campaign.
    pub fn outcome_of(&self, id: &str) -> Option<ServiceOutcome> {
        self.index
            .get(id)
            .map(|&i| self.campaigns[i].service.outcome())
    }

    /// The committed result keys of one campaign. The underlying
    /// service records a result only after its journal append has
    /// been fsynced, so every key returned here is durably
    /// acknowledged — chaos drivers replay this set across restarts
    /// for the acked-then-lost oracle.
    pub fn result_keys(&self, id: &str) -> Option<Vec<String>> {
        self.index
            .get(id)
            .map(|&i| self.campaigns[i].service.results().keys().cloned().collect())
    }

    /// The gateway configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{http_get, http_post, ScriptedConn};
    use crate::demo::{demo_cells, DemoModel};
    use cpc_workload::service::artifact_digest;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cpc-gateway-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn open(root: &PathBuf) -> Gateway<DemoModel> {
        let mut cfg = GatewayConfig::new(root, "demo");
        cfg.policy.max_pending_cells = 10;
        Gateway::open(cfg, DemoModel).unwrap()
    }

    fn send(gw: &mut Gateway<DemoModel>, bytes: Vec<u8>) -> ScriptedConn {
        let mut conn = ScriptedConn::request(bytes);
        gw.handle(&mut conn);
        conn
    }

    fn submit_body(tenant: &str, cells: &str) -> Vec<u8> {
        http_post(
            "/campaigns",
            &format!("{{\"tenant\":\"{tenant}\",\"cells\":{cells}}}"),
        )
    }

    #[test]
    fn submit_pump_status_results_roundtrip() {
        let root = tmp_dir("roundtrip");
        let mut gw = open(&root);
        let conn = send(&mut gw, submit_body("alice", &demo_cells(5)));
        assert_eq!(conn.response_status(), Some(201));
        let body: Value =
            serde_json::from_str(&conn.response_body().unwrap()).expect("submit response JSON");
        let id = body["campaign"].as_str().unwrap().to_string();
        assert_eq!(id, campaign_id("alice", "demo", &demo_cells(5)));

        let conn = send(&mut gw, http_get(&format!("/campaigns/{id}")));
        assert!(conn.response_body().unwrap().contains("\"done\":false"));

        while !gw.all_done() {
            assert!(gw.pump(4).granted > 0 || gw.all_done());
        }
        let conn = send(&mut gw, http_get(&format!("/campaigns/{id}")));
        let status = conn.response_body().unwrap();
        assert!(status.contains("\"completed\":5") && status.contains("\"done\":true"));

        let conn = send(&mut gw, http_get(&format!("/campaigns/{id}/results")));
        let results: Value = serde_json::from_str(&conn.response_body().unwrap()).unwrap();
        let items = results["results"].as_array().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[3][1].as_f64(), Some(9.0), "cell 3 yields [3, 9]");

        // Health endpoints and unknown routes.
        assert_eq!(
            send(&mut gw, http_get("/healthz")).response_status(),
            Some(200)
        );
        assert_eq!(
            send(&mut gw, http_get("/readyz")).response_status(),
            Some(200)
        );
        assert_eq!(
            send(&mut gw, http_get("/nope")).response_status(),
            Some(404)
        );
        assert_eq!(
            send(&mut gw, http_get("/campaigns/ffffffffffffffff")).response_status(),
            Some(404)
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn pooled_pump_is_byte_identical_to_serial_across_thread_counts() {
        // Serial (threads = 1) reference journal through the gateway.
        let ref_root = tmp_dir("pump-pool-ref");
        let mut gw = open(&ref_root);
        let conn = send(&mut gw, submit_body("alice", &demo_cells(9)));
        assert_eq!(conn.response_status(), Some(201));
        let id = campaign_id("alice", "demo", &demo_cells(9));
        while !gw.all_done() {
            assert!(gw.pump(4).granted > 0 || gw.all_done());
        }
        let want = artifact_digest(gw.config().campaign_journal(&id));
        assert!(want.is_some());
        drop(gw);

        for threads in [2usize, 4, 8] {
            let root = tmp_dir(&format!("pump-pool-{threads}"));
            let mut cfg = GatewayConfig::new(&root, "demo");
            cfg.policy.max_pending_cells = 10;
            cfg.threads = threads;
            let mut gw = Gateway::open(cfg, DemoModel).unwrap();
            let conn = send(&mut gw, submit_body("alice", &demo_cells(9)));
            assert_eq!(conn.response_status(), Some(201));
            let mut pumps = 0usize;
            while !gw.all_done() {
                let r = gw.pump(9);
                assert!(r.granted > 0 || gw.all_done());
                pumps += 1;
                assert!(pumps < 100, "threads={threads}: pump never drains");
            }
            assert_eq!(
                artifact_digest(gw.config().campaign_journal(&id)),
                want,
                "threads={threads}: gateway journal must be byte-identical to serial"
            );
            let outcome = gw.outcome_of(&id).unwrap();
            assert_eq!((outcome.completed, outcome.executed), (9, 9));
            let _ = std::fs::remove_dir_all(&root);
        }
        let _ = std::fs::remove_dir_all(&ref_root);
    }

    #[test]
    fn retried_submission_deduplicates_instead_of_double_executing() {
        let root = tmp_dir("dedup");
        let mut gw = open(&root);
        assert_eq!(
            send(&mut gw, submit_body("alice", &demo_cells(4))).response_status(),
            Some(201)
        );
        gw.pump(2);
        let conn = send(&mut gw, submit_body("alice", &demo_cells(4)));
        assert_eq!(conn.response_status(), Some(200));
        assert!(conn
            .response_body()
            .unwrap()
            .contains("\"deduplicated\":true"));
        while !gw.all_done() {
            gw.pump(4);
        }
        let id = campaign_id("alice", "demo", &demo_cells(4));
        assert_eq!(
            gw.campaign_ids().len(),
            1,
            "the retry registers nothing new"
        );
        let out = gw.outcome_of(&id).unwrap();
        assert_eq!(out.executed, 4, "each cell ran exactly once, never twice");
        assert_eq!(out.completed, 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn overloaded_tenant_is_shed_with_retry_after_and_drain_closes_admission() {
        let root = tmp_dir("shed");
        let mut gw = open(&root); // max_pending_cells = 10
        assert_eq!(
            send(&mut gw, submit_body("bob", &demo_cells(8))).response_status(),
            Some(201)
        );
        // 8 pending + 5 more would cross the bound of 10: shed.
        let conn = send(&mut gw, submit_body("bob", "[100,101,102,103,104]"));
        assert_eq!(conn.response_status(), Some(429));
        let retry: u64 = conn
            .response_header("Retry-After")
            .unwrap()
            .parse()
            .unwrap();
        assert!((1..=120).contains(&retry));
        // Another tenant is unaffected by bob's backlog.
        assert_eq!(
            send(&mut gw, submit_body("carol", "[200,201]")).response_status(),
            Some(201)
        );
        // Drain: readiness and new submissions shed with 503.
        assert_eq!(
            send(&mut gw, http_post("/drain", "{}")).response_status(),
            Some(200)
        );
        let conn = send(&mut gw, http_get("/readyz"));
        assert_eq!(conn.response_status(), Some(503));
        assert!(conn.response_header("Retry-After").is_some());
        assert_eq!(
            send(&mut gw, submit_body("dave", "[300]")).response_status(),
            Some(503)
        );
        // In-flight campaigns still complete under drain.
        while !gw.all_done() {
            assert!(gw.pump(8).granted > 0 || gw.all_done());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn invalid_submissions_get_typed_400s() {
        let root = tmp_dir("invalid");
        let mut gw = open(&root);
        for body in [
            "not json",
            "{\"cells\":[1]}",
            "{\"tenant\":\"x y\",\"cells\":[1]}",
            "{\"tenant\":\"ok\"}",
            "{\"tenant\":\"ok\",\"cells\":\"nope\"}",
            "{\"tenant\":\"ok\",\"cells\":[]}",
            "{\"tenant\":\"ok\",\"cells\":[-3]}",
        ] {
            let conn = send(&mut gw, http_post("/campaigns", body));
            assert_eq!(conn.response_status(), Some(400), "body {body:?}");
        }
        assert_eq!(gw.stats().rejected, 7);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submit_under_enospc_sheds_507_with_retry_after_then_recovers() {
        use cpc_vfs::SimFs;
        use std::sync::Arc;
        let fs = Arc::new(SimFs::new());
        let mut cfg = GatewayConfig::new("gw", "demo");
        cfg.policy.max_pending_cells = 10;
        let mut gw = Gateway::open_on(fs.clone(), cfg, DemoModel).unwrap();

        fs.set_enospc(true);
        let conn = send(&mut gw, submit_body("alice", &demo_cells(3)));
        assert_eq!(
            conn.response_status(),
            Some(507),
            "full disk sheds, not 500s"
        );
        let retry: u64 = conn
            .response_header("Retry-After")
            .expect("507 carries Retry-After")
            .parse()
            .unwrap();
        assert!((1..=120).contains(&retry));
        assert_eq!(gw.stats().shed, 1);
        assert_eq!(gw.campaign_ids().len(), 0, "nothing half-admitted");

        // Space returns: the identical submission is accepted and runs.
        fs.set_enospc(false);
        let conn = send(&mut gw, submit_body("alice", &demo_cells(3)));
        assert_eq!(conn.response_status(), Some(201));
        while !gw.all_done() {
            assert!(gw.pump(4).granted > 0 || gw.all_done());
        }
        let id = campaign_id("alice", "demo", &demo_cells(3));
        assert_eq!(gw.outcome_of(&id).unwrap().completed, 3);
    }

    #[test]
    fn enospc_mid_pump_quiesces_then_resumes_byte_identical() {
        use cpc_vfs::SimFs;
        use cpc_workload::service::artifact_digest_on;
        use std::sync::Arc;
        // Reference: the same campaign driven with no faults.
        let ref_fs = Arc::new(SimFs::new());
        let mut gw =
            Gateway::open_on(ref_fs.clone(), GatewayConfig::new("gw", "demo"), DemoModel).unwrap();
        assert_eq!(
            send(&mut gw, submit_body("alice", &demo_cells(6))).response_status(),
            Some(201)
        );
        while !gw.all_done() {
            gw.pump(4);
        }
        let id = campaign_id("alice", "demo", &demo_cells(6));
        let journal = gw.config().campaign_journal(&id);
        let want = artifact_digest_on(ref_fs.as_ref(), &journal);
        assert!(want.is_some());

        // Faulted run: disk fills after two cells complete.
        let fs = Arc::new(SimFs::new());
        let mut gw =
            Gateway::open_on(fs.clone(), GatewayConfig::new("gw", "demo"), DemoModel).unwrap();
        assert_eq!(
            send(&mut gw, submit_body("alice", &demo_cells(6))).response_status(),
            Some(201)
        );
        gw.pump(2);
        fs.set_enospc(true);
        let r = gw.pump(4);
        assert_eq!(r.granted, 0, "no progress on a full disk");
        assert!(!gw.all_done(), "quiesced, never falsely done");
        assert_eq!(
            gw.stalled_count(),
            1,
            "the campaign stalls instead of dying"
        );
        // Pumping while still full keeps it quiesced without panicking.
        gw.pump(4);
        assert_eq!(gw.stalled_count(), 1);

        // Space returns: revival drains to the byte-identical artifact.
        fs.set_enospc(false);
        while !gw.all_done() {
            assert!(gw.pump(4).granted > 0 || gw.all_done());
        }
        assert_eq!(gw.stalled_count(), 0);
        assert_eq!(
            artifact_digest_on(fs.as_ref(), &journal),
            want,
            "resume after ENOSPC must be byte-identical to the unfaulted run"
        );
        let out = gw.outcome_of(&id).unwrap();
        assert_eq!(out.completed, 6);
    }

    #[test]
    fn kill_resume_through_the_gateway_is_byte_identical_to_direct() {
        // Direct path reference.
        let ref_dir = tmp_dir("gwkill-ref");
        let scfg = ServiceConfig::new(&ref_dir, "demo");
        let ref_journal = scfg.journal_path();
        let mut svc = JobService::<Vec<f64>>::open(scfg, DemoModel::key_of).unwrap();
        let model = DemoModel;
        let tasks: Vec<u64> = (0..6).collect();
        svc.run(&tasks, |t| model.exec(t)).unwrap();
        drop(svc);
        let want = artifact_digest(&ref_journal);
        assert!(want.is_some());

        // Gateway incarnation killed mid-commit after 3 fresh cells.
        let root = tmp_dir("gwkill");
        let mut cfg = GatewayConfig::new(&root, "demo");
        cfg.kill = Some((3, KillPoint::MidCommit));
        let mut gw = Gateway::open(cfg, DemoModel).unwrap();
        assert_eq!(
            send(&mut gw, submit_body("alice", &demo_cells(6))).response_status(),
            Some(201)
        );
        let id = campaign_id("alice", "demo", &demo_cells(6));
        let mut killed = false;
        for _ in 0..32 {
            let r = gw.pump(4);
            if r.killed {
                killed = true;
                break;
            }
        }
        assert!(killed, "the injected kill fires");
        drop(gw); // SIGKILL: durable state is already synced.

        // Next incarnation recovers from meta.json alone — the client
        // never resubmits — and drains to a byte-identical artifact.
        let mut gw = Gateway::open(GatewayConfig::new(&root, "demo"), DemoModel).unwrap();
        assert_eq!(gw.campaign_ids(), vec![id.clone()], "meta.json recovery");
        while !gw.all_done() {
            assert!(
                gw.pump(8).granted > 0 || gw.all_done(),
                "resume makes progress"
            );
        }
        assert_eq!(artifact_digest(gw.config().campaign_journal(&id)), want);
        let conn = send(&mut gw, http_get(&format!("/campaigns/{id}")));
        assert!(conn.response_body().unwrap().contains("\"done\":true"));
        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&root);
    }
}
