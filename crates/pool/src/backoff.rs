//! Bounded exponential backoff for spin-wait loops.
//!
//! Waiting code in this workspace must never burn a core in a bare
//! `yield_now()` loop: on a one-core host that starves the very thread
//! being waited on, and on a busy host it hides how long a waiter has
//! actually been stuck. `Backoff` escalates from cheap CPU spins
//! through scheduler yields to short timed parks, and keeps counters
//! for each phase so a stall watchdog can read *how hard* a waiter has
//! been waiting instead of guessing from wall time.

use std::time::Duration;

/// Spin-phase rounds: round `r` issues `2^r` `spin_loop` hints.
const SPIN_ROUNDS: u32 = 6;
/// Yield-phase rounds after the spin phase is exhausted.
const YIELD_ROUNDS: u32 = 10;
/// First timed park once spinning and yielding have both failed.
const PARK_FLOOR: Duration = Duration::from_micros(50);
/// Parks double up to this cap so a waiter never oversleeps a wakeup
/// by more than ~1 ms.
const PARK_CEIL: Duration = Duration::from_millis(1);

/// Escalating waiter: spin → yield → park, with surfaced counters.
#[derive(Debug, Default)]
pub struct Backoff {
    round: u32,
    park: Option<Duration>,
    spins: u64,
    yields: u64,
    parks: u64,
}

impl Backoff {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wait one escalation step. Call in a loop around the condition
    /// being waited for; call [`reset`](Self::reset) once it holds.
    pub fn snooze(&mut self) {
        if self.round < SPIN_ROUNDS {
            let hints = 1u64 << self.round;
            for _ in 0..hints {
                std::hint::spin_loop();
            }
            self.spins += hints;
            self.round += 1;
        } else if self.round < SPIN_ROUNDS + YIELD_ROUNDS {
            std::thread::yield_now();
            self.yields += 1;
            self.round += 1;
        } else {
            let dur = self.park.unwrap_or(PARK_FLOOR);
            std::thread::park_timeout(dur);
            self.park = Some((dur * 2).min(PARK_CEIL));
            self.parks += 1;
        }
    }

    /// Forget the escalation state (the condition held) but keep the
    /// lifetime counters.
    pub fn reset(&mut self) {
        self.round = 0;
        self.park = None;
    }

    /// True once the waiter has escalated past the cheap spin phase —
    /// the point at which a watchdog should start paying attention.
    pub fn is_past_spinning(&self) -> bool {
        self.round >= SPIN_ROUNDS || self.parks > 0
    }

    /// Total `spin_loop` hints issued over this waiter's lifetime.
    pub fn spins(&self) -> u64 {
        self.spins
    }

    /// Total `yield_now` calls over this waiter's lifetime.
    pub fn yields(&self) -> u64 {
        self.yields
    }

    /// Total timed parks over this waiter's lifetime.
    pub fn parks(&self) -> u64 {
        self.parks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_through_all_three_phases() {
        let mut b = Backoff::new();
        assert!(!b.is_past_spinning());
        for _ in 0..(SPIN_ROUNDS + YIELD_ROUNDS + 3) {
            b.snooze();
        }
        assert!(b.is_past_spinning());
        assert_eq!(b.spins(), (1u64 << SPIN_ROUNDS) - 1);
        assert_eq!(b.yields(), u64::from(YIELD_ROUNDS));
        assert_eq!(b.parks(), 3);
    }

    #[test]
    fn reset_restarts_escalation_but_keeps_counters() {
        let mut b = Backoff::new();
        for _ in 0..(SPIN_ROUNDS + 1) {
            b.snooze();
        }
        let spins = b.spins();
        b.reset();
        assert!(!b.is_past_spinning());
        b.snooze();
        assert_eq!(b.spins(), spins + 1, "round restarted at 2^0 spins");
    }

    #[test]
    fn park_duration_is_capped() {
        let mut b = Backoff::new();
        for _ in 0..(SPIN_ROUNDS + YIELD_ROUNDS) {
            b.snooze();
        }
        // Drive the park phase well past the doubling horizon (50 us
        // doubles past 1 ms in five steps); the total wait stays
        // bounded by rounds * PARK_CEIL.
        for _ in 0..6 {
            b.snooze();
        }
        assert_eq!(b.park, Some(PARK_CEIL));
    }
}
