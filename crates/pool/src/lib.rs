//! cpc-pool: a work-stealing executor behind a deterministic-reduction
//! API.
//!
//! The paper's cluster runs found no easy parallelism across commodity
//! networks; the parallelism that *is* easy — host threads — is only
//! admissible here if it cannot move a single output byte. Every
//! oracle in this workspace (chaos byte-identical reruns, ABFT
//! redundant integration, kill-resume artifact identity) assumes
//! bit-identical determinism, so the executor enforces one rule:
//!
//! **Index-ordered commit.** [`Pool::par_map_indexed`] runs tasks on
//! whatever thread steals them, in whatever order the scheduler and
//! the chaos layer conspire to produce, but the results are merged
//! into the output vector by *task index*, never by completion order.
//! Reduction order — and therefore every byte any caller writes from
//! the results — is fixed across thread counts and interleavings.
//!
//! Scheduling is classic range stealing without `unsafe`: each worker
//! owns a mutex-guarded index range, pops from the front of its own
//! range, and steals the back half of a victim's range when empty
//! (one task at a time under a chaos steal storm). Each index is
//! claimed exactly once by construction; the merge step still audits
//! for lost or doubly-claimed tasks and convicts with a typed
//! [`PoolError`] rather than trusting the construction.
//!
//! Worker panics are caught at the task boundary and surfaced as
//! [`TaskPanic`] values so a campaign driver can reclaim the task via
//! the lease path; the pool spawns scoped threads per call, so a
//! poisoned long-lived pool is structurally impossible. A stall
//! watchdog on the calling thread counts fixed-length
//! `Condvar::wait_timeout` ticks with no task completions and convicts
//! a deadlocked schedule as [`PoolError::Stalled`] instead of hanging
//! the harness. (Tick counting, not the ambient clock — the
//! determinism audit allows none in `crates/`; the watchdog measures
//! real time only in units of its own timeouts. Its scope is
//! scheduler-level stalls: a task that blocks forever *inside* user
//! code is the harness-level watchdog's job, same as under any
//! work-stealing runtime.)

mod backoff;
pub mod chaos;

pub use backoff::Backoff;
pub use chaos::{quiet_injected_panics, SchedChaos, SchedFault, SchedFaultPlan, INJECTED_PANIC};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Env var selecting the worker-thread count (`CPC_THREADS=4`).
pub const ENV_THREADS: &str = "CPC_THREADS";
/// Env var forcing the sequential fallback for bisection
/// (`CPC_POOL_SEQUENTIAL=1` beats `CPC_THREADS`).
pub const ENV_SEQUENTIAL: &str = "CPC_POOL_SEQUENTIAL";

/// Default watchdog tick and strike budget: ~10 s of zero progress
/// before a schedule is convicted as stalled.
const STALL_TICK: Duration = Duration::from_millis(100);
const STALL_STRIKES: u32 = 100;

/// A task that panicked mid-execution (caught at the task boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the task within the mapped slice.
    pub task: usize,
    /// Rendered panic payload.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task, self.message)
    }
}

/// Scheduler-level failure of a whole `par_map` call. `LostTask` and
/// `DoubleClaim` indict the executor itself and should be impossible;
/// `Stalled` convicts a schedule that stopped making progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// No task completed for the full strike budget of watchdog ticks.
    Stalled { completed: usize, total: usize },
    /// An index was never claimed by any worker.
    LostTask { task: usize },
    /// An index was claimed (and executed) by two workers.
    DoubleClaim { task: usize },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Stalled { completed, total } => write!(
                f,
                "schedule stalled: {completed}/{total} tasks completed, then no progress \
                 for the watchdog's full strike budget"
            ),
            PoolError::LostTask { task } => write!(f, "task {task} was never claimed"),
            PoolError::DoubleClaim { task } => write!(f, "task {task} was claimed twice"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Lifetime counters for one pool (shared across its calls).
#[derive(Debug, Default)]
struct StatCells {
    tasks: AtomicU64,
    steals: AtomicU64,
    panics_caught: AtomicU64,
    spins: AtomicU64,
    yields: AtomicU64,
    parks: AtomicU64,
    stalls: AtomicU64,
}

/// Point-in-time snapshot of a pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub tasks: u64,
    pub steals: u64,
    pub panics_caught: u64,
    pub backoff_spins: u64,
    pub backoff_yields: u64,
    pub backoff_parks: u64,
    pub stalls: u64,
}

/// The executor. Cheap to construct; worker threads are scoped to each
/// `par_map` call (no idle threads between calls, no pool to poison).
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    stall_tick: Duration,
    stall_strikes: u32,
    chaos: Option<Arc<SchedChaos>>,
    stats: Arc<StatCells>,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            stall_tick: STALL_TICK,
            stall_strikes: STALL_STRIKES,
            chaos: None,
            stats: Arc::new(StatCells::default()),
        }
    }

    /// The sequential fallback: every map runs inline on the caller.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Honor `CPC_POOL_SEQUENTIAL` / `CPC_THREADS`, defaulting to the
    /// host's available parallelism.
    pub fn from_env() -> Self {
        let fallback = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(threads_from_env(
            std::env::var(ENV_SEQUENTIAL).ok().as_deref(),
            std::env::var(ENV_THREADS).ok().as_deref(),
            fallback,
        ))
    }

    /// Attach an interleaving-fuzz plan. The `Arc` is shared so global
    /// counters survive mid-campaign pool swaps.
    pub fn with_chaos(mut self, chaos: Arc<SchedChaos>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Override the stall watchdog's tick length and strike budget
    /// (conviction after `strikes` consecutive no-progress ticks).
    pub fn with_stall_budget(mut self, tick: Duration, strikes: u32) -> Self {
        self.stall_tick = tick;
        self.stall_strikes = strikes.max(1);
        self
    }

    /// Configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when every map runs inline on the caller.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Snapshot the pool's lifetime counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.stats;
        PoolStats {
            tasks: c.tasks.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            panics_caught: c.panics_caught.load(Ordering::Relaxed),
            backoff_spins: c.spins.load(Ordering::Relaxed),
            backoff_yields: c.yields.load(Ordering::Relaxed),
            backoff_parks: c.parks.load(Ordering::Relaxed),
            stalls: c.stalls.load(Ordering::Relaxed),
        }
    }

    /// Map `f` over `items`, results in task-index order. Panics if
    /// any task panicked (first panic in index order, re-raised) — use
    /// [`try_par_map_indexed`](Self::try_par_map_indexed) to handle
    /// panics as data — and on scheduler-level [`PoolError`]s, which
    /// indict the executor itself.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let results = self
            .try_par_map_indexed(items, f)
            .unwrap_or_else(|e| panic!("cpc-pool scheduler failure: {e}"));
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|p| panic!("{p}")))
            .collect()
    }

    /// Map `f` over `items`, returning one `Result` per task in
    /// task-index order: `Ok(r)` for completed tasks, `Err(TaskPanic)`
    /// for tasks whose execution panicked. The outer error convicts
    /// the *schedule* (stall) or the executor (lost/double claim).
    pub fn try_par_map_indexed<T, R, F>(
        &self,
        items: &[T],
        f: F,
    ) -> Result<Vec<Result<R, TaskPanic>>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return Ok(self.run_inline(items, &f));
        }
        self.run_stealing(items, &f, workers)
    }

    /// Sequential path: same chaos instrumentation, same task-boundary
    /// panic containment, zero threads.
    fn run_inline<T, R, F>(&self, items: &[T], f: &F) -> Vec<Result<R, TaskPanic>>
    where
        F: Fn(usize, &T) -> R,
    {
        let chaos = self.chaos.as_deref();
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if let Some(c) = chaos {
                    c.at_yield_point(0);
                }
                self.execute(f, i, item, chaos)
            })
            .collect()
    }

    /// One task, panic-contained, with chaos panic injection inside
    /// the containment boundary so injected and organic panics take
    /// the identical recovery path.
    fn execute<T, R, F>(
        &self,
        f: &F,
        i: usize,
        item: &T,
        chaos: Option<&SchedChaos>,
    ) -> Result<R, TaskPanic>
    where
        F: Fn(usize, &T) -> R,
    {
        let inject = chaos.is_some_and(|c| c.on_task_start());
        self.stats.tasks.fetch_add(1, Ordering::Relaxed);
        catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("{INJECTED_PANIC} (task {i})");
            }
            f(i, item)
        }))
        .map_err(|payload| {
            self.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            TaskPanic {
                task: i,
                message: panic_message(payload.as_ref()),
            }
        })
    }

    fn run_stealing<T, R, F>(
        &self,
        items: &[T],
        f: &F,
        workers: usize,
    ) -> Result<Vec<Result<R, TaskPanic>>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        // Contiguous initial partition: worker w owns [w*n/W, (w+1)*n/W).
        let ranges: Vec<Mutex<(usize, usize)>> = (0..workers)
            .map(|w| Mutex::new((w * n / workers, (w + 1) * n / workers)))
            .collect();
        let remaining = AtomicUsize::new(n);
        let completions = AtomicU64::new(0);
        let stalled = AtomicUsize::new(0); // 0 = live, 1 = convicted
        let wake = (Mutex::new(()), Condvar::new());
        let chaos = self.chaos.as_deref();

        let locals: Vec<Vec<(usize, Result<R, TaskPanic>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let ranges = &ranges;
                    let remaining = &remaining;
                    let completions = &completions;
                    let stalled = &stalled;
                    let wake = &wake;
                    s.spawn(move || {
                        self.worker_loop(
                            me,
                            items,
                            f,
                            ranges,
                            remaining,
                            completions,
                            stalled,
                            wake,
                            chaos,
                        )
                    })
                })
                .collect();

            self.watch(&remaining, &completions, &stalled, &wake);

            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker thread must not die"))
                .collect()
        });

        let mut slots: Vec<Option<Result<R, TaskPanic>>> =
            std::iter::repeat_with(|| None).take(n).collect();
        let mut double_claim = None;
        for (i, res) in locals.into_iter().flatten() {
            if slots[i].is_some() {
                double_claim = Some(i);
            }
            slots[i] = Some(res);
        }
        if stalled.load(Ordering::Acquire) != 0 {
            self.stats.stalls.fetch_add(1, Ordering::Relaxed);
            let completed = slots.iter().filter(|s| s.is_some()).count();
            return Err(PoolError::Stalled {
                completed,
                total: n,
            });
        }
        if let Some(task) = double_claim {
            return Err(PoolError::DoubleClaim { task });
        }
        let mut out = Vec::with_capacity(n);
        for (task, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(res) => out.push(res),
                None => return Err(PoolError::LostTask { task }),
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop<T, R, F>(
        &self,
        me: usize,
        items: &[T],
        f: &F,
        ranges: &[Mutex<(usize, usize)>],
        remaining: &AtomicUsize,
        completions: &AtomicU64,
        stalled: &AtomicUsize,
        wake: &(Mutex<()>, Condvar),
        chaos: Option<&SchedChaos>,
    ) -> Vec<(usize, Result<R, TaskPanic>)>
    where
        F: Fn(usize, &T) -> R,
    {
        let mut local = Vec::new();
        let mut backoff = Backoff::new();
        loop {
            if stalled.load(Ordering::Acquire) != 0 {
                break;
            }
            match self.claim(me, ranges, chaos) {
                Some(i) => {
                    backoff.reset();
                    if let Some(c) = chaos {
                        c.at_yield_point(me);
                    }
                    local.push((i, self.execute(f, i, &items[i], chaos)));
                    completions.fetch_add(1, Ordering::Release);
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last task: wake the watchdog. Notifying under
                        // the lock pairs with its atomic unlock-and-wait,
                        // so the wakeup cannot be lost.
                        let _guard = wake.0.lock().expect("pool wake lock");
                        wake.1.notify_all();
                    }
                }
                None => {
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    if let Some(c) = chaos {
                        c.at_yield_point(me);
                    }
                    backoff.snooze();
                }
            }
        }
        self.stats
            .spins
            .fetch_add(backoff.spins(), Ordering::Relaxed);
        self.stats
            .yields
            .fetch_add(backoff.yields(), Ordering::Relaxed);
        self.stats
            .parks
            .fetch_add(backoff.parks(), Ordering::Relaxed);
        local
    }

    /// Claim one task index: pop the front of our own range, else
    /// steal the back half (one task under a storm) of the first
    /// non-empty victim.
    fn claim(
        &self,
        me: usize,
        ranges: &[Mutex<(usize, usize)>],
        chaos: Option<&SchedChaos>,
    ) -> Option<usize> {
        {
            let mut own = ranges[me].lock().expect("pool range lock");
            if own.0 < own.1 {
                let i = own.0;
                own.0 += 1;
                return Some(i);
            }
        }
        let workers = ranges.len();
        for offset in 1..workers {
            let victim = (me + offset) % workers;
            let (lo, hi) = {
                let mut v = ranges[victim].lock().expect("pool range lock");
                let avail = v.1 - v.0;
                if avail == 0 {
                    continue;
                }
                let take = if chaos.is_some_and(|c| c.steal_one()) {
                    1
                } else {
                    avail - avail / 2
                };
                let lo = v.1 - take;
                let hi = v.1;
                v.1 = lo;
                (lo, hi)
            };
            self.stats.steals.fetch_add(1, Ordering::Relaxed);
            if hi - lo > 1 {
                // Our range is empty (checked above) and only we ever
                // refill it, so the overwrite cannot drop tasks.
                let mut own = ranges[me].lock().expect("pool range lock");
                *own = (lo + 1, hi);
            }
            return Some(lo);
        }
        None
    }

    /// Caller-side stall watchdog: sleep on the condvar in fixed
    /// ticks; `strikes` consecutive ticks with zero completions
    /// convict the schedule and tell the workers to bail.
    fn watch(
        &self,
        remaining: &AtomicUsize,
        completions: &AtomicU64,
        stalled: &AtomicUsize,
        wake: &(Mutex<()>, Condvar),
    ) {
        let mut strikes = 0u32;
        let mut last = completions.load(Ordering::Acquire);
        let mut guard = wake.0.lock().expect("pool wake lock");
        while remaining.load(Ordering::Acquire) > 0 {
            let (g, timeout) = wake
                .1
                .wait_timeout(guard, self.stall_tick)
                .expect("pool wake wait");
            guard = g;
            let now = completions.load(Ordering::Acquire);
            if now != last {
                last = now;
                strikes = 0;
            } else if timeout.timed_out() {
                strikes += 1;
                if strikes >= self.stall_strikes {
                    stalled.store(1, Ordering::Release);
                    break;
                }
            }
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Pure resolution of the env toggles (separated for testability):
/// sequential override beats an explicit thread count beats the host
/// fallback. Unparseable values fall back rather than panic.
fn threads_from_env(sequential: Option<&str>, threads: Option<&str>, fallback: usize) -> usize {
    if sequential.is_some_and(|v| v == "1" || v.eq_ignore_ascii_case("true")) {
        return 1;
    }
    threads
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(fallback)
}

/// Render a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The process-wide default pool, resolved from the environment once.
/// The `shims/rayon` facade maps through this, so `CPC_THREADS` /
/// `CPC_POOL_SEQUENTIAL` govern every `into_par_iter()` in the
/// workspace.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::from_env)
}

/// Instrumented scope: a drop-in for `std::thread::scope` whose spawns
/// are counted in [`scoped_threads_spawned`], so harnesses can assert
/// that the parallel path actually ran.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        SCOPE_SPAWNS.fetch_add(1, Ordering::Relaxed);
        self.inner.spawn(f)
    }
}

static SCOPE_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Threads spawned through [`scope`] over the process lifetime.
pub fn scoped_threads_spawned() -> u64 {
    SCOPE_SPAWNS.load(Ordering::Relaxed)
}

/// Structured-concurrency entry point mirroring `std::thread::scope`.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(i: usize, x: &u64) -> u64 {
        (*x) * (*x) + i as u64
    }

    #[test]
    fn results_are_index_ordered_across_thread_counts() {
        let items: Vec<u64> = (0..97).collect();
        let reference = Pool::sequential().par_map_indexed(&items, square);
        for threads in [2, 3, 4, 8] {
            let got = Pool::new(threads).par_map_indexed(&items, square);
            assert_eq!(got, reference, "threads={threads} must not reorder");
        }
    }

    #[test]
    fn empty_and_single_item_maps_work() {
        let empty: Vec<u64> = Vec::new();
        assert!(Pool::new(4).par_map_indexed(&empty, square).is_empty());
        assert_eq!(Pool::new(4).par_map_indexed(&[7u64], square), vec![49]);
    }

    #[test]
    fn steal_storm_does_not_move_a_byte() {
        let chaos = SchedChaos::new(SchedFaultPlan {
            threads: 4,
            faults: vec![SchedFault::StealStorm { from_task: 1 }],
        });
        let items: Vec<u64> = (0..200).collect();
        let reference = Pool::sequential().par_map_indexed(&items, square);
        let stormy = Pool::new(4)
            .with_chaos(chaos)
            .par_map_indexed(&items, square);
        assert_eq!(stormy, reference);
    }

    #[test]
    fn injected_panic_is_contained_and_indexed() {
        quiet_injected_panics();
        let chaos = SchedChaos::new(SchedFaultPlan {
            threads: 2,
            faults: vec![SchedFault::TaskPanic { at_start: 1 }],
        });
        let pool = Pool::new(2).with_chaos(Arc::clone(&chaos));
        let items: Vec<u64> = (0..8).collect();
        let results = pool
            .try_par_map_indexed(&items, square)
            .expect("no pool error");
        let panicked: Vec<usize> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect();
        assert_eq!(panicked.len(), 1, "exactly one injected panic");
        assert_eq!(chaos.injected_panics(), 1);
        let err = results[panicked[0]].as_ref().unwrap_err();
        assert!(err.message.contains(INJECTED_PANIC));

        // The pool survives: the panic was contained at the task
        // boundary and the next map is clean (the fault is fire-once).
        let again = pool.try_par_map_indexed(&items, square).expect("reusable");
        assert!(again.iter().all(|r| r.is_ok()), "pool must not be poisoned");
        assert_eq!(pool.stats().panics_caught, 1);
    }

    #[test]
    fn organic_panics_are_contained_on_the_sequential_path_too() {
        quiet_injected_panics();
        let items: Vec<u64> = (0..4).collect();
        let results = Pool::sequential()
            .try_par_map_indexed(&items, |i, x| {
                assert!(i != 2, "{INJECTED_PANIC} (organic stand-in)");
                *x
            })
            .expect("no pool error");
        assert!(results[2].is_err());
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 3);
    }

    #[test]
    fn watchdog_convicts_a_pause_longer_than_its_budget() {
        let chaos = SchedChaos::new(SchedFaultPlan {
            threads: 2,
            // Worker 0's first yield point stalls for 300 ms against a
            // 5-tick x 10 ms budget: conviction, not a hang. (Worker 0
            // is the target because on a one-core host worker 1 may
            // never claim anything before the work is gone.)
            faults: vec![SchedFault::WorkerPause {
                worker: 0,
                at_point: 1,
                micros: 300_000,
            }],
        });
        let pool = Pool::new(2)
            .with_chaos(chaos)
            .with_stall_budget(Duration::from_millis(10), 5);
        let items: Vec<u64> = (0..2).collect();
        let err = pool
            .try_par_map_indexed(&items, square)
            .expect_err("pause outlives the stall budget");
        assert!(
            matches!(err, PoolError::Stalled { total: 2, .. }),
            "got {err:?}"
        );
        assert_eq!(pool.stats().stalls, 1);

        // A stalled verdict must not wedge the next call either.
        let ok = pool
            .with_stall_budget(STALL_TICK, STALL_STRIKES)
            .par_map_indexed(&items, square);
        assert_eq!(ok, vec![0, 2]);
    }

    #[test]
    fn env_resolution_is_sequential_beats_threads_beats_fallback() {
        assert_eq!(threads_from_env(Some("1"), Some("8"), 4), 1);
        assert_eq!(threads_from_env(Some("true"), None, 4), 1);
        assert_eq!(threads_from_env(Some("0"), Some("8"), 4), 8);
        assert_eq!(threads_from_env(None, Some("3"), 4), 3);
        assert_eq!(threads_from_env(None, Some("junk"), 4), 4);
        assert_eq!(threads_from_env(None, Some("0"), 4), 4);
        assert_eq!(threads_from_env(None, None, 4), 4);
    }

    #[test]
    fn scope_spawns_are_counted() {
        let before = scoped_threads_spawned();
        let total: u64 = scope(|s| {
            let hs: Vec<_> = (0..3u64).map(|i| s.spawn(move || i * i)).collect();
            hs.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        assert_eq!(total, 5);
        assert_eq!(scoped_threads_spawned() - before, 3);
    }
}
