//! Interleaving-fuzz fault plans for the executor.
//!
//! A [`SchedFaultPlan`] is a seeded, bounded description of an
//! adversarial schedule: steal storms that shred locality, timed
//! pauses at instrumented yield points, a worker panic mid-task,
//! thread-count changes mid-campaign, a lease expiring under a slow
//! worker. The plan *types* live here so the executor can interpret
//! them without depending on the cluster crate; the seeded *sampler*
//! (`SchedFaultSpace`) lives in `cpc-cluster::fuzz` next to the disk,
//! transport and service fault spaces, keyed by the same
//! `SplitMix64::for_message` discipline.
//!
//! Faults perturb only the *schedule*. The determinism oracles in
//! `cpc-charmm` then convict any output byte that moved: a correct
//! executor commits in task-index order, so no interleaving — however
//! adversarial — may change what is written.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Marker carried by every chaos-injected panic payload. The pool's
/// catch-unwind boundary and the [`quiet_injected_panics`] hook both
/// key on it; real (non-injected) panics never contain it.
pub const INJECTED_PANIC: &str = "cpc-pool chaos: injected worker panic";

/// Longest pause the executor will honor, whatever a plan asks for.
const PAUSE_CEIL: Duration = Duration::from_secs(1);

/// One adversarial scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedFault {
    /// From the `from_task`-th task start onward, thieves take one
    /// task at a time instead of half a victim's range, maximizing
    /// claim churn and cross-thread interleaving.
    StealStorm { from_task: usize },
    /// The `at_point`-th instrumented yield point that worker `worker`
    /// passes stalls for `micros` of real time, letting every other
    /// thread race past it.
    WorkerPause {
        worker: usize,
        at_point: u64,
        micros: u64,
    },
    /// The `at_start`-th task start (counted across the whole
    /// campaign, re-executions included) panics mid-task. Fires once.
    TaskPanic { at_start: usize },
    /// Driver-level: after `after_commits` committed cells the
    /// campaign driver swaps the pool for one with `threads` workers.
    ThreadCountChange {
        after_commits: usize,
        threads: usize,
    },
    /// Driver-level: the `at_lease`-th lease grant expires before its
    /// worker commits, and the stale token is presented anyway — the
    /// queue must reject it (the PR 6 lease oracle, now raced against
    /// a real slow worker).
    LeaseExpiryRace { at_lease: usize },
}

/// A sampled schedule: a worker count plus a handful of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchedFaultPlan {
    /// Worker threads the chaos run starts with.
    pub threads: usize,
    pub faults: Vec<SchedFault>,
}

impl SchedFaultPlan {
    /// A plan that perturbs nothing (the fault-free baseline).
    pub fn quiet(threads: usize) -> Self {
        Self {
            threads,
            faults: Vec::new(),
        }
    }

    /// Driver-level thread-count change, if the plan carries one.
    pub fn thread_change(&self) -> Option<(usize, usize)> {
        self.faults.iter().find_map(|f| match *f {
            SchedFault::ThreadCountChange {
                after_commits,
                threads,
            } => Some((after_commits, threads)),
            _ => None,
        })
    }

    /// Driver-level stale-lease injection point, if present.
    pub fn stale_lease_at(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            SchedFault::LeaseExpiryRace { at_lease } => Some(at_lease),
            _ => None,
        })
    }

    /// Number of `TaskPanic` faults (the reclaim oracle's quota).
    pub fn panic_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f, SchedFault::TaskPanic { .. }))
            .count()
    }
}

/// Shared chaos state threaded through every pool the driver creates
/// for one campaign, so global counters (task starts, yield points)
/// keep advancing across mid-campaign pool swaps.
#[derive(Debug)]
pub struct SchedChaos {
    plan: SchedFaultPlan,
    started: AtomicUsize,
    /// One fire-once latch per plan fault, index-aligned with
    /// `plan.faults`.
    fired: Vec<AtomicBool>,
    /// Per-worker yield-point counters (workers beyond the array share
    /// the last slot; samplers never exceed it).
    points: Vec<AtomicU64>,
    injected_panics: AtomicUsize,
    pauses_taken: AtomicUsize,
    storm_steals: AtomicUsize,
}

/// Upper bound on per-worker instrumentation slots.
const MAX_WORKERS: usize = 16;

impl SchedChaos {
    pub fn new(plan: SchedFaultPlan) -> Arc<Self> {
        let fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        Arc::new(Self {
            plan,
            started: AtomicUsize::new(0),
            fired,
            points: (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect(),
            injected_panics: AtomicUsize::new(0),
            pauses_taken: AtomicUsize::new(0),
            storm_steals: AtomicUsize::new(0),
        })
    }

    pub fn plan(&self) -> &SchedFaultPlan {
        &self.plan
    }

    /// Record one task start; returns true when this exact start is an
    /// armed `TaskPanic` (fires once, then re-execution sails through).
    pub fn on_task_start(&self) -> bool {
        let nth = self.started.fetch_add(1, Ordering::Relaxed) + 1;
        for (slot, fault) in self.fired.iter().zip(&self.plan.faults) {
            if let SchedFault::TaskPanic { at_start } = *fault {
                if at_start == nth && !slot.swap(true, Ordering::Relaxed) {
                    self.injected_panics.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        false
    }

    /// Record one instrumented yield point for `worker`; stalls the
    /// calling thread when the plan scheduled a pause here.
    pub fn at_yield_point(&self, worker: usize) {
        let slot = worker.min(self.points.len() - 1);
        let nth = self.points[slot].fetch_add(1, Ordering::Relaxed) + 1;
        for (latch, fault) in self.fired.iter().zip(&self.plan.faults) {
            let SchedFault::WorkerPause {
                worker: w,
                at_point,
                micros,
            } = *fault
            else {
                continue;
            };
            if w == worker && at_point == nth && !latch.swap(true, Ordering::Relaxed) {
                self.pauses_taken.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(micros).min(PAUSE_CEIL));
            }
        }
    }

    /// True while a steal storm is active: thieves must take one task
    /// at a time.
    pub fn steal_one(&self) -> bool {
        let started = self.started.load(Ordering::Relaxed);
        let storm =
            self.plan.faults.iter().any(
                |f| matches!(*f, SchedFault::StealStorm { from_task } if started >= from_task),
            );
        if storm {
            self.storm_steals.fetch_add(1, Ordering::Relaxed);
        }
        storm
    }

    /// Panics injected so far (each fires at most once).
    pub fn injected_panics(&self) -> usize {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Pauses actually taken so far.
    pub fn pauses_taken(&self) -> usize {
        self.pauses_taken.load(Ordering::Relaxed)
    }

    /// Steal decisions made under an active storm.
    pub fn storm_steals(&self) -> usize {
        self.storm_steals.load(Ordering::Relaxed)
    }

    /// Task starts observed (re-executions included).
    pub fn task_starts(&self) -> usize {
        self.started.load(Ordering::Relaxed)
    }
}

/// Install (once, process-wide) a panic hook that swallows the report
/// for chaos-*injected* panics and forwards every other panic to the
/// previously installed hook. Without this, every sampled `TaskPanic`
/// schedule sprays a spurious "thread panicked" report into the chaos
/// journal's stderr even though the panic is caught and the task
/// reclaimed.
pub fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_PANIC))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_panic_fires_exactly_once_at_its_start() {
        let chaos = SchedChaos::new(SchedFaultPlan {
            threads: 2,
            faults: vec![SchedFault::TaskPanic { at_start: 3 }],
        });
        let fired: Vec<bool> = (0..5).map(|_| chaos.on_task_start()).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(chaos.injected_panics(), 1);
        assert_eq!(chaos.task_starts(), 5);
    }

    #[test]
    fn storm_activates_at_its_task_threshold() {
        let chaos = SchedChaos::new(SchedFaultPlan {
            threads: 2,
            faults: vec![SchedFault::StealStorm { from_task: 2 }],
        });
        assert!(!chaos.steal_one(), "no starts yet: storm dormant");
        chaos.on_task_start();
        chaos.on_task_start();
        assert!(chaos.steal_one());
        assert_eq!(chaos.storm_steals(), 1);
    }

    #[test]
    fn pause_fires_once_for_the_right_worker_and_point() {
        let chaos = SchedChaos::new(SchedFaultPlan {
            threads: 2,
            faults: vec![SchedFault::WorkerPause {
                worker: 1,
                at_point: 2,
                micros: 1,
            }],
        });
        chaos.at_yield_point(0);
        chaos.at_yield_point(0);
        assert_eq!(chaos.pauses_taken(), 0, "wrong worker must not pause");
        chaos.at_yield_point(1);
        chaos.at_yield_point(1);
        assert_eq!(chaos.pauses_taken(), 1);
        chaos.at_yield_point(1);
        assert_eq!(chaos.pauses_taken(), 1, "pause is fire-once");
    }

    #[test]
    fn driver_level_accessors_find_their_faults() {
        let plan = SchedFaultPlan {
            threads: 4,
            faults: vec![
                SchedFault::ThreadCountChange {
                    after_commits: 3,
                    threads: 2,
                },
                SchedFault::LeaseExpiryRace { at_lease: 5 },
                SchedFault::TaskPanic { at_start: 1 },
            ],
        };
        assert_eq!(plan.thread_change(), Some((3, 2)));
        assert_eq!(plan.stale_lease_at(), Some(5));
        assert_eq!(plan.panic_count(), 1);
        assert_eq!(SchedFaultPlan::quiet(2).thread_change(), None);
    }
}
