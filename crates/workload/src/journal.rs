//! Append-only measurement journal: the on-disk manifest that makes
//! long campaigns resumable.
//!
//! Each completed cell is appended as one JSONL line prefixed with an
//! FNV-1a checksum of the JSON payload (`{crc:016x} {json}`). A
//! campaign killed mid-sweep leaves at worst one torn trailing line;
//! on resume the intact prefix is recovered, the torn tail is
//! discarded (and counted), and finished cells are skipped instead of
//! re-measured. Because every measurement on the virtual cluster is
//! deterministic, a killed-then-resumed campaign produces a manifest
//! byte-identical to an uninterrupted run's.

use cpc_vfs::{Fs, SharedFs, VfsFile};
use serde::{Deserialize, Serialize};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// FNV-1a over the serialized line payload (same function the snapshot
/// container uses; collisions are irrelevant here — the checksum only
/// needs to catch torn or bit-damaged lines).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of recovering a journal from disk.
#[derive(Debug)]
pub struct Recovery<T> {
    /// Entries from the intact prefix, in append order.
    pub entries: Vec<T>,
    /// Lines discarded because they were torn, checksum-damaged or
    /// unparsable (everything from the first bad line on is dropped —
    /// append order is meaningful, so nothing after a tear is trusted).
    pub dropped: usize,
    /// Entries discarded because an earlier entry in the intact prefix
    /// carried the same key (first-wins; only [`Journal::resume_keyed`]
    /// detects these — a crash between the journal append and the
    /// writer's own completion bookkeeping can legitimately record a
    /// cell twice).
    pub duplicates: usize,
}

impl<T> Recovery<T> {
    fn empty() -> Self {
        Recovery {
            entries: Vec::new(),
            dropped: 0,
            duplicates: 0,
        }
    }
}

/// An append-only, checksummed JSONL journal of completed cells.
pub struct Journal<T> {
    path: PathBuf,
    fs: SharedFs,
    file: Box<dyn VfsFile>,
    /// A previous append failed mid-line (short write, EIO, failed
    /// fsync): the file's tail is untrusted and — per the fsyncgate
    /// policy — must never be appended through. Every further append
    /// fails until the caller reopens via [`Journal::resume`], whose
    /// recovery truncates the damage.
    poisoned: bool,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T> std::fmt::Debug for Journal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl<T: Serialize + Deserialize> Journal<T> {
    /// Starts a fresh journal at `path`, truncating any previous one.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        Self::create_on(cpc_vfs::real_fs(), path)
    }

    /// [`Journal::create`] on an explicit filesystem.
    pub fn create_on(fs: SharedFs, path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs.create_dir_all(parent)?;
        }
        let file = fs.create(&path)?;
        // Make the journal's directory entry durable before acking
        // anything appended to it: a file that vanishes at power loss
        // takes every "durable" record with it.
        if let Some(parent) = path.parent() {
            fs.sync_dir(parent)?;
        }
        Ok(Journal {
            path,
            fs,
            file,
            poisoned: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Reads the intact prefix of the journal at `path` (missing file =
    /// empty journal), rewrites the file to exactly that prefix so a
    /// torn tail cannot linger mid-file, and reopens it for appending.
    pub fn resume(path: impl Into<PathBuf>) -> io::Result<(Self, Recovery<T>)> {
        Self::resume_on(cpc_vfs::real_fs(), path)
    }

    /// [`Journal::resume`] on an explicit filesystem.
    pub fn resume_on(fs: SharedFs, path: impl Into<PathBuf>) -> io::Result<(Self, Recovery<T>)> {
        let path = path.into();
        let recovery = Self::load_on(fs.as_ref(), &path)?;
        let journal = Self::publish_and_open(fs, path, &recovery.entries)?;
        Ok((journal, recovery))
    }

    /// [`Journal::resume`] with duplicate-cell elimination: entries in
    /// the intact prefix whose `key` repeats an earlier entry's are
    /// dropped (first-wins — the first append is the one whose commit
    /// completed) and counted in [`Recovery::duplicates`], and the file
    /// is rewritten without them. A writer killed between appending a
    /// cell and recording it as done re-appends the same cell on its
    /// next incarnation; without this, the duplicate would survive
    /// every subsequent resume.
    pub fn resume_keyed<K, F>(path: impl Into<PathBuf>, key: F) -> io::Result<(Self, Recovery<T>)>
    where
        K: std::hash::Hash + Eq,
        F: Fn(&T) -> K,
    {
        Self::resume_keyed_on(cpc_vfs::real_fs(), path, key)
    }

    /// [`Journal::resume_keyed`] on an explicit filesystem.
    pub fn resume_keyed_on<K, F>(
        fs: SharedFs,
        path: impl Into<PathBuf>,
        key: F,
    ) -> io::Result<(Self, Recovery<T>)>
    where
        K: std::hash::Hash + Eq,
        F: Fn(&T) -> K,
    {
        let path = path.into();
        let mut recovery = Self::load_on(fs.as_ref(), &path)?;
        let mut seen = std::collections::HashSet::new();
        let before = recovery.entries.len();
        recovery.entries.retain(|e| seen.insert(key(e)));
        recovery.duplicates = before - recovery.entries.len();
        let journal = Self::publish_and_open(fs, path, &recovery.entries)?;
        Ok((journal, recovery))
    }

    /// Atomically rewrites the journal to exactly `entries` and
    /// reopens it for appending. The old file — whose synced prefix is
    /// the only durable truth — stays in place until the rename
    /// commits, so no fault mid-rewrite can destroy an acknowledged
    /// record (the previous truncate-and-re-append rewrite could: a
    /// crash between the truncate and the last re-append lost the
    /// whole prefix). Publishing a fresh file also sheds any fsyncgate
    /// poison the previous incarnation's failed fsync left on the old
    /// one: appending through a poisoned file would bury a silent hole
    /// mid-journal.
    fn publish_and_open(fs: SharedFs, path: PathBuf, entries: &[T]) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            fs.create_dir_all(parent)?;
        }
        let mut bytes = Vec::new();
        for entry in entries {
            let json = serde_json::to_string(entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let line = format!("{:016x} {json}\n", fnv1a64(json.as_bytes()));
            bytes.extend_from_slice(line.as_bytes());
        }
        cpc_vfs::atomic_publish(fs.as_ref(), &path, &bytes)?;
        let file = fs.append(&path)?;
        Ok(Journal {
            path,
            fs,
            file,
            poisoned: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Reads the intact prefix of the journal at `path` without
    /// opening it for writing. A missing file is an empty journal.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Recovery<T>> {
        Self::load_on(&cpc_vfs::RealFs, path)
    }

    /// [`Journal::load`] on an explicit filesystem.
    pub fn load_on(fs: &dyn Fs, path: impl AsRef<Path>) -> io::Result<Recovery<T>> {
        let bytes = match fs.read(path.as_ref()) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovery::empty()),
            Err(e) => return Err(e),
        };
        // Split the raw bytes rather than decoding the whole file:
        // a single bit-damaged line can be invalid UTF-8, and that
        // must read as *that line's* damage (checksum discipline),
        // never as an unreadable journal.
        let mut raw: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        if raw.last().is_some_and(|l| l.is_empty()) {
            raw.pop();
        }
        let mut recovery = Recovery::empty();
        for (i, line_bytes) in raw.iter().enumerate() {
            let line_bytes = line_bytes.strip_suffix(b"\r").unwrap_or(line_bytes);
            let parsed = std::str::from_utf8(line_bytes).ok().and_then(|line| {
                let (crc, json) = line.split_once(' ')?;
                let stored = u64::from_str_radix(crc, 16).ok()?;
                if stored != fnv1a64(json.as_bytes()) {
                    return None;
                }
                serde_json::from_str::<T>(json).ok()
            });
            match parsed {
                Some(entry) => recovery.entries.push(entry),
                None => {
                    // First bad line: discard it and the rest.
                    recovery.dropped = raw.len() - i;
                    break;
                }
            }
        }
        Ok(recovery)
    }

    /// Appends one completed cell and flushes it to stable storage, so
    /// a kill immediately afterwards cannot lose it.
    ///
    /// On *any* write or fsync failure the journal poisons itself:
    /// the on-disk tail is in an unknown state (a short line, or a
    /// fsyncgate-dropped one), and appending past it would bury the
    /// damage mid-file where recovery truncation cannot reach it.
    /// Every subsequent append fails until the caller reopens through
    /// [`Journal::resume`], which truncates the torn tail.
    pub fn append(&mut self, entry: &T) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal poisoned by an earlier failed append; reopen to recover",
            ));
        }
        let json = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let result = writeln!(self.file, "{:016x} {json}", fnv1a64(json.as_bytes()))
            .and_then(|_| self.file.sync());
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    /// Whether an earlier append failed, leaving the tail untrusted.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The filesystem this journal writes through.
    pub fn fs(&self) -> &SharedFs {
        &self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::ExperimentPoint;
    use crate::runner::Measurement;

    fn fake_measurement(procs: usize) -> Measurement {
        Measurement {
            point: ExperimentPoint::focal(procs),
            steps: 2,
            classic_time: 1.5 * procs as f64,
            pme_time: 0.5,
            classic_pct: (90.0, 8.0, 2.0),
            pme_pct: (80.0, 15.0, 5.0),
            energy_pct: (88.0, 9.0, 3.0),
            throughput: Some((10.0, 8.0, 12.0)),
            final_total_energy: -123.25,
        }
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cpc-journal-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_entries_in_order() {
        let path = tmp_path("roundtrip");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        for p in [1usize, 2, 4] {
            j.append(&fake_measurement(p)).unwrap();
        }
        let rec: Recovery<Measurement> = Journal::load(&path).unwrap();
        assert_eq!(rec.dropped, 0);
        let procs: Vec<usize> = rec.entries.iter().map(|m| m.point.procs).collect();
        assert_eq!(procs, vec![1, 2, 4]);
        assert_eq!(rec.entries[0].final_total_energy, -123.25);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_resume_truncates_it() {
        let path = tmp_path("torn");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        j.append(&fake_measurement(1)).unwrap();
        j.append(&fake_measurement(2)).unwrap();
        drop(j);
        // Simulate a kill mid-append: a half-written third line.
        let full = std::fs::read_to_string(&path).unwrap();
        let torn = format!("{full}deadbeefdeadbeef {{\"point\":");
        std::fs::write(&path, &torn).unwrap();

        let (mut j, rec) = Journal::<Measurement>::resume(&path).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.dropped, 1);
        j.append(&fake_measurement(4)).unwrap();
        drop(j);

        let rec: Recovery<Measurement> = Journal::load(&path).unwrap();
        assert_eq!(rec.dropped, 0, "resume rewrote the torn tail away");
        let procs: Vec<usize> = rec.entries.iter().map(|m| m.point.procs).collect();
        assert_eq!(procs, vec![1, 2, 4]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_damaged_line_invalidates_itself_and_the_rest() {
        let path = tmp_path("bitflip");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        for p in [1usize, 2, 4] {
            j.append(&fake_measurement(p)).unwrap();
        }
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit in the second line.
        let second_line_start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        bytes[second_line_start + 30] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let rec: Recovery<Measurement> = Journal::load(&path).unwrap();
        assert_eq!(rec.entries.len(), 1, "only the line before the damage");
        assert_eq!(rec.dropped, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn valid_json_with_bad_checksum_is_truncated_like_any_torn_tail() {
        // The nasty torn-write case: the final record was damaged in a
        // way that still parses as JSON (here: an older, complete
        // record overwritten in place under a stale checksum). The
        // checksum must be verified BEFORE the parse is trusted — a
        // parseable-but-unverified tail is still a tail.
        let path = tmp_path("validjson-badcrc");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        j.append(&fake_measurement(1)).unwrap();
        j.append(&fake_measurement(2)).unwrap();
        drop(j);
        // Rewrite the second line's payload to different-but-valid JSON
        // while keeping the original (now wrong) checksum prefix.
        let full = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = full.lines().collect();
        let (crc, _json) = lines[1].split_once(' ').unwrap();
        let fake_json = serde_json::to_string(&fake_measurement(8)).unwrap();
        let doctored = format!("{crc} {fake_json}");
        assert_ne!(
            u64::from_str_radix(crc, 16).unwrap(),
            fnv1a64(fake_json.as_bytes()),
            "the doctored payload must not re-verify"
        );
        lines[1] = &doctored;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let (mut j, rec) = Journal::<Measurement>::resume(&path).unwrap();
        assert_eq!(rec.entries.len(), 1, "only the verified prefix survives");
        assert_eq!(
            rec.dropped, 1,
            "the parseable-but-unverified tail is dropped"
        );
        assert_eq!(rec.entries[0].point.procs, 1);
        j.append(&fake_measurement(4)).unwrap();
        drop(j);
        let rec: Recovery<Measurement> = Journal::load(&path).unwrap();
        assert_eq!(rec.dropped, 0, "resume rewrote the bad record away");
        let procs: Vec<usize> = rec.entries.iter().map(|m| m.point.procs).collect();
        assert_eq!(procs, vec![1, 4]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keyed_resume_drops_duplicates_first_wins_and_rewrites() {
        // A writer killed between "append cell" and "mark cell done"
        // re-appends the same cell on restart: the journal then holds
        // the cell twice. resume_keyed keeps the FIRST copy (the one
        // whose commit completed), counts the rest, and rewrites the
        // file clean so the dup cannot survive another resume.
        let path = tmp_path("dedup");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        let mut second = fake_measurement(2);
        second.final_total_energy = -1.0; // first-wins marker
        j.append(&fake_measurement(1)).unwrap();
        j.append(&second).unwrap();
        j.append(&fake_measurement(4)).unwrap();
        // The re-appended duplicate of p=2 (different payload: the
        // retried measurement happens to carry other responses).
        j.append(&fake_measurement(2)).unwrap();
        drop(j);

        let (j, rec) = Journal::<Measurement>::resume_keyed(&path, |m| m.point).unwrap();
        drop(j);
        assert_eq!(rec.duplicates, 1);
        assert_eq!(rec.dropped, 0);
        let procs: Vec<usize> = rec.entries.iter().map(|m| m.point.procs).collect();
        assert_eq!(procs, vec![1, 2, 4], "append order of first copies kept");
        assert_eq!(
            rec.entries[1].final_total_energy, -1.0,
            "first-wins: the committed copy survives, not the retry"
        );
        // The rewrite scrubbed the duplicate from disk.
        let rec2: Recovery<Measurement> = Journal::load(&path).unwrap();
        assert_eq!(rec2.entries.len(), 3);
        let (_, rec3) = Journal::<Measurement>::resume_keyed(&path, |m| m.point).unwrap();
        assert_eq!(rec3.duplicates, 0, "second keyed resume finds none");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keyed_resume_still_truncates_torn_tails() {
        let path = tmp_path("dedup-torn");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        j.append(&fake_measurement(1)).unwrap();
        j.append(&fake_measurement(1)).unwrap();
        drop(j);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{full}deadbeef {{\"point\":")).unwrap();
        let (_, rec) = Journal::<Measurement>::resume_keyed(&path, |m| m.point).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.duplicates, 1);
        assert_eq!(rec.dropped, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let rec: Recovery<Measurement> = Journal::load(tmp_path("missing")).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(rec.dropped, 0);
    }

    #[test]
    fn keyed_resume_of_an_empty_journal_is_clean() {
        // Both flavors of empty: the file does not exist, and the file
        // exists with zero bytes (created, never appended).
        let path = tmp_path("dedup-missing");
        let _ = std::fs::remove_file(&path);
        let (j, rec) = Journal::<Measurement>::resume_keyed(&path, |m| m.point).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!((rec.dropped, rec.duplicates), (0, 0));
        drop(j); // create() left an empty file behind
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        let (_, rec) = Journal::<Measurement>::resume_keyed(&path, |m| m.point).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!((rec.dropped, rec.duplicates), (0, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keyed_resume_of_an_all_duplicate_journal_keeps_exactly_the_first() {
        let path = tmp_path("dedup-all");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        let mut first = fake_measurement(2);
        first.final_total_energy = -1.0; // first-wins marker
        j.append(&first).unwrap();
        for _ in 0..3 {
            j.append(&fake_measurement(2)).unwrap();
        }
        drop(j);
        let (_, rec) = Journal::<Measurement>::resume_keyed(&path, |m| m.point).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.duplicates, 3);
        assert_eq!(rec.entries[0].final_total_energy, -1.0);
        // The rewrite scrubbed them: a second resume finds one entry.
        let rec2: Recovery<Measurement> = Journal::load(&path).unwrap();
        assert_eq!(rec2.entries.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_duplicate_inside_the_unverified_tail_counts_as_dropped_not_duplicate() {
        // The record that would have been a duplicate sits AFTER a torn
        // line: it is untrusted tail, so it must be discarded by the
        // checksum pass (dropped), never consulted by the dedup pass
        // (duplicates) — double-counting it would misstate both.
        let path = tmp_path("dedup-tail");
        let mut j: Journal<Measurement> = Journal::create(&path).unwrap();
        j.append(&fake_measurement(1)).unwrap();
        j.append(&fake_measurement(2)).unwrap();
        drop(j);
        let full = std::fs::read_to_string(&path).unwrap();
        // A torn line, then a perfectly valid duplicate of p=2 after it.
        let dup_json = serde_json::to_string(&fake_measurement(2)).unwrap();
        let dup_line = format!("{:016x} {dup_json}", {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in dup_json.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
        std::fs::write(&path, format!("{full}deadbeef {{\"torn\":\n{dup_line}\n")).unwrap();

        let (_, rec) = Journal::<Measurement>::resume_keyed(&path, |m| m.point).unwrap();
        assert_eq!(rec.entries.len(), 2, "the intact prefix only");
        assert_eq!(rec.dropped, 2, "the torn line and everything after it");
        assert_eq!(rec.duplicates, 0, "tail records never reach the dedup pass");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_failed_append_poisons_the_journal_until_reopen() {
        use cpc_vfs::{DiskFault, DiskFaultPlan, SimFs};
        use std::path::Path;
        // The fsync of the second append fails (fsyncgate). The journal
        // must refuse the third append outright instead of appending
        // past a tail the kernel already dropped. A fault-free probe
        // finds the op index of the second append's fsync (the last op
        // it issues) so the plan stays valid if write batching changes.
        let second_sync_at = {
            let fs = std::sync::Arc::new(SimFs::new());
            let mut j: Journal<Measurement> =
                Journal::create_on(fs.clone(), Path::new("out/j.jsonl")).unwrap();
            j.append(&fake_measurement(1)).unwrap();
            j.append(&fake_measurement(2)).unwrap();
            fs.op_count()
        };
        let plan = DiskFaultPlan::none().with(DiskFault::EioFsync { at: second_sync_at });
        let fs = std::sync::Arc::new(SimFs::with_plan(&plan));
        let path = Path::new("out/j.jsonl");
        let mut j: Journal<Measurement> = Journal::create_on(fs.clone(), path).unwrap();
        j.append(&fake_measurement(1)).unwrap();
        assert!(j.append(&fake_measurement(2)).is_err(), "fsync failed");
        assert!(j.is_poisoned());
        let e = j.append(&fake_measurement(4)).unwrap_err();
        assert!(e.to_string().contains("poisoned"), "got: {e}");
        drop(j);
        // Reopen: recovery sees the intact first record; the dropped
        // second line vanished with the page cache, so there is not
        // even a tail to truncate.
        let (mut j, rec) = Journal::<Measurement>::resume_on(fs.clone(), path).unwrap();
        assert_eq!(rec.entries.len(), 1);
        j.append(&fake_measurement(4)).unwrap();
        let rec: Recovery<Measurement> = Journal::load_on(fs.as_ref(), path).unwrap();
        let procs: Vec<usize> = rec.entries.iter().map(|m| m.point.procs).collect();
        assert_eq!(procs, vec![1, 4]);
    }

    #[test]
    fn every_crash_point_of_create_and_append_recovers_to_an_intact_prefix() {
        use cpc_vfs::{explore_crashes, SimFs};
        use std::sync::Arc;
        // The journal's crash-consistency contract, exhaustively: cut
        // power at every filesystem op of create + 3 appends; recovery
        // must always yield a clean prefix of the appended records, and
        // must never lose a record the append acked before the cut...
        // which explore_crashes cannot see from outside, so the oracle
        // here is prefix-validity; the acked-then-lost check runs in
        // the service-level disk chaos where acks are observable.
        let work = |fs: &SimFs| -> std::io::Result<()> {
            let fs: Arc<SimFs> = Arc::new(fs.clone());
            let mut j: Journal<Measurement> = Journal::create_on(fs, "out/j.jsonl")?;
            for p in [1usize, 2, 4] {
                j.append(&fake_measurement(p))?;
            }
            Ok(())
        };
        let check = |fs: &SimFs| -> Result<(), String> {
            let rec: Recovery<Measurement> =
                Journal::load_on(fs, "out/j.jsonl").map_err(|e| e.to_string())?;
            let procs: Vec<usize> = rec.entries.iter().map(|m| m.point.procs).collect();
            let want: Vec<usize> = vec![1, 2, 4][..procs.len()].to_vec();
            if procs == want {
                Ok(())
            } else {
                Err(format!("recovered {procs:?}, not a prefix of [1, 2, 4]"))
            }
        };
        let report = explore_crashes(work, check).unwrap();
        assert!(report.ops >= 9, "create + dir sync + 3 checksummed appends");
    }
}
