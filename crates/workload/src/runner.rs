//! Experiment runner: executes one factor-space point on the virtual
//! cluster and extracts the paper's response variables.

use crate::factors::ExperimentPoint;
use cpc_charmm::{run_parallel_md, MdConfig, RunReport};
use cpc_cluster::Phase;
use cpc_md::builder::{myoglobin_system_with, MyoglobinOptions};
use cpc_md::ewald::beta_for_cutoff;
use cpc_md::pme::PmeParams;
use cpc_md::{EnergyModel, System};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Number of MD steps per measurement (the paper uses a reduced run of
/// 10 steps, Section 2.4).
pub const PAPER_STEPS: usize = 10;

/// The paper's PME parameters for myoglobin: 80 x 36 x 48 mesh, order
/// 4, beta chosen so erfc(beta * 10 A) ~ 1e-6.
pub fn paper_pme_params() -> PmeParams {
    PmeParams::paper(beta_for_cutoff(10.0, 1e-6))
}

/// The shared myoglobin-class system (built and relaxed once per
/// process; construction is deterministic).
pub fn myoglobin_shared() -> &'static System {
    static SYSTEM: OnceLock<System> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        myoglobin_system_with(MyoglobinOptions {
            minimize_steps: 120,
            temperature: 300.0,
            seed: 2002,
        })
    })
}

/// Response variables extracted from one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// The factor-space point measured.
    pub point: ExperimentPoint,
    /// MD steps measured.
    pub steps: usize,
    /// Classic-calculation wall time, seconds.
    pub classic_time: f64,
    /// PME-calculation wall time, seconds.
    pub pme_time: f64,
    /// Classic-phase percentages (comp, comm, sync).
    pub classic_pct: (f64, f64, f64),
    /// PME-phase percentages (comp, comm, sync).
    pub pme_pct: (f64, f64, f64),
    /// Total-energy-calculation percentages (comp, comm, sync).
    pub energy_pct: (f64, f64, f64),
    /// Communication speed per node, MB/s: (avg, min, max), when any
    /// payload was transferred.
    pub throughput: Option<(f64, f64, f64)>,
    /// Total potential + kinetic energy at the last step (physics
    /// sanity).
    pub final_total_energy: f64,
}

impl Measurement {
    /// Total energy-calculation time (the stacked bar of Fig. 3/5/8/9).
    pub fn energy_time(&self) -> f64 {
        self.classic_time + self.pme_time
    }
}

/// Runs one experiment point on `system` for `steps` MD steps with the
/// PME model (the paper's "more recent versions of CHARMM").
pub fn measure(system: &System, point: ExperimentPoint, steps: usize) -> Measurement {
    measure_with_model(system, point, steps, EnergyModel::Pme(paper_pme_params()))
}

/// Runs one experiment point with an explicit energy model.
pub fn measure_with_model(
    system: &System,
    point: ExperimentPoint,
    steps: usize,
    model: EnergyModel,
) -> Measurement {
    let cfg = MdConfig {
        steps,
        ..MdConfig::paper_protocol(model, point.middleware, point.cluster())
    };
    let report = run_parallel_md(system, &cfg);
    summarize(point, &report)
}

/// Extracts the response variables from a raw report.
pub fn summarize(point: ExperimentPoint, report: &RunReport) -> Measurement {
    let classic = report.phase_breakdown(Phase::Classic);
    let pme = report.phase_breakdown(Phase::Pme);
    let energy = report.energy_breakdown();
    Measurement {
        point,
        steps: report.steps,
        classic_time: report.classic_time(),
        pme_time: report.pme_time(),
        classic_pct: RunReport::percentages(&classic),
        pme_pct: RunReport::percentages(&pme),
        energy_pct: RunReport::percentages(&energy),
        throughput: report.throughput_summary().map(|t| (t.avg, t.min, t.max)),
        final_total_energy: report
            .step_energies
            .last()
            .map(|e| e.total())
            .unwrap_or(0.0),
    }
}

/// Convenience: a small, fast test system (used by unit tests and the
/// quick modes of the figure binaries).
pub fn quick_system() -> System {
    let mut sys = cpc_md::builder::water_box(4, 3.1);
    cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 30);
    sys.assign_velocities(200.0, 7);
    sys
}

/// PME parameters suitable for [`quick_system`] (its box is cubic with
/// edge >= 24.2 A; a 16^3 mesh keeps unit tests fast while exercising
/// every code path).
pub fn quick_pme_params() -> PmeParams {
    PmeParams {
        grid: cpc_fft::Dims3::new(16, 16, 16),
        order: 4,
        beta: beta_for_cutoff(10.0, 1e-6),
    }
}

/// Runs a point against the quick system (for tests and demos).
pub fn measure_quick(point: ExperimentPoint, steps: usize) -> Measurement {
    static SYSTEM: OnceLock<System> = OnceLock::new();
    let sys = SYSTEM.get_or_init(quick_system);
    measure_with_model(sys, point, steps, EnergyModel::Pme(quick_pme_params()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::{ExperimentPoint, NodeConfig};
    use cpc_cluster::NetworkKind;

    #[test]
    fn paper_pme_beta_matches_cutoff() {
        let p = paper_pme_params();
        assert_eq!((p.grid.nx, p.grid.ny, p.grid.nz), (80, 36, 48));
        let tail = cpc_md::special::erfc(p.beta * 10.0);
        assert!((tail - 1e-6).abs() < 1e-7, "erfc tail {tail}");
    }

    #[test]
    fn quick_measurement_has_sane_responses() {
        let m = measure_quick(ExperimentPoint::focal(2), 2);
        assert!(m.classic_time > 0.0);
        assert!(m.pme_time > 0.0);
        let (comp, comm, sync) = m.energy_pct;
        assert!((comp + comm + sync - 100.0).abs() < 1e-6);
        assert!(comp > 0.0);
        assert!(m.throughput.is_some());
        assert!(m.final_total_energy.is_finite());
    }

    #[test]
    fn single_processor_has_no_overheads() {
        let m = measure_quick(ExperimentPoint::focal(1), 2);
        let (comp, comm, sync) = m.energy_pct;
        assert!(comp > 99.9, "p=1 must be pure computation: {comp}");
        assert!(comm < 0.1 && sync < 0.1);
        assert!(m.throughput.is_none(), "no messages at p=1");
    }

    #[test]
    fn myrinet_beats_tcp_at_scale_on_quick_system() {
        let tcp = measure_quick(ExperimentPoint::focal(8), 2);
        let myri = measure_quick(
            ExperimentPoint {
                network: NetworkKind::MyrinetGm,
                ..ExperimentPoint::focal(8)
            },
            2,
        );
        assert!(
            myri.energy_time() < tcp.energy_time(),
            "myrinet {} vs tcp {}",
            myri.energy_time(),
            tcp.energy_time()
        );
    }

    #[test]
    fn dual_node_point_runs() {
        let m = measure_quick(
            ExperimentPoint {
                node: NodeConfig::Dual,
                ..ExperimentPoint::focal(4)
            },
            1,
        );
        assert!(m.energy_time() > 0.0);
    }
}
