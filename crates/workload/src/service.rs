//! The crash-safe campaign job service: [`WorkQueue`], [`ResultCache`]
//! and results [`Journal`] composed so that `kill -9` of the service
//! is invisible.
//!
//! A campaign is a list of tasks (cells). Each incarnation of the
//! service re-derives the full task list and enqueues it (idempotent),
//! pre-seeds the queue from the recovered results-journal prefix
//! (those cells are done — never re-dispatched), then drains the
//! queue: lease → probe the content-addressed cache → simulate on a
//! miss → commit. The commit order is the correctness core:
//!
//! 1. append the result to the results journal (the durable artifact),
//! 2. store it in the cache,
//! 3. mark the lease complete in the queue.
//!
//! A kill between any two steps loses nothing and double-counts
//! nothing: after (1) the result is durable, so the next incarnation
//! pre-seeds the cell from the journal and the torn queue state is
//! reconciled by `mark_done`; before (1) the cell simply re-runs —
//! the only re-execution any kill can cause is the cell that was in
//! flight. Because dispatch is deterministic (first-pending in
//! enqueue order) and every simulation is deterministic, the resumed
//! journal is **byte-identical** to an uninterrupted run's.
//!
//! [`run_service_chaos`] drives whole campaigns through sampled
//! [`ServiceFaultPlan`]s — kills at every commit point, torn queue and
//! journal writes, stale leases, cache bit flips — building the
//! [`ServiceLedger`] that the `cpc-charmm` service oracles check.

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::journal::Journal;
use crate::queue::{CompleteError, LeasedTask, QueueRecovery, WorkQueue};
use cpc_charmm::chaos::{check_service_ledger, ServiceLedger, ServiceViolation};
use cpc_cluster::{ServiceFault, ServiceFaultPlan};
use cpc_pool::Pool;
use cpc_vfs::{real_fs, Fs, SharedFs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Where in the three-step commit a scheduled kill lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Before the result journal append: the execution is lost
    /// entirely (a worker dying mid-cell).
    BeforeResult,
    /// After the journal append, before cache store and queue
    /// completion: the worst torn-commit window.
    MidCommit,
    /// After the full commit: the benign boundary.
    AfterCommit,
}

/// Configuration of one service incarnation.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory holding all durable state: queue shards
    /// (`queue-NN.jsonl`), results journal (`journal.jsonl`), cache
    /// (`cache/`).
    pub dir: PathBuf,
    /// Queue journal shards.
    pub shards: usize,
    /// Logical workers (leases rotate across worker ids). Under
    /// [`JobService::step`] execution is sequential; under
    /// [`JobService::pooled_batch`] the leased cells of a batch
    /// execute concurrently on a `cpc-pool` executor, each worker
    /// holding a real lease whose expiry races its execution.
    pub workers: usize,
    /// Protocol string folded into every cache key (step count,
    /// energy model — whatever the task type leaves implicit).
    pub protocol: String,
    /// Retry budget per task before dead-lettering.
    pub max_attempts: usize,
    /// Kill this incarnation at the n-th fresh execution (1-based),
    /// at the given [`KillPoint`].
    pub kill: Option<(usize, KillPoint)>,
    /// Inject a stale-lease episode at the n-th lease grant (1-based)
    /// of this incarnation: the lease is expired and re-granted, the
    /// original is presented on completion and must be rejected.
    pub stale_lease_at: Option<usize>,
    /// Cache directory override. `None` keeps the cache inside the
    /// service directory; pointing several campaigns at one shared
    /// directory lets identical cells flow between them (sound: the
    /// address binds task, protocol and code version).
    pub cache: Option<PathBuf>,
}

impl ServiceConfig {
    /// Defaults: 4 shards, 1 worker, a generous retry budget.
    pub fn new(dir: impl Into<PathBuf>, protocol: impl Into<String>) -> Self {
        ServiceConfig {
            dir: dir.into(),
            shards: 4,
            workers: 1,
            protocol: protocol.into(),
            max_attempts: 8,
            kill: None,
            stale_lease_at: None,
            cache: None,
        }
    }

    /// The results journal path inside the service directory.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// The effective cache directory: the override when set, otherwise
    /// `cache/` inside the service directory.
    pub fn cache_dir(&self) -> PathBuf {
        self.cache.clone().unwrap_or_else(|| self.dir.join("cache"))
    }
}

/// What one incarnation did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceOutcome {
    /// Cells in the campaign.
    pub total: usize,
    /// Cells durable (journal) when this incarnation stopped.
    pub completed: usize,
    /// Fresh simulations this incarnation ran.
    pub executed: usize,
    /// Executions whose result never became durable (killed before
    /// the journal append).
    pub lost_executions: usize,
    /// Cells pre-seeded from the recovered journal prefix.
    pub journal_preseeded: usize,
    /// Cells served from the content-addressed cache.
    pub cache_hits: usize,
    /// Leases reclaimed from the previous (dead) incarnation.
    pub reclaimed: usize,
    /// Cells dead-lettered.
    pub abandoned: usize,
    /// Duplicate journal records scrubbed at resume.
    pub duplicates_dropped: usize,
    /// Torn/damaged lines dropped (queue shards + results journal).
    pub dropped_lines: usize,
    /// Stale-lease completions presented to the queue.
    pub stale_presented: usize,
    /// Stale-lease completions the queue rejected.
    pub stale_rejected: usize,
    /// Pooled executions that panicked mid-task (each one's cell is
    /// reclaimed via the lease path and re-executed).
    pub panicked: usize,
    /// Leases reclaimed through expiry while recovering panicked
    /// pooled executions.
    pub panic_reclaimed: usize,
    /// Cache counters for this incarnation.
    pub cache_stats: CacheStats,
    /// Whether the scheduled kill fired.
    pub killed: bool,
    /// Whether the queue drained (all cells done or dead-lettered).
    pub drained: bool,
}

/// What one [`JobService::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One cell advanced: a fresh execution, a cache hit, or a heal
    /// of a journal-destroyed result.
    Progress,
    /// The configured kill fired mid-step; the incarnation must end
    /// now (the process would be dead).
    Killed,
    /// Nothing left to do: every cell is durable or dead-lettered.
    Drained,
}

/// Incremental driving state between [`JobService::prepare`] and the
/// final [`JobService::outcome`].
struct RunState {
    keys: Vec<String>,
    outcome: ServiceOutcome,
    worker: usize,
    leases_granted: usize,
}

/// A leased, cache-missed cell awaiting execution and commit. The
/// worker holding it is a real lease holder: the lease can expire,
/// be reclaimed and re-granted while the execution is in flight.
struct LeasedCell {
    /// Index into the campaign's task slice.
    index: usize,
    /// The canonical task key.
    key: String,
    /// The content address of the (future) result.
    ckey: CacheKey,
    /// The lease the commit will present.
    current: LeasedTask,
    /// An injected stale lease to present — and have bounced — at
    /// commit.
    stale: Option<LeasedTask>,
}

/// What [`JobService::acquire_inner`] found at the next actionable
/// cell.
enum Acquired {
    /// A heal or cache hit committed in place.
    Progress,
    /// Nothing actionable remains.
    Drained,
    /// A queue-done cell whose durable result was destroyed and is
    /// absent from the cache: it must be re-executed, then committed
    /// through [`JobService::commit_heal_inner`] (no lease — the
    /// queue already considers it done).
    HealMiss {
        index: usize,
        key: String,
        ckey: CacheKey,
    },
    /// A leased cell for the caller to execute and commit through
    /// [`JobService::commit_leased_inner`].
    Leased(LeasedCell),
}

/// One cell of a pooled batch, collected in task-walk order. Journal
/// writes are deferred to the commit phase so the artifact's byte
/// layout is identical to the serial walk's regardless of which
/// worker finishes first.
enum BatchItem<R> {
    /// Heal served from the cache; commit journals it.
    HealHit { key: String, result: R },
    /// Heal needing re-execution (queue-done, cache-missed).
    HealExec {
        index: usize,
        key: String,
        ckey: CacheKey,
    },
    /// Leased cell served from the cache; commit journals and
    /// completes it (the injected stale token, if any, is dropped —
    /// exactly as in the serial cache-hit path).
    CacheHit { cell: LeasedCell, result: R },
    /// Leased cell needing execution on the pool.
    Exec { cell: LeasedCell },
    /// A cell the queue dead-lettered mid-batch (its journal line is
    /// lost; the artifact oracle surfaces that honestly).
    Skip,
}

/// What one [`JobService::pooled_batch`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Batch-level outcome: [`StepOutcome::Drained`] when nothing was
    /// collected, [`StepOutcome::Killed`] when the configured kill
    /// fired mid-commit, [`StepOutcome::Progress`] otherwise.
    pub step: StepOutcome,
    /// Cells this batch made durable (journal lines appended).
    pub advanced: usize,
    /// Virtual cost of every fresh execution committed by this batch,
    /// in commit order — the stream a driver feeds its RTT estimator,
    /// matching what the serial `exec` closure would have reported.
    pub exec_costs: Vec<f64>,
}

/// One incarnation of the campaign job service over results of type
/// `R`. Construction *is* recovery: opening the service on a
/// directory with prior state reclaims dead leases, resumes the
/// results journal (scrubbing duplicates), and opens the cache.
pub struct JobService<R> {
    cfg: ServiceConfig,
    fs: SharedFs,
    queue: WorkQueue,
    cache: ResultCache,
    journal: Journal<R>,
    recovered: HashMap<String, R>,
    queue_recovery: QueueRecovery,
    journal_duplicates: usize,
    journal_dropped: usize,
    run: Option<RunState>,
}

impl<R: Serialize + Deserialize + Clone> JobService<R> {
    /// Opens (or recovers) the service in `cfg.dir` on the real
    /// filesystem. `key_of` maps a journaled result back to its task
    /// key — the same canonical JSON [`task_key`] produces for the
    /// task.
    pub fn open(cfg: ServiceConfig, key_of: impl Fn(&R) -> String) -> io::Result<Self> {
        Self::open_on(real_fs(), cfg, key_of)
    }

    /// Opens (or recovers) the service on an injected filesystem — the
    /// hook through which the disk-fault campaigns drive every durable
    /// write the service makes through ENOSPC, EIO, and power loss.
    pub fn open_on(
        fs: SharedFs,
        cfg: ServiceConfig,
        key_of: impl Fn(&R) -> String,
    ) -> io::Result<Self> {
        let (queue, queue_recovery) = WorkQueue::recover_on(fs.clone(), &cfg.dir, cfg.shards)?;
        let queue = queue.with_max_attempts(cfg.max_attempts);
        let cache = ResultCache::open_on(fs.clone(), cfg.cache_dir())?;
        let (journal, rec) =
            Journal::<R>::resume_keyed_on(fs.clone(), cfg.journal_path(), &key_of)?;
        let recovered = rec
            .entries
            .into_iter()
            .map(|r| (key_of(&r), r))
            .collect::<HashMap<_, _>>();
        Ok(JobService {
            cfg,
            fs,
            queue,
            cache,
            journal,
            recovered,
            queue_recovery,
            journal_duplicates: rec.duplicates,
            journal_dropped: rec.dropped,
            run: None,
        })
    }

    /// Stages the campaign without draining it: enqueues every task
    /// (idempotent) and pre-seeds done cells from the recovered
    /// journal. After this, [`Self::step`] advances one cell at a time
    /// — the hook an external scheduler (the gateway's deficit
    /// round-robin) uses to interleave several campaigns fairly.
    pub fn prepare<T: Serialize>(&mut self, tasks: &[T]) -> io::Result<()> {
        let mut outcome = ServiceOutcome {
            total: tasks.len(),
            reclaimed: self.queue_recovery.reclaimed,
            duplicates_dropped: self.journal_duplicates,
            dropped_lines: self.queue_recovery.dropped_lines + self.journal_dropped,
            ..ServiceOutcome::default()
        };
        let mut keys = Vec::with_capacity(tasks.len());
        for task in tasks {
            keys.push(task_key(task)?);
        }
        // Every incarnation re-derives the full task list; enqueue is
        // idempotent, so this only adds cells the queue has never seen.
        for key in &keys {
            self.queue.enqueue(key)?;
        }
        // Pre-seed: cells with a recovered durable result are done,
        // whatever the (possibly torn) queue state says.
        for key in &keys {
            if self.recovered.contains_key(key) {
                self.queue.mark_done(key)?;
                outcome.journal_preseeded += 1;
            }
        }
        self.run = Some(RunState {
            keys,
            outcome,
            worker: 0,
            leases_granted: 0,
        });
        Ok(())
    }

    /// Advances the campaign by one cell and returns what happened.
    /// `tasks` must be the same slice [`Self::prepare`] staged (the
    /// key list indexes into it). The walk is in the service's own
    /// task order, not the queue's recovered internal order: the byte
    /// layout of the results artifact must survive any scrambling a
    /// torn shard write could inflict on the queue. Healing
    /// (queue-done cells whose durable result a torn journal write
    /// destroyed) interleaves with fresh dispatch, because either may
    /// need to rebuild any position of the artifact — a separate
    /// healing pass would write healed cells ahead of
    /// resurrected-pending earlier ones and scramble the byte layout.
    pub fn step<T: Serialize>(
        &mut self,
        tasks: &[T],
        exec: &mut dyn FnMut(&T) -> (R, f64),
    ) -> io::Result<StepOutcome> {
        let mut state = self.run.take().expect("prepare() before step()");
        let res = (|| match self.acquire_inner(tasks, &mut state)? {
            Acquired::Progress => Ok(StepOutcome::Progress),
            Acquired::Drained => Ok(StepOutcome::Drained),
            Acquired::HealMiss { index, key, ckey } => {
                let (result, _) = exec(&tasks[index]);
                self.commit_heal_inner(key, ckey, result, &mut state)
            }
            Acquired::Leased(cell) => {
                let (result, elapsed) = exec(&tasks[cell.index]);
                self.commit_leased_inner(cell, result, elapsed, &mut state)
            }
        })();
        self.run = Some(state);
        res
    }

    /// The acquire half of a step: walk the campaign in task order to
    /// the next actionable cell. Heals and cache hits commit in place
    /// (they never need fresh execution); a pending cell is leased —
    /// with the injected stale-lease episode applied at grant time —
    /// and returned for the caller to execute and
    /// [`commit_leased_inner`](Self::commit_leased_inner).
    //
    // Indexed loop: iterating `state.keys` would hold a borrow of
    // `state` across the `&mut state.outcome` updates below.
    #[allow(clippy::needless_range_loop)]
    fn acquire_inner<T: Serialize>(
        &mut self,
        tasks: &[T],
        state: &mut RunState,
    ) -> io::Result<Acquired> {
        for i in 0..state.keys.len() {
            let key = state.keys[i].clone();
            if self.recovered.contains_key(&key) {
                continue;
            }
            self.queue.reclaim_expired()?;
            let task = &tasks[i];
            let ckey = CacheKey::of(task, &self.cfg.protocol)?;
            let outcome = &mut state.outcome;

            if self.queue.is_done(&key) {
                // Heal: re-derive the destroyed result — cache
                // first, simulate on a miss — in place. The hit
                // commits here; the miss needs execution, which
                // the caller owns.
                if let Some(result) = self.cache.get::<R>(&ckey) {
                    outcome.cache_hits += 1;
                    self.journal.append(&result)?;
                    self.recovered.insert(key, result);
                    return Ok(Acquired::Progress);
                }
                return Ok(Acquired::HealMiss {
                    index: i,
                    key,
                    ckey,
                });
            }
            if !self.queue.is_pending(&key) {
                continue; // dead-lettered
            }

            let (current, stale) = self.grant_lease(&key, state)?;
            let cell = LeasedCell {
                index: i,
                key,
                ckey,
                current,
                stale,
            };

            // Cache probe: a hit is journaled (keeping the
            // artifact complete and ordered) but never
            // re-simulated.
            if let Some(result) = self.cache.get::<R>(&cell.ckey) {
                self.journal.append(&result)?;
                let _ = self
                    .queue
                    .complete(&cell.current.key, cell.current.lease, 0.0);
                self.recovered.insert(cell.key.clone(), result);
                state.outcome.cache_hits += 1;
                return Ok(Acquired::Progress);
            }
            return Ok(Acquired::Leased(cell));
        }
        Ok(Acquired::Drained)
    }

    /// Grants the lease for `key`, rotating the worker label and
    /// applying the injected stale-lease episode when this is the
    /// configured grant: the lease is expired and re-granted so the
    /// original token can be presented — and must bounce — at commit.
    fn grant_lease(
        &mut self,
        key: &str,
        state: &mut RunState,
    ) -> io::Result<(LeasedTask, Option<LeasedTask>)> {
        let lease = self
            .queue
            .lease_key(key, state.worker)?
            .expect("a pending task leases");
        state.worker = (state.worker + 1) % self.cfg.workers.max(1);
        state.leases_granted += 1;

        if self.cfg.stale_lease_at == Some(state.leases_granted) {
            let dt = (lease.expires - self.queue.now()).max(0.0) + 1e-9;
            self.queue.advance_clock(dt);
            self.queue.reclaim_expired()?;
            let fresh = self
                .queue
                .lease_key(&lease.key, state.worker)?
                .expect("the reclaimed cell re-leases");
            Ok((fresh, Some(lease)))
        } else {
            Ok((lease, None))
        }
    }

    /// The commit half of a step: take an executed cell through the
    /// three-step commit (journal → cache → queue) with the configured
    /// kill points applied. The result of a `BeforeResult` kill is
    /// discarded — the execution happened and is lost with the
    /// process, exactly as in the serial path.
    fn commit_leased_inner(
        &mut self,
        cell: LeasedCell,
        result: R,
        elapsed: f64,
        state: &mut RunState,
    ) -> io::Result<StepOutcome> {
        let outcome = &mut state.outcome;
        // Scheduled kill before the result becomes durable: the
        // execution happened and is lost with the process.
        let next_execution = outcome.executed + 1;
        if self.cfg.kill == Some((next_execution, KillPoint::BeforeResult)) {
            outcome.executed += 1;
            outcome.lost_executions += 1;
            outcome.killed = true;
            return Ok(StepOutcome::Killed);
        }
        outcome.executed += 1;

        // Commit step 1: the durable artifact.
        self.journal.append(&result)?;
        if self.cfg.kill == Some((state.outcome.executed, KillPoint::MidCommit)) {
            state.outcome.killed = true;
            return Ok(StepOutcome::Killed);
        }
        // Commit step 2: the content-addressed cache.
        self.cache.put(&cell.ckey, &result)?;
        // Commit step 3: the queue. A stale lease presented here must
        // bounce; the fresh lease then completes the cell.
        if let Some(stale_lease) = &cell.stale {
            state.outcome.stale_presented += 1;
            if self
                .queue
                .complete(&stale_lease.key, stale_lease.lease, elapsed)
                == Err(CompleteError::StaleLease)
            {
                state.outcome.stale_rejected += 1;
            }
        }
        let _ = self
            .queue
            .complete(&cell.current.key, cell.current.lease, elapsed);
        self.recovered.insert(cell.key, result);
        if self.cfg.kill == Some((state.outcome.executed, KillPoint::AfterCommit)) {
            state.outcome.killed = true;
            return Ok(StepOutcome::Killed);
        }
        Ok(StepOutcome::Progress)
    }

    /// Commits a re-executed heal (queue-done cell whose durable
    /// result was destroyed): journal, cache backfill, recovered map.
    /// No lease and no kill points — exactly the serial heal path.
    fn commit_heal_inner(
        &mut self,
        key: String,
        ckey: CacheKey,
        result: R,
        state: &mut RunState,
    ) -> io::Result<StepOutcome> {
        state.outcome.executed += 1;
        self.journal.append(&result)?;
        if !self.cache.contains(&ckey) {
            self.cache.put(&ckey, &result)?;
        }
        self.recovered.insert(key, result);
        Ok(StepOutcome::Progress)
    }

    /// Collects up to `width` execution-costing cells (plus any heals
    /// and cache hits encountered on the way) in task-walk order,
    /// leasing each pending cell. Nothing is journaled here: the
    /// commit phase writes in this collection order, so the artifact
    /// bytes are independent of execution interleaving.
    #[allow(clippy::needless_range_loop)]
    fn collect_batch<T: Serialize>(
        &mut self,
        tasks: &[T],
        state: &mut RunState,
        width: usize,
    ) -> io::Result<Vec<BatchItem<R>>> {
        let mut items: Vec<BatchItem<R>> = Vec::new();
        let mut execs = 0usize;
        for i in 0..state.keys.len() {
            if execs >= width {
                break;
            }
            let key = state.keys[i].clone();
            if self.recovered.contains_key(&key) {
                continue;
            }
            self.queue.reclaim_expired()?;
            let ckey = CacheKey::of(&tasks[i], &self.cfg.protocol)?;

            if self.queue.is_done(&key) {
                match self.cache.get::<R>(&ckey) {
                    Some(result) => items.push(BatchItem::HealHit { key, result }),
                    None => {
                        items.push(BatchItem::HealExec {
                            index: i,
                            key,
                            ckey,
                        });
                        execs += 1;
                    }
                }
                continue;
            }
            if !self.queue.is_pending(&key) {
                continue; // dead-lettered or leased by an earlier batch slot
            }

            let (current, stale) = self.grant_lease(&key, state)?;
            let injected = stale.is_some();
            let cell = LeasedCell {
                index: i,
                key,
                ckey,
                current,
                stale,
            };
            match self.cache.get::<R>(&cell.ckey) {
                Some(result) => items.push(BatchItem::CacheHit { cell, result }),
                None => {
                    items.push(BatchItem::Exec { cell });
                    execs += 1;
                }
            }
            // The injected stale-lease episode advanced the virtual
            // clock past every outstanding lease: earlier cells of
            // this batch were reclaimed and must be re-leased before
            // their commits present dead tokens.
            if injected {
                self.refresh_leases(&mut items, state)?;
            }
        }
        Ok(items)
    }

    /// Re-leases every uncommitted leased cell of a batch after the
    /// virtual clock advanced past their expiries (stale-lease
    /// injection, or the lease-path recovery of a panicked worker).
    /// A cell the queue dead-lettered in the meantime degrades to
    /// [`BatchItem::Skip`]; a cell whose current token is still live
    /// is left alone.
    fn refresh_leases(
        &mut self,
        items: &mut [BatchItem<R>],
        state: &mut RunState,
    ) -> io::Result<()> {
        for item in items.iter_mut() {
            let cell = match item {
                BatchItem::Exec { cell } | BatchItem::CacheHit { cell, .. } => cell,
                _ => continue,
            };
            if self.recovered.contains_key(&cell.key) || self.queue.is_done(&cell.key) {
                continue; // already committed
            }
            if self.queue.is_pending(&cell.key) {
                // Refresh grants don't rotate the worker label or
                // count toward `leases_granted`: the stale-lease
                // injection targets real grants, not repairs.
                match self.queue.lease_key(&cell.key, state.worker)? {
                    Some(fresh) => cell.current = fresh,
                    None => *item = BatchItem::Skip,
                }
            } else if cell.current.expires <= self.queue.now() {
                // Expired but not reclaimed back to pending: the
                // retry budget dead-lettered it.
                *item = BatchItem::Skip;
            }
        }
        Ok(())
    }

    /// Advances the campaign by one *batch*: up to `width`
    /// execution-costing cells collected in task-walk order, executed
    /// concurrently on `pool` — each a real lease holder — and
    /// committed in collection order. The artifact bytes are
    /// therefore identical to the serial [`Self::step`] walk whatever
    /// the thread count or interleaving. A worker panic is contained
    /// by the pool; its cell's lease is expired, reclaimed through
    /// the queue's expiry path and re-granted, and the cell
    /// re-executes — the pool itself is never poisoned.
    pub fn pooled_batch<T>(
        &mut self,
        tasks: &[T],
        pool: &Pool,
        width: usize,
        exec: &(dyn Fn(&T) -> (R, f64) + Sync),
    ) -> io::Result<BatchReport>
    where
        T: Serialize + Sync,
        R: Send,
    {
        let mut state = self.run.take().expect("prepare() before pooled_batch()");
        let res = self.pooled_batch_inner(tasks, pool, width.max(1), exec, &mut state);
        self.run = Some(state);
        res
    }

    fn pooled_batch_inner<T>(
        &mut self,
        tasks: &[T],
        pool: &Pool,
        width: usize,
        exec: &(dyn Fn(&T) -> (R, f64) + Sync),
        state: &mut RunState,
    ) -> io::Result<BatchReport>
    where
        T: Serialize + Sync,
        R: Send,
    {
        let mut items = self.collect_batch(tasks, state, width)?;
        if items.is_empty() {
            return Ok(BatchReport {
                step: StepOutcome::Drained,
                advanced: 0,
                exec_costs: Vec::new(),
            });
        }

        // Execution phase: run every exec-needing item on the pool,
        // re-executing panicked cells (their leases reclaimed via the
        // expiry path) until the batch is clean or the retry budget
        // is spent.
        let task_index_of = |item: &BatchItem<R>| match item {
            BatchItem::HealExec { index, .. } => Some(*index),
            BatchItem::Exec { cell } => Some(cell.index),
            _ => None,
        };
        let mut results: Vec<Option<(R, f64)>> = items.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = items
            .iter()
            .enumerate()
            .filter_map(|(p, item)| task_index_of(item).map(|_| p))
            .collect();
        let mut attempts = 0usize;
        while !pending.is_empty() {
            let jobs: Vec<usize> = pending
                .iter()
                .map(|&p| task_index_of(&items[p]).expect("pending items cost an execution"))
                .collect();
            let outcomes = pool
                .try_par_map_indexed(&jobs, |_, &ti| exec(&tasks[ti]))
                .map_err(|e| io::Error::other(format!("pool: {e}")))?;
            let mut panicked: Vec<usize> = Vec::new();
            for (slot, outcome) in outcomes.into_iter().enumerate() {
                let p = pending[slot];
                match outcome {
                    Ok(rv) => results[p] = Some(rv),
                    Err(_) => {
                        state.outcome.panicked += 1;
                        panicked.push(p);
                    }
                }
            }
            if panicked.is_empty() {
                break;
            }
            attempts += 1;
            if attempts > self.cfg.max_attempts {
                break; // their cells stay unexecuted; commits skip them
            }
            // Lease-path recovery: the panicked workers' leases are
            // still outstanding. Advance the virtual clock past every
            // batch lease, reclaim them through the ordinary expiry
            // path, and re-lease the uncommitted cells.
            let max_expiry = items
                .iter()
                .filter_map(|item| match item {
                    BatchItem::Exec { cell } | BatchItem::CacheHit { cell, .. } => {
                        Some(cell.current.expires)
                    }
                    _ => None,
                })
                .fold(f64::NEG_INFINITY, f64::max);
            if max_expiry > f64::NEG_INFINITY {
                let dt = (max_expiry - self.queue.now()).max(0.0) + 1e-9;
                self.queue.advance_clock(dt);
                let (reclaimed, _) = self.queue.reclaim_expired()?;
                state.outcome.panic_reclaimed += reclaimed;
                self.refresh_leases(&mut items, state)?;
            }
            pending = panicked
                .into_iter()
                .filter(|&p| task_index_of(&items[p]).is_some())
                .collect();
        }

        // Commit phase: walk order, byte-identical to serial.
        let mut advanced = 0usize;
        let mut exec_costs = Vec::new();
        let mut step = StepOutcome::Progress;
        for (p, item) in items.into_iter().enumerate() {
            match item {
                BatchItem::HealHit { key, result } => {
                    state.outcome.cache_hits += 1;
                    self.journal.append(&result)?;
                    self.recovered.insert(key, result);
                    advanced += 1;
                }
                BatchItem::HealExec { key, ckey, .. } => {
                    let Some((result, elapsed)) = results[p].take() else {
                        continue;
                    };
                    self.commit_heal_inner(key, ckey, result, state)?;
                    exec_costs.push(elapsed);
                    advanced += 1;
                }
                BatchItem::CacheHit { cell, result } => {
                    state.outcome.cache_hits += 1;
                    self.journal.append(&result)?;
                    let _ = self
                        .queue
                        .complete(&cell.current.key, cell.current.lease, 0.0);
                    self.recovered.insert(cell.key, result);
                    advanced += 1;
                }
                BatchItem::Exec { cell } => {
                    let Some((result, elapsed)) = results[p].take() else {
                        continue;
                    };
                    let got = self.commit_leased_inner(cell, result, elapsed, state)?;
                    if got == StepOutcome::Killed {
                        // The process is dead: uncommitted batch
                        // results die with it. A `BeforeResult` kill
                        // wrote no journal line, so it advanced
                        // nothing.
                        if !matches!(self.cfg.kill, Some((_, KillPoint::BeforeResult))) {
                            exec_costs.push(elapsed);
                            advanced += 1;
                        }
                        step = StepOutcome::Killed;
                        break;
                    }
                    exec_costs.push(elapsed);
                    advanced += 1;
                }
                BatchItem::Skip => {}
            }
        }
        Ok(BatchReport {
            step,
            advanced,
            exec_costs,
        })
    }

    /// Runs the campaign on a `cpc-pool` executor: [`Self::prepare`]
    /// then [`Self::pooled_batch`] at the pool's width until the
    /// queue drains or the configured kill fires. Produces an
    /// artifact byte-identical to [`Self::run`] at any thread count.
    pub fn run_pooled<T>(
        &mut self,
        tasks: &[T],
        pool: &Pool,
        exec: impl Fn(&T) -> (R, f64) + Sync,
    ) -> io::Result<ServiceOutcome>
    where
        T: Serialize + Sync,
        R: Send,
    {
        self.prepare(tasks)?;
        while self.pooled_batch(tasks, pool, pool.threads(), &exec)?.step == StepOutcome::Progress {
        }
        Ok(self.outcome())
    }

    /// A snapshot of this incarnation's accounting: live counters plus
    /// the completed/abandoned/drained state re-derived from the queue.
    /// Call after the step loop ends for the final outcome, or at any
    /// point between steps for progress reporting. Panics unless
    /// [`Self::prepare`] has run.
    pub fn outcome(&self) -> ServiceOutcome {
        let state = self.run.as_ref().expect("prepare() before outcome()");
        let mut outcome = state.outcome.clone();
        outcome.completed = state
            .keys
            .iter()
            .filter(|k| self.recovered.contains_key(*k))
            .count();
        outcome.abandoned = self.queue.abandoned_count();
        outcome.cache_stats = self.cache.stats();
        outcome.drained = self.queue.drained();
        outcome
    }

    /// Runs the campaign: [`Self::prepare`] then [`Self::step`] until
    /// the queue drains or the configured kill fires (check
    /// [`ServiceOutcome::killed`]). `exec` simulates one cell,
    /// returning the result and its virtual cost in seconds.
    pub fn run<T: Serialize>(
        &mut self,
        tasks: &[T],
        mut exec: impl FnMut(&T) -> (R, f64),
    ) -> io::Result<ServiceOutcome> {
        self.prepare(tasks)?;
        while let StepOutcome::Progress = self.step(tasks, &mut exec)? {}
        Ok(self.outcome())
    }

    /// The recovered + newly-completed results, by task key.
    pub fn results(&self) -> &HashMap<String, R> {
        &self.recovered
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The filesystem this service runs on.
    pub fn fs(&self) -> &SharedFs {
        &self.fs
    }
}

/// The canonical task key: the task's serialized JSON. Deterministic
/// because the serde shim's object representation is insertion-ordered.
pub fn task_key<T: Serialize>(task: &T) -> io::Result<String> {
    serde_json::to_string(task)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// FNV-1a digest of a file's bytes: the artifact fingerprint the
/// byte-identity oracle compares. `None` when the file is missing or
/// unreadable — an unreadable artifact must never compare
/// byte-identical to anything (the old `0` sentinel let two *failed*
/// reads pass the oracle silently).
pub fn artifact_digest(path: impl AsRef<Path>) -> Option<u64> {
    artifact_digest_on(&cpc_vfs::RealFs, path)
}

/// [`artifact_digest`] on an injected filesystem, so the disk-fault
/// campaigns can fingerprint artifacts living inside a [`SimFs`] image.
pub fn artifact_digest_on(fs: &dyn Fs, path: impl AsRef<Path>) -> Option<u64> {
    let bytes = fs.read(path.as_ref()).ok()?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Some(h)
}

/// Everything a service chaos schedule produced: the aggregated
/// ledger and the oracle verdicts over it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceChaosReport {
    /// Cross-incarnation accounting.
    pub ledger: ServiceLedger,
    /// Oracle violations (empty = the schedule passed).
    pub violations: Vec<ServiceViolation>,
}

impl ServiceChaosReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Truncates `path` to `keep_frac` of its bytes (a torn write) and
/// returns how many complete lines were destroyed.
fn tear_file(path: &Path, keep_frac: f64) -> usize {
    let Ok(bytes) = std::fs::read(path) else {
        return 0;
    };
    let lines_before = bytes.iter().filter(|&&b| b == b'\n').count();
    let keep = ((bytes.len() as f64) * keep_frac.clamp(0.0, 1.0)) as usize;
    let kept = &bytes[..keep.min(bytes.len())];
    let lines_after = kept.iter().filter(|&&b| b == b'\n').count();
    let _ = std::fs::write(path, kept);
    lines_before - lines_after
}

/// Runs one campaign twice — an uninterrupted reference in
/// `dir/reference` and a faulted run in `dir/chaos` driven through
/// `plan` — and checks the service oracles over the result.
///
/// Kills end an incarnation (the [`JobService`] is dropped exactly as
/// a `SIGKILL` would leave it: every durable write is already synced);
/// storage faults damage the on-disk state between incarnations;
/// stale-lease faults ride into the next incarnation's config. A
/// final fault-free incarnation drains the campaign.
pub fn run_service_chaos<T, R>(
    dir: impl Into<PathBuf>,
    tasks: &[T],
    protocol: &str,
    plan: &ServiceFaultPlan,
    key_of: impl Fn(&R) -> String + Copy,
    mut exec: impl FnMut(&T) -> (R, f64),
) -> io::Result<ServiceChaosReport>
where
    T: Serialize,
    R: Serialize + Deserialize + Clone,
{
    let dir = dir.into();
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: one uninterrupted incarnation.
    let ref_cfg = ServiceConfig::new(dir.join("reference"), protocol);
    let ref_journal = ref_cfg.journal_path();
    let mut reference = JobService::<R>::open(ref_cfg, key_of)?;
    let ref_outcome = reference.run(tasks, &mut exec)?;
    drop(reference);
    debug_assert!(ref_outcome.drained);
    let reference_digest = artifact_digest(&ref_journal);

    // Chaos: incarnations punctuated by the plan's faults.
    let chaos_dir = dir.join("chaos");
    let base_cfg = ServiceConfig::new(&chaos_dir, protocol);
    let journal_path = base_cfg.journal_path();
    let mut ledger = ServiceLedger {
        total_cells: tasks.len(),
        reference_digest,
        ..ServiceLedger::default()
    };
    let mut pending_stale: Option<usize> = None;

    let run_incarnation = |kill: Option<(usize, KillPoint)>,
                           stale: Option<usize>,
                           ledger: &mut ServiceLedger,
                           exec: &mut dyn FnMut(&T) -> (R, f64)|
     -> io::Result<ServiceOutcome> {
        let cfg = ServiceConfig {
            kill,
            stale_lease_at: stale,
            ..base_cfg.clone()
        };
        let mut service = JobService::<R>::open(cfg, key_of)?;
        let outcome = service.run(tasks, exec)?;
        ledger.incarnations += 1;
        ledger.executed += outcome.executed;
        ledger.lost_executions += outcome.lost_executions;
        ledger.journal_preseeded += outcome.journal_preseeded;
        ledger.cache_hits += outcome.cache_hits;
        ledger.cache_corruption_caught += outcome.cache_stats.corrupt;
        ledger.reclaimed_leases += outcome.reclaimed;
        ledger.dropped_lines += outcome.dropped_lines;
        ledger.duplicate_results += outcome.duplicates_dropped;
        ledger.stale_presented += outcome.stale_presented;
        ledger.stale_rejected += outcome.stale_rejected;
        ledger.kills += outcome.killed as usize;
        Ok(outcome)
    };

    for fault in &plan.faults {
        match *fault {
            ServiceFault::WorkerKill { cells } => {
                run_incarnation(
                    Some((cells, KillPoint::BeforeResult)),
                    pending_stale.take(),
                    &mut ledger,
                    &mut exec,
                )?;
            }
            ServiceFault::OrchestratorKillMidCommit { cells } => {
                run_incarnation(
                    Some((cells, KillPoint::MidCommit)),
                    pending_stale.take(),
                    &mut ledger,
                    &mut exec,
                )?;
            }
            ServiceFault::OrchestratorKillAfterCommit { cells } => {
                run_incarnation(
                    Some((cells, KillPoint::AfterCommit)),
                    pending_stale.take(),
                    &mut ledger,
                    &mut exec,
                )?;
            }
            ServiceFault::StaleLease { at_lease } => {
                pending_stale = Some(at_lease);
            }
            ServiceFault::TornQueueWrite { shard, keep_frac } => {
                let shard = shard % base_cfg.shards.max(1);
                let path = chaos_dir.join(format!("queue-{shard:02}.jsonl"));
                tear_file(&path, keep_frac);
            }
            ServiceFault::TornResultWrite { keep_frac } => {
                ledger.destroyed_results += tear_file(&journal_path, keep_frac);
            }
            ServiceFault::CacheBitFlip { entry, byte, bit } => {
                let cache = ResultCache::open(base_cfg.cache_dir())?;
                let entries = cache.entry_paths();
                if !entries.is_empty() {
                    let path = &entries[entry % entries.len()];
                    if let Ok(mut bytes) = std::fs::read(path) {
                        if !bytes.is_empty() {
                            let at = byte % bytes.len();
                            bytes[at] ^= 1 << (bit % 8);
                            let _ = std::fs::write(path, &bytes);
                        }
                    }
                }
            }
        }
    }

    // Final incarnation: drain to completion.
    let last = run_incarnation(None, pending_stale.take(), &mut ledger, &mut exec)?;
    ledger.completed = last.completed;
    ledger.abandoned = last.abandoned;
    ledger.artifact_digest = artifact_digest(&journal_path);

    let violations = check_service_ledger(&ledger);
    Ok(ServiceChaosReport { ledger, violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::ServiceFaultSpace;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cpc-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// A cheap deterministic "simulation": task ids 0..n producing
    /// `[id, id²]` vectors at 0.25 virtual seconds per cell.
    fn tasks(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    fn exec(t: &u64) -> (Vec<f64>, f64) {
        (vec![*t as f64, (*t * *t) as f64], 0.25)
    }

    // Must be exactly `Fn(&R)` with `R = Vec<f64>` to match the
    // service's key extractor; a slice would not unify.
    #[allow(clippy::ptr_arg)]
    fn key_of(r: &Vec<f64>) -> String {
        serde_json::to_string(&(r[0] as u64)).unwrap()
    }

    #[test]
    fn uninterrupted_run_drains_and_executes_each_cell_once() {
        let dir = tmp_dir("clean");
        let mut svc = JobService::<Vec<f64>>::open(ServiceConfig::new(&dir, "p"), key_of).unwrap();
        let out = svc.run(&tasks(8), exec).unwrap();
        assert!(out.drained && !out.killed);
        assert_eq!((out.total, out.completed, out.executed), (8, 8, 8));
        assert_eq!(out.cache_hits, 0);
        // A second service over the same directory re-runs nothing.
        drop(svc);
        let mut svc = JobService::<Vec<f64>>::open(ServiceConfig::new(&dir, "p"), key_of).unwrap();
        let again = svc.run(&tasks(8), exec).unwrap();
        assert_eq!(again.executed, 0, "all pre-seeded from the journal");
        assert_eq!(again.journal_preseeded, 8);
        assert_eq!(again.completed, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_resume_is_invisible_at_every_commit_point() {
        // Reference artifact from an uninterrupted run.
        let ref_dir = tmp_dir("kill-ref");
        let ref_cfg = ServiceConfig::new(&ref_dir, "p");
        let ref_journal = ref_cfg.journal_path();
        let mut svc = JobService::<Vec<f64>>::open(ref_cfg, key_of).unwrap();
        svc.run(&tasks(6), exec).unwrap();
        drop(svc);
        let want = artifact_digest(&ref_journal);
        assert!(want.is_some(), "the reference artifact is readable");

        for (tag, point) in [
            ("before", KillPoint::BeforeResult),
            ("mid", KillPoint::MidCommit),
            ("after", KillPoint::AfterCommit),
        ] {
            let dir = tmp_dir(&format!("kill-{tag}"));
            let cfg = ServiceConfig {
                kill: Some((3, point)),
                ..ServiceConfig::new(&dir, "p")
            };
            let journal = cfg.journal_path();
            let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).unwrap();
            let killed = svc.run(&tasks(6), exec).unwrap();
            assert!(killed.killed, "{tag}: the kill fires");
            drop(svc); // SIGKILL: every durable write is already synced.

            let mut svc =
                JobService::<Vec<f64>>::open(ServiceConfig::new(&dir, "p"), key_of).unwrap();
            let resumed = svc.run(&tasks(6), exec).unwrap();
            assert!(resumed.drained, "{tag}: resume drains");
            assert_eq!(resumed.completed, 6, "{tag}: no lost cell");
            // Only the in-flight cell may re-execute, and only when
            // its result never became durable (BeforeResult).
            let licensed = 6 + killed.lost_executions;
            assert!(
                killed.executed + resumed.executed <= licensed,
                "{tag}: {} + {} executions exceed {licensed}",
                killed.executed,
                resumed.executed,
            );
            assert_eq!(
                artifact_digest(&journal),
                want,
                "{tag}: artifact must be byte-identical after kill-resume"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    #[test]
    fn cache_serves_cells_across_campaigns_without_resimulation() {
        let dir = tmp_dir("xcache");
        // First campaign fills the cache.
        let mut svc = JobService::<Vec<f64>>::open(ServiceConfig::new(&dir, "p"), key_of).unwrap();
        svc.run(&tasks(5), exec).unwrap();
        drop(svc);
        // Second campaign in a fresh directory, same cache dir: wipe
        // queue + journal but keep the cache to model a new campaign
        // requesting identical cells.
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
            if entry.path().is_file() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        let mut svc = JobService::<Vec<f64>>::open(ServiceConfig::new(&dir, "p"), key_of).unwrap();
        let out = svc.run(&tasks(5), exec).unwrap();
        assert_eq!(out.executed, 0, "identical cells come from the cache");
        assert_eq!(out.cache_hits, 5);
        assert_eq!(out.completed, 5);
        // A different protocol re-keys everything: full re-simulation.
        drop(svc);
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
            if entry.path().is_file() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        let mut svc = JobService::<Vec<f64>>::open(ServiceConfig::new(&dir, "q"), key_of).unwrap();
        let out = svc.run(&tasks(5), exec).unwrap();
        assert_eq!(out.executed, 5, "protocol is part of the address");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lease_injection_is_rejected_and_accounted() {
        let dir = tmp_dir("stale");
        let cfg = ServiceConfig {
            stale_lease_at: Some(2),
            ..ServiceConfig::new(&dir, "p")
        };
        let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).unwrap();
        let out = svc.run(&tasks(4), exec).unwrap();
        assert!(out.drained);
        assert_eq!(out.completed, 4);
        assert_eq!((out.stale_presented, out.stale_rejected), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_digest_is_none_for_unreadable_and_some_for_empty() {
        // Regression: the old signature digested an unreadable file as
        // 0, so two missing artifacts compared byte-identical and the
        // oracle passed on a run that produced nothing.
        let dir = tmp_dir("digest");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(artifact_digest(dir.join("missing.jsonl")), None);
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, b"").unwrap();
        let got = artifact_digest(&empty);
        assert!(got.is_some(), "an empty-but-readable artifact digests");
        assert_ne!(
            got,
            artifact_digest(dir.join("missing.jsonl")),
            "missing and empty must not collide"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stepped_drive_matches_run_byte_for_byte() {
        // prepare() + step() under an external driver must reproduce
        // run() exactly: same artifact bytes, same accounting. This is
        // the contract the gateway's round-robin scheduler relies on.
        let ref_dir = tmp_dir("step-ref");
        let ref_cfg = ServiceConfig::new(&ref_dir, "p");
        let ref_journal = ref_cfg.journal_path();
        let mut svc = JobService::<Vec<f64>>::open(ref_cfg, key_of).unwrap();
        let want_outcome = svc.run(&tasks(7), exec).unwrap();
        drop(svc);
        let want = artifact_digest(&ref_journal);
        assert!(want.is_some());

        let dir = tmp_dir("step-drv");
        let cfg = ServiceConfig::new(&dir, "p");
        let journal = cfg.journal_path();
        let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).unwrap();
        let campaign = tasks(7);
        svc.prepare(&campaign).unwrap();
        let mut steps = 0usize;
        let exec_fn = exec;
        loop {
            // outcome() is callable between steps without disturbing
            // the drive.
            let _ = svc.outcome();
            match svc.step(&campaign, &mut |t: &u64| exec_fn(t)).unwrap() {
                StepOutcome::Progress => steps += 1,
                StepOutcome::Killed => panic!("no kill configured"),
                StepOutcome::Drained => break,
            }
        }
        let got_outcome = svc.outcome();
        assert_eq!(steps, 7, "one step per cell");
        assert!(got_outcome.drained);
        assert_eq!(got_outcome.completed, want_outcome.completed);
        assert_eq!(got_outcome.executed, want_outcome.executed);
        assert_eq!(artifact_digest(&journal), want, "byte-identical artifact");
        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pooled_run_matches_serial_artifact_at_every_thread_count() {
        let ref_dir = tmp_dir("pool-ref");
        let ref_cfg = ServiceConfig::new(&ref_dir, "p");
        let ref_journal = ref_cfg.journal_path();
        let mut svc = JobService::<Vec<f64>>::open(ref_cfg, key_of).unwrap();
        svc.run(&tasks(9), exec).unwrap();
        drop(svc);
        let want = artifact_digest(&ref_journal);
        assert!(want.is_some());

        for threads in [1usize, 2, 4, 8] {
            let dir = tmp_dir(&format!("pool-{threads}"));
            let cfg = ServiceConfig::new(&dir, "p");
            let journal = cfg.journal_path();
            let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).unwrap();
            let pool = Pool::new(threads);
            let out = svc.run_pooled(&tasks(9), &pool, exec).unwrap();
            assert!(out.drained, "threads={threads}");
            assert_eq!(out.completed, 9);
            assert_eq!(out.executed, 9);
            assert_eq!(
                artifact_digest(&journal),
                want,
                "threads={threads}: pooled artifact must be byte-identical to serial"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    #[test]
    fn pooled_stale_lease_injection_is_rejected_and_accounted() {
        let dir = tmp_dir("pool-stale");
        let cfg = ServiceConfig {
            stale_lease_at: Some(2),
            workers: 4,
            ..ServiceConfig::new(&dir, "p")
        };
        let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).unwrap();
        let pool = Pool::new(4);
        let out = svc.run_pooled(&tasks(6), &pool, exec).unwrap();
        assert!(out.drained);
        assert_eq!(out.completed, 6);
        assert_eq!((out.stale_presented, out.stale_rejected), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_service_schedules_uphold_both_oracles() {
        let space = ServiceFaultSpace::new(6, 4);
        for index in 0..10 {
            let plan = space.sample(11, index);
            let dir = tmp_dir(&format!("chaos-{index}"));
            let report = run_service_chaos(&dir, &tasks(6), "p", &plan, key_of, exec).unwrap();
            assert!(
                report.passed(),
                "schedule {index} ({plan:?}) violated: {:?}\nledger: {:?}",
                report.violations,
                report.ledger
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
