//! Factor-effect analysis after Jain, *The Art of Computer Systems
//! Performance Analysis* — the methodology the paper's experimental
//! design cites (reference \[11\]): a 2^3 factorial design over the platform
//! factors with sign-table effect estimation and allocation of
//! variation.
//!
//! The paper gathered the full factorial "to determine the factors that
//! have a significant effect on the response variables and quantify
//! their effect"; this module performs that quantification.

use crate::factors::{ExperimentPoint, NodeConfig};
use crate::figures::Lab;
use cpc_cluster::NetworkKind;
use cpc_mpi::Middleware;
use serde::{Deserialize, Serialize};

/// The 2^3 design: each factor at its "commodity" (-1) and "premium"
/// (+1) level.
///
/// * A — networking: TCP/IP on Ethernet (-1) vs Myrinet (+1)
/// * B — middleware: CMPI (-1) vs MPI (+1)
/// * C — node configuration: dual (-1) vs uni (+1)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactorialAnalysis {
    /// Processor count the design was evaluated at.
    pub procs: usize,
    /// Mean response (the `q0` term), in the response's units.
    pub mean: f64,
    /// Main effect of networking (A).
    pub effect_network: f64,
    /// Main effect of middleware (B).
    pub effect_middleware: f64,
    /// Main effect of node configuration (C).
    pub effect_nodes: f64,
    /// Two-way interactions (AB, AC, BC) and the three-way term (ABC).
    pub interactions: [f64; 4],
    /// Fraction of total variation explained by each term, in the
    /// order [A, B, C, AB, AC, BC, ABC]; sums to 1 (no replication
    /// error in a deterministic simulator).
    pub variation: [f64; 7],
    /// The eight responses in standard (sign-table) order.
    pub responses: [f64; 8],
}

/// Runs the 2^3 design at `procs` processors using the total
/// energy-calculation time as the response variable.
pub fn factorial_2k(lab: &mut Lab<'_>, procs: usize) -> FactorialAnalysis {
    // Standard order: (A, B, C) = (-,-,-), (+,-,-), (-,+,-), (+,+,-),
    //                 (-,-,+), (+,-,+), (-,+,+), (+,+,+).
    let level = |a: i8, b: i8, c: i8| ExperimentPoint {
        network: if a < 0 {
            NetworkKind::TcpGigE
        } else {
            NetworkKind::MyrinetGm
        },
        middleware: if b < 0 {
            Middleware::Cmpi
        } else {
            Middleware::Mpi
        },
        node: if c < 0 {
            NodeConfig::Dual
        } else {
            NodeConfig::Uni
        },
        procs,
    };
    let signs: [(i8, i8, i8); 8] = [
        (-1, -1, -1),
        (1, -1, -1),
        (-1, 1, -1),
        (1, 1, -1),
        (-1, -1, 1),
        (1, -1, 1),
        (-1, 1, 1),
        (1, 1, 1),
    ];
    let mut responses = [0.0f64; 8];
    for (slot, &(a, b, c)) in responses.iter_mut().zip(&signs) {
        *slot = lab.measure(level(a, b, c)).energy_time();
    }

    // Sign-table estimation: q_X = (1/8) sum sign_X(i) * y_i.
    let q = |f: &dyn Fn(i8, i8, i8) -> f64| -> f64 {
        signs
            .iter()
            .zip(&responses)
            .map(|(&(a, b, c), &y)| f(a, b, c) * y)
            .sum::<f64>()
            / 8.0
    };
    let mean = q(&|_, _, _| 1.0);
    let qa = q(&|a, _, _| a as f64);
    let qb = q(&|_, b, _| b as f64);
    let qc = q(&|_, _, c| c as f64);
    let qab = q(&|a, b, _| (a * b) as f64);
    let qac = q(&|a, _, c| (a * c) as f64);
    let qbc = q(&|_, b, c| (b * c) as f64);
    let qabc = q(&|a, b, c| (a * b * c) as f64);

    // Allocation of variation: SS_X = 8 q_X^2; SST = sum of the seven.
    let ss = [qa, qb, qc, qab, qac, qbc, qabc].map(|v| 8.0 * v * v);
    let sst: f64 = ss.iter().sum();
    let variation = if sst > 0.0 {
        ss.map(|v| v / sst)
    } else {
        [0.0; 7]
    };

    FactorialAnalysis {
        procs,
        mean,
        effect_network: qa,
        effect_middleware: qb,
        effect_nodes: qc,
        interactions: [qab, qac, qbc, qabc],
        variation,
        responses,
    }
}

impl FactorialAnalysis {
    /// Renders the analysis as a table.
    pub fn render(&self) -> String {
        let rows = vec![
            row("mean response", self.mean, None),
            row(
                "A: network (TCP -> Myrinet)",
                self.effect_network,
                Some(self.variation[0]),
            ),
            row(
                "B: middleware (CMPI -> MPI)",
                self.effect_middleware,
                Some(self.variation[1]),
            ),
            row(
                "C: nodes (dual -> uni)",
                self.effect_nodes,
                Some(self.variation[2]),
            ),
            row(
                "AB interaction",
                self.interactions[0],
                Some(self.variation[3]),
            ),
            row(
                "AC interaction",
                self.interactions[1],
                Some(self.variation[4]),
            ),
            row(
                "BC interaction",
                self.interactions[2],
                Some(self.variation[5]),
            ),
            row(
                "ABC interaction",
                self.interactions[3],
                Some(self.variation[6]),
            ),
        ];
        format!(
            "2^3 factorial analysis (Jain [11]) of the energy-calculation time,\n\
             p = {} processors. Effects are in seconds per half-range; negative\n\
             means the '+' level (premium) is faster.\n\n{}",
            self.procs,
            crate::ascii::table(&["term", "effect (s)", "% of variation"], &rows)
        )
    }
}

fn row(label: &str, effect: f64, variation: Option<f64>) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{effect:+.3}"),
        variation
            .map(|v| format!("{:5.1}%", 100.0 * v))
            .unwrap_or_else(|| "-".into()),
    ]
}

/// Marginal means over the *full* (3-network) factorial: the average
/// response at each level of each factor, at a fixed processor count.
pub fn marginal_means(lab: &mut Lab<'_>, procs: usize) -> String {
    let networks = [
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
    ];
    let mut rows = Vec::new();
    for network in networks {
        let mut sum = 0.0;
        let mut n = 0;
        for middleware in Middleware::ALL {
            for node in NodeConfig::ALL {
                sum += lab
                    .measure(ExperimentPoint {
                        network,
                        middleware,
                        node,
                        procs,
                    })
                    .energy_time();
                n += 1;
            }
        }
        rows.push(vec![
            format!("network = {}", network.label()),
            format!("{:.3}", sum / n as f64),
        ]);
    }
    for middleware in Middleware::ALL {
        let mut sum = 0.0;
        let mut n = 0;
        for network in networks {
            for node in NodeConfig::ALL {
                sum += lab
                    .measure(ExperimentPoint {
                        network,
                        middleware,
                        node,
                        procs,
                    })
                    .energy_time();
                n += 1;
            }
        }
        rows.push(vec![
            format!("middleware = {}", middleware.label()),
            format!("{:.3}", sum / n as f64),
        ]);
    }
    for node in NodeConfig::ALL {
        let mut sum = 0.0;
        let mut n = 0;
        for network in networks {
            for middleware in Middleware::ALL {
                sum += lab
                    .measure(ExperimentPoint {
                        network,
                        middleware,
                        node,
                        procs,
                    })
                    .energy_time();
                n += 1;
            }
        }
        rows.push(vec![
            format!("nodes = {}", node.label()),
            format!("{:.3}", sum / n as f64),
        ]);
    }
    format!(
        "Marginal mean energy-calculation time per factor level (p = {procs}):\n\n{}",
        crate::ascii::table(&["level", "mean total(s)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{quick_pme_params, quick_system};
    use cpc_md::EnergyModel;

    fn quick_lab(system: &cpc_md::System) -> Lab<'_> {
        Lab::custom(system, 1, EnergyModel::Pme(quick_pme_params()))
    }

    #[test]
    fn effects_reconstruct_responses() {
        // The sign-table model is exact for a 2^3 design: y_i must be
        // recovered from the eight coefficients.
        let system = quick_system();
        let mut lab = quick_lab(&system);
        let a = factorial_2k(&mut lab, 4);
        let signs: [(f64, f64, f64); 8] = [
            (-1.0, -1.0, -1.0),
            (1.0, -1.0, -1.0),
            (-1.0, 1.0, -1.0),
            (1.0, 1.0, -1.0),
            (-1.0, -1.0, 1.0),
            (1.0, -1.0, 1.0),
            (-1.0, 1.0, 1.0),
            (1.0, 1.0, 1.0),
        ];
        for (i, &(sa, sb, sc)) in signs.iter().enumerate() {
            let y = a.mean
                + sa * a.effect_network
                + sb * a.effect_middleware
                + sc * a.effect_nodes
                + sa * sb * a.interactions[0]
                + sa * sc * a.interactions[1]
                + sb * sc * a.interactions[2]
                + sa * sb * sc * a.interactions[3];
            assert!(
                (y - a.responses[i]).abs() < 1e-9 * a.responses[i].abs().max(1.0),
                "cell {i}: {y} vs {}",
                a.responses[i]
            );
        }
    }

    #[test]
    fn variation_fractions_sum_to_one() {
        let system = quick_system();
        let mut lab = quick_lab(&system);
        let a = factorial_2k(&mut lab, 8);
        let total: f64 = a.variation.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        assert!(a.variation.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn network_is_the_dominant_factor_at_scale() {
        // The paper's conclusion, quantified: at p=8 the networking
        // factor (with its middleware interaction) explains most of the
        // variation.
        let system = quick_system();
        let mut lab = quick_lab(&system);
        let a = factorial_2k(&mut lab, 8);
        let network_share = a.variation[0] + a.variation[3] + a.variation[4] + a.variation[6];
        assert!(
            network_share > 0.5,
            "network-related variation {network_share:?} (effects: {a:?})"
        );
        // Myrinet (+1) must be faster: negative effect.
        assert!(a.effect_network < 0.0);
    }

    #[test]
    fn render_and_marginals_produce_tables() {
        let system = quick_system();
        let mut lab = quick_lab(&system);
        let a = factorial_2k(&mut lab, 2);
        let text = a.render();
        assert!(text.contains("A: network"));
        let marg = marginal_means(&mut lab, 2);
        assert!(marg.contains("Myrinet"));
        assert!(marg.contains("middleware = CMPI"));
    }
}
