//! Disk-fault chaos campaigns: whole job-service runs on a simulated
//! filesystem ([`cpc_vfs::SimFs`]) under sampled ENOSPC / EIO /
//! short-write / rename-failure / power-loss schedules
//! ([`cpc_cluster::DiskFaultSpace`]), checked against the
//! crash-consistency oracles ([`cpc_charmm::chaos::check_disk_ledger`]):
//!
//! 1. a result acknowledged durable is never lost, even across power
//!    cuts (no acked-then-lost);
//! 2. a recovered result always matches a fresh re-execution of its
//!    cell (no corrupt-accept);
//! 3. every injected fault surfaces as a typed error (no panic);
//! 4. a file whose fsync failed is abandoned, never published
//!    (no post-failed-fsync trust — the `fsyncgate` policy);
//! 5. once faults clear, the campaign drains and its artifact is
//!    byte-identical to a fault-free reference run.
//!
//! The driver plays the role of a supervisor around the service:
//! power cuts end an incarnation (restart + reopen — recovery is
//! construction), persistent ENOSPC is lifted only after the service
//! is observed to quiesce on it, and transient I/O errors are retried
//! by reopening from disk. The in-memory instance that saw the error
//! is never trusted again: every retry goes back through
//! [`JobService::open_on`].

use crate::service::{artifact_digest_on, JobService, ServiceConfig, StepOutcome};
use cpc_charmm::chaos::{check_disk_ledger, DiskLedger, DiskViolation};
use cpc_vfs::{is_enospc, DiskFaultPlan, SharedFs, SimFs};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::HashSet;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

/// Everything one disk-fault schedule produced: the aggregated ledger
/// and the oracle verdicts over it.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskChaosReport {
    /// Cross-incarnation accounting.
    pub ledger: DiskLedger,
    /// Oracle violations (empty = the schedule passed).
    pub violations: Vec<DiskViolation>,
}

impl DiskChaosReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one campaign twice — a fault-free reference on a pristine
/// [`SimFs`] and a faulted run on a [`SimFs`] interpreting `plan` —
/// and checks the disk oracles over the result. Entirely in memory:
/// no real filesystem is touched.
///
/// `exec` must be deterministic in its task (it is re-invoked to
/// cross-check recovered results for the corrupt-accept oracle).
pub fn run_disk_chaos<T, R>(
    tasks: &[T],
    protocol: &str,
    plan: &DiskFaultPlan,
    key_of: impl Fn(&R) -> String + Copy,
    exec: impl Fn(&T) -> (R, f64),
) -> io::Result<DiskChaosReport>
where
    T: Serialize,
    R: Serialize + Deserialize + Clone,
{
    let dir = PathBuf::from("/campaign");
    let journal_path = ServiceConfig::new(&dir, protocol).journal_path();

    // Reference: one fault-free incarnation on a pristine image.
    let ref_sim = Arc::new(SimFs::new());
    let mut reference = JobService::<R>::open_on(
        ref_sim.clone() as SharedFs,
        ServiceConfig::new(&dir, protocol),
        key_of,
    )?;
    let ref_outcome = reference.run(tasks, |t| exec(t))?;
    drop(reference);
    debug_assert!(ref_outcome.drained);
    let reference_digest = artifact_digest_on(ref_sim.as_ref(), &journal_path);

    // Chaos: incarnations punctuated by the plan's faults.
    let sim = Arc::new(SimFs::with_plan(plan));
    let mut ledger = DiskLedger {
        total_cells: tasks.len(),
        reference_digest,
        ..DiskLedger::default()
    };
    let executed = Cell::new(0usize);
    let counted_exec = |t: &T| {
        executed.set(executed.get() + 1);
        exec(t)
    };
    // Classifies one I/O error from the service and adjusts the
    // supervisor's posture: power cuts are restarted at the top of the
    // next attempt; an active ENOSPC is lifted (the error *is* the
    // observed quiesce — the service stopped making progress instead
    // of corrupting state); anything else is a transient to retry
    // past by reopening.
    let absorb = |e: &io::Error, ledger: &mut DiskLedger| {
        if sim.crashed() {
        } else if sim.enospc_active() && is_enospc(e) {
            sim.lift_enospc();
            ledger.enospc_lifts += 1;
        } else {
            ledger.io_retries += 1;
        }
    };
    // Keys whose results have been durably acknowledged (a step
    // returned `Progress` after committing them): the set the
    // acked-then-lost oracle replays against every reopen.
    let mut acked: HashSet<String> = HashSet::new();
    let mut drained_abandoned = 0usize;
    // Each fault costs at most a handful of reopen cycles (a transient
    // ENOSPC window can fail several distinct operations before it
    // closes); the budget bounds the schedule without ever being the
    // reason a well-behaved service fails to drain.
    let budget = 12 + 16 * plan.faults.len();

    'schedule: for _ in 0..budget {
        if sim.crashed() {
            sim.restart();
            ledger.restarts += 1;
        }

        let opened = catch_unwind(AssertUnwindSafe(|| {
            JobService::<R>::open_on(
                sim.clone() as SharedFs,
                ServiceConfig::new(&dir, protocol),
                key_of,
            )
        }));
        let mut service = match opened {
            Err(_) => {
                ledger.panics += 1;
                break 'schedule;
            }
            Ok(Ok(s)) => s,
            Ok(Err(e)) => {
                // Recovery itself hit the fault.
                absorb(&e, &mut ledger);
                continue;
            }
        };
        ledger.incarnations += 1;

        // Acked-then-lost: every durably acknowledged result must be
        // recovered by construction, before any re-execution could
        // paper over the loss.
        for key in &acked {
            if !service.results().contains_key(key) {
                ledger.acked_then_lost += 1;
            }
        }

        match catch_unwind(AssertUnwindSafe(|| service.prepare(tasks))) {
            Err(_) => {
                ledger.panics += 1;
                break 'schedule;
            }
            Ok(Err(e)) => {
                absorb(&e, &mut ledger);
                continue;
            }
            Ok(Ok(())) => {}
        }

        loop {
            let before = executed.get();
            let step = catch_unwind(AssertUnwindSafe(|| {
                service.step(tasks, &mut |t| counted_exec(t))
            }));
            match step {
                Err(_) => {
                    ledger.panics += 1;
                    break 'schedule;
                }
                Ok(Ok(StepOutcome::Progress)) => {
                    for key in service.results().keys() {
                        acked.insert(key.clone());
                    }
                }
                Ok(Ok(StepOutcome::Killed)) => {
                    unreachable!("disk chaos configures no kill switch")
                }
                Ok(Ok(StepOutcome::Drained)) => {
                    drained_abandoned = service.outcome().abandoned;
                    break 'schedule;
                }
                Ok(Err(e)) => {
                    // An execution the failed step may have run is not
                    // licensed to be durable: each one allows exactly
                    // one re-execution.
                    ledger.lost_executions += executed.get() - before;
                    absorb(&e, &mut ledger);
                    // The instance that saw the error is poisoned;
                    // every retry reopens from disk.
                    break;
                }
            }
        }
    }

    // Final accounting happens from *disk*, never from the in-memory
    // instance that drained: a fault can fire on the very last
    // mutating op (a queue completion behind an already-acked
    // journal append), leaving the image crashed even though the
    // campaign finished. The verification reopen is the reboot after
    // that — and a bounded retry loop, because late-armed faults can
    // fire during it too.
    let mut final_results = None;
    for _ in 0..budget {
        if sim.crashed() {
            sim.restart();
            ledger.restarts += 1;
        }
        match JobService::<R>::open_on(
            sim.clone() as SharedFs,
            ServiceConfig::new(&dir, protocol),
            key_of,
        ) {
            Ok(s) => {
                final_results = Some(s.results().clone());
                break;
            }
            Err(e) => absorb(&e, &mut ledger),
        }
    }

    ledger.executed = executed.get();
    ledger.disk = sim.counters();
    ledger.abandoned = drained_abandoned;
    ledger.artifact_digest = artifact_digest_on(sim.as_ref(), &journal_path);

    if let Some(results) = &final_results {
        for key in &acked {
            if !results.contains_key(key) {
                ledger.acked_then_lost += 1;
            }
        }
        // Corrupt-accept: every recovered result must match a fresh
        // re-execution of its cell, byte for byte in canonical JSON.
        for task in tasks {
            let (expected, _) = exec(task);
            let key = key_of(&expected);
            // An absent result is a LostCell, convicted below.
            if let Some(got) = results.get(&key) {
                ledger.completed += 1;
                let same = match (serde_json::to_string(got), serde_json::to_string(&expected)) {
                    (Ok(a), Ok(b)) => a == b,
                    _ => false,
                };
                if !same {
                    ledger.corrupt_accepted += 1;
                }
            }
        }
    }

    let violations = check_disk_ledger(&ledger);
    Ok(DiskChaosReport { ledger, violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_charmm::chaos::DiskViolation;
    use cpc_cluster::DiskFaultSpace;
    use cpc_vfs::DiskFault;

    fn tasks(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    fn exec(t: &u64) -> (Vec<f64>, f64) {
        (vec![*t as f64, (*t * *t) as f64], 0.25)
    }

    #[allow(clippy::ptr_arg)]
    fn key_of(r: &Vec<f64>) -> String {
        serde_json::to_string(&(r[0] as u64)).unwrap()
    }

    #[test]
    fn a_fault_free_plan_passes_with_one_incarnation() {
        let report = run_disk_chaos(&tasks(5), "p", &DiskFaultPlan::none(), key_of, exec).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.incarnations, 1);
        assert_eq!(report.ledger.completed, 5);
        assert_eq!(report.ledger.executed, 5);
        assert_eq!(report.ledger.restarts, 0);
    }

    #[test]
    fn a_power_cut_mid_campaign_restarts_and_stays_byte_identical() {
        // Probe the fault-free op horizon, then cut power mid-way.
        let probe = run_disk_chaos(&tasks(6), "p", &DiskFaultPlan::none(), key_of, exec).unwrap();
        let mid = probe.ledger.disk.ops / 2;
        let plan = DiskFaultPlan::none().with(DiskFault::PowerLoss {
            at: mid,
            reorder: false,
            keep_seed: 7,
        });
        let report = run_disk_chaos(&tasks(6), "p", &plan, key_of, exec).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.ledger.disk.power_losses, 1);
        assert!(report.ledger.restarts >= 1);
        assert_eq!(report.ledger.completed, 6);
    }

    #[test]
    fn persistent_enospc_quiesces_then_lifts_then_drains() {
        let probe = run_disk_chaos(&tasks(6), "p", &DiskFaultPlan::none(), key_of, exec).unwrap();
        let mid = probe.ledger.disk.ops / 2;
        let plan = DiskFaultPlan::none().with(DiskFault::EnospcPersistent { at: mid });
        let report = run_disk_chaos(&tasks(6), "p", &plan, key_of, exec).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.ledger.enospc_lifts >= 1, "the full disk was lifted");
        assert!(report.ledger.disk.enospc_failures >= 1);
        assert_eq!(report.ledger.completed, 6);
    }

    #[test]
    fn a_planted_artifact_mismatch_is_convicted() {
        // A ledger whose digests disagree must always be convicted:
        // the oracle itself, not the driver, is under test here.
        let ledger = DiskLedger {
            total_cells: 1,
            completed: 1,
            executed: 1,
            artifact_digest: Some(1),
            reference_digest: Some(2),
            ..DiskLedger::default()
        };
        let violations = check_disk_ledger(&ledger);
        assert!(violations
            .iter()
            .any(|v| matches!(v, DiskViolation::ArtifactMismatch { .. })));
    }

    #[test]
    fn a_hundred_sampled_schedules_uphold_every_oracle() {
        let probe = run_disk_chaos(&tasks(4), "p", &DiskFaultPlan::none(), key_of, exec).unwrap();
        let space = DiskFaultSpace::new(probe.ledger.disk.ops);
        let mut failed = Vec::new();
        for index in 0..100u64 {
            let plan = space.sample(0xD15C, index);
            let report = run_disk_chaos(&tasks(4), "p", &plan, key_of, exec).unwrap();
            if !report.passed() {
                failed.push((index, report.violations.clone()));
            }
        }
        assert!(failed.is_empty(), "failing schedules: {failed:?}");
    }
}
