//! The paper's qualitative findings, encoded as checkable predicates.
//!
//! We do not chase absolute numbers (our substrate is a calibrated
//! simulator, not the 2002 CoPs cluster); these are the *shapes* the
//! paper reports — who wins, by roughly what factor, where the
//! crossovers fall. `EXPERIMENTS.md` records paper-vs-measured for
//! each.

use crate::factors::{ExperimentPoint, NodeConfig};
use crate::figures::Lab;
use cpc_cluster::NetworkKind;
use cpc_mpi::Middleware;

/// One qualitative expectation from the paper with its verification
/// outcome.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Short identifier (section / figure).
    pub id: &'static str,
    /// What the paper claims.
    pub claim: &'static str,
    /// Whether the reproduction shows the same shape.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

/// Verifies every encoded finding against measurements from `lab`.
pub fn verify_findings(lab: &mut Lab<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // --- Section 3.2 / Figure 3.
    let f1 = lab.measure(ExperimentPoint::focal(1));
    let f2 = lab.measure(ExperimentPoint::focal(2));
    let f8 = lab.measure(ExperimentPoint::focal(8));
    findings.push(Finding {
        id: "Fig3/seq-share",
        claim: "On one processor the PME time is slightly less than half the total",
        holds: {
            let share = f1.pme_time / f1.energy_time();
            (0.30..0.50).contains(&share)
        },
        evidence: format!(
            "PME share at p=1: {:.1}% (classic {:.2}s, pme {:.2}s)",
            100.0 * f1.pme_time / f1.energy_time(),
            f1.classic_time,
            f1.pme_time
        ),
    });
    findings.push(Finding {
        id: "Fig3/pme-2p-regression",
        claim: "With two processors the PME calculation takes LONGER than on one",
        holds: f2.pme_time > f1.pme_time,
        evidence: format!(
            "pme time p=1: {:.2}s, p=2: {:.2}s",
            f1.pme_time, f2.pme_time
        ),
    });
    findings.push(Finding {
        id: "Fig4/classic-overheads",
        claim: "Classic overheads < 10% at p=2, rising to over ~60% at p=8 (TCP)",
        holds: {
            let o2 = 100.0 - f2.classic_pct.0;
            let o8 = 100.0 - f8.classic_pct.0;
            o2 < 15.0 && o8 > 45.0
        },
        evidence: format!(
            "classic overhead p=2: {:.1}%, p=8: {:.1}%",
            100.0 - f2.classic_pct.0,
            100.0 - f8.classic_pct.0
        ),
    });
    findings.push(Finding {
        id: "Fig4/pme-overheads",
        claim: "PME overheads already ~50% at p=2, over 75% at p=8 (TCP)",
        holds: {
            let o2 = 100.0 - f2.pme_pct.0;
            let o8 = 100.0 - f8.pme_pct.0;
            o2 > 35.0 && o8 > 65.0
        },
        evidence: format!(
            "pme overhead p=2: {:.1}%, p=8: {:.1}%",
            100.0 - f2.pme_pct.0,
            100.0 - f8.pme_pct.0
        ),
    });

    // --- Section 4.1 / Figures 5-7.
    let score8 = lab.measure(ExperimentPoint {
        network: NetworkKind::ScoreGigE,
        ..ExperimentPoint::focal(8)
    });
    let myri8 = lab.measure(ExperimentPoint {
        network: NetworkKind::MyrinetGm,
        ..ExperimentPoint::focal(8)
    });
    findings.push(Finding {
        id: "Fig5/network-scaling",
        claim: "SCore and Myrinet scale much better than TCP/IP at p=8",
        holds: score8.energy_time() < 0.7 * f8.energy_time()
            && myri8.energy_time() < 0.7 * f8.energy_time(),
        evidence: format!(
            "p=8 energy time: TCP {:.2}s, SCore {:.2}s, Myrinet {:.2}s",
            f8.energy_time(),
            score8.energy_time(),
            myri8.energy_time()
        ),
    });
    findings.push(Finding {
        id: "Fig5/score-software-win",
        claim: "Better software (SCore) on the SAME Ethernet wires recovers most of \
                Myrinet's advantage (no extra hardware cost)",
        holds: score8.energy_time() < 1.6 * myri8.energy_time(),
        evidence: format!(
            "p=8: SCore {:.2}s vs Myrinet {:.2}s",
            score8.energy_time(),
            myri8.energy_time()
        ),
    });
    let tp = |m: &crate::runner::Measurement| m.throughput.unwrap_or((0.0, 0.0, 0.0));
    findings.push(Finding {
        id: "Fig7/tcp-variability",
        claim: "TCP throughput is low and wildly variable at p>=4; SCore is stable; \
                Myrinet is fastest (~130 MB/s class)",
        holds: {
            let (t_avg, t_min, t_max) = tp(&f8);
            let (s_avg, s_min, s_max) = tp(&score8);
            let (m_avg, _, _) = tp(&myri8);
            let tcp_spread = t_max / t_min.max(1e-9);
            let score_spread = s_max / s_min.max(1e-9);
            t_avg < s_avg && s_avg < m_avg && tcp_spread > 2.0 * score_spread
        },
        evidence: format!(
            "p=8 MB/s avg(min-max): TCP {:.0}({:.0}-{:.0}), SCore {:.0}({:.0}-{:.0}), Myrinet {:.0}({:.0}-{:.0})",
            tp(&f8).0, tp(&f8).1, tp(&f8).2,
            tp(&score8).0, tp(&score8).1, tp(&score8).2,
            tp(&myri8).0, tp(&myri8).1, tp(&myri8).2
        ),
    });

    // --- Section 4.2 / Figure 8.
    let cmpi4 = lab.measure(ExperimentPoint {
        middleware: Middleware::Cmpi,
        ..ExperimentPoint::focal(4)
    });
    let cmpi8 = lab.measure(ExperimentPoint {
        middleware: Middleware::Cmpi,
        ..ExperimentPoint::focal(8)
    });
    findings.push(Finding {
        id: "Fig8/cmpi-collapse",
        claim: "With CMPI, going from 4 to 8 processors the time INCREASES instead of \
                falling, and synchronization dominates",
        holds: cmpi8.energy_time() > cmpi4.energy_time() && cmpi8.energy_pct.2 > 30.0,
        evidence: format!(
            "CMPI energy time p=4: {:.2}s, p=8: {:.2}s (sync share p=8: {:.0}%)",
            cmpi4.energy_time(),
            cmpi8.energy_time(),
            cmpi8.energy_pct.2
        ),
    });
    findings.push(Finding {
        id: "Fig8/mpi-vs-cmpi",
        claim: "At p=8 on TCP, CMPI is several times slower than plain MPI",
        holds: cmpi8.energy_time() > 1.8 * f8.energy_time(),
        evidence: format!(
            "p=8: MPI {:.2}s vs CMPI {:.2}s",
            f8.energy_time(),
            cmpi8.energy_time()
        ),
    });

    // --- Section 4.3 / Figure 9.
    let dual_tcp8 = lab.measure(ExperimentPoint {
        node: NodeConfig::Dual,
        ..ExperimentPoint::focal(8)
    });
    let dual_tcp2 = lab.measure(ExperimentPoint {
        node: NodeConfig::Dual,
        ..ExperimentPoint::focal(2)
    });
    let dual_myri8 = lab.measure(ExperimentPoint {
        network: NetworkKind::MyrinetGm,
        node: NodeConfig::Dual,
        ..ExperimentPoint::focal(8)
    });
    findings.push(Finding {
        id: "Fig9a/dual-tcp-hurts",
        claim: "Dual-processor nodes adversely affect scalability over TCP/IP \
                (times do not decrease with more processors)",
        holds: dual_tcp8.energy_time() > 0.8 * dual_tcp2.energy_time()
            && dual_tcp8.energy_time() > 1.3 * f8.energy_time(),
        evidence: format!(
            "dual TCP p=2: {:.2}s, p=8: {:.2}s (uni p=8: {:.2}s)",
            dual_tcp2.energy_time(),
            dual_tcp8.energy_time(),
            f8.energy_time()
        ),
    });
    findings.push(Finding {
        id: "Fig9b/dual-myrinet-fine",
        claim: "On Myrinet (shared-memory driver) dual-processor nodes scale fine",
        holds: dual_myri8.energy_time() < 1.35 * myri8.energy_time(),
        evidence: format!(
            "Myrinet p=8: uni {:.2}s vs dual {:.2}s",
            myri8.energy_time(),
            dual_myri8.energy_time()
        ),
    });

    findings
}

/// Renders findings as a report table.
pub fn render_findings(findings: &[Finding]) -> String {
    let rows: Vec<Vec<String>> = findings
        .iter()
        .map(|f| {
            vec![
                f.id.to_string(),
                if f.holds {
                    "HOLDS".into()
                } else {
                    "DEVIATES".into()
                },
                f.evidence.clone(),
            ]
        })
        .collect();
    crate::ascii::table(&["finding", "status", "measured"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_render() {
        let findings = vec![Finding {
            id: "test",
            claim: "c",
            holds: true,
            evidence: "e".into(),
        }];
        let out = render_findings(&findings);
        assert!(out.contains("HOLDS"));
        assert!(out.contains("test"));
    }
}
