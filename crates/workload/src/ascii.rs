//! Minimal ASCII rendering helpers for the figure reproductions: the
//! paper's bar charts become stacked character bars, its percentage
//! charts become tables with proportional bars.

/// A horizontal bar of `#` characters proportional to `value / max`,
/// `width` characters at full scale.
pub fn hbar(value: f64, max: f64, width: usize, ch: char) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    std::iter::repeat_n(ch, n.min(width)).collect()
}

/// A stacked horizontal bar: one glyph per component, proportional
/// lengths, total scaled to `max` over `width` characters.
pub fn stacked_bar(parts: &[(f64, char)], max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let mut out = String::new();
    for &(v, ch) in parts {
        let n = ((v / max) * width as f64).round() as usize;
        out.extend(std::iter::repeat_n(ch, n));
    }
    if out.len() > width {
        out.truncate(width);
    }
    out
}

/// Formats a simple fixed-width table: headers plus rows. Column widths
/// adapt to the longest cell.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with 3 decimals.
pub fn secs(t: f64) -> String {
    format!("{t:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{v:5.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbar_proportions() {
        assert_eq!(hbar(5.0, 10.0, 10, '#'), "#####");
        assert_eq!(hbar(10.0, 10.0, 10, '#'), "##########");
        assert_eq!(hbar(0.0, 10.0, 10, '#'), "");
        assert_eq!(hbar(20.0, 10.0, 10, '#').len(), 10, "clamped at width");
    }

    #[test]
    fn stacked_bar_concatenates() {
        let bar = stacked_bar(&[(5.0, '#'), (5.0, '+')], 10.0, 10);
        assert_eq!(bar, "#####+++++");
    }

    #[test]
    fn table_alignment() {
        let t = table(
            &["procs", "time"],
            &[
                vec!["1".into(), "6.300".into()],
                vec!["8".into(), "4.100".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("procs"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(pct(42.0), " 42.0%");
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }
}
