//! Content-addressed result cache: identical campaign cells are served
//! from disk instead of re-simulated.
//!
//! Every run on the virtual cluster is deterministic by construction —
//! the same (task, protocol, code version) always produces the same
//! result, bit for bit — so a cell's result can be addressed purely by
//! the *content of its request*: [`CacheKey::of`] hashes the canonical
//! JSON of the task together with a protocol string and the crate's
//! [`code_version`]. Cache entries use the same checksum discipline as
//! the [`Journal`](crate::journal::Journal) (`{crc:016x} {json}`), are
//! published through [`cpc_vfs::atomic_publish`] (tmp, fsync, rename,
//! directory fsync), and a damaged entry — torn, bit-flipped,
//! truncated — fails its checksum, is quarantined (renamed aside,
//! never clobbering an earlier quarantine of the same key) and counted,
//! and the cell simply re-simulates: corruption costs one cache miss,
//! never a wrong answer.
//!
//! All I/O goes through an injected [`cpc_vfs::Fs`], so the disk-fault
//! campaigns can subject the cache to ENOSPC, EIO, and power loss.

use cpc_vfs::{atomic_publish, real_fs, SharedFs};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Bumped whenever the meaning of cached bytes changes (entry format,
/// result schema, physics). Folded into every [`CacheKey`], so a
/// version bump invalidates the whole cache without touching it.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The code-version component of every cache key: a result is only
/// addressable by a binary built from the same crate version and cache
/// format. (The virtual cluster is deterministic *within* one build;
/// across versions the physics may legitimately differ.)
pub fn code_version() -> String {
    format!(
        "cpc-{}+fmt{}",
        env!("CARGO_PKG_VERSION"),
        CACHE_FORMAT_VERSION
    )
}

/// FNV-1a over a byte string (the same function the journal uses).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A content address: `hash(task, protocol, code-version)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Addresses a task under a protocol. `task` is anything
    /// serializable that fully determines the work (an experiment
    /// point, a `(seed, FaultPlan)` pair, a scenario key); `protocol`
    /// carries whatever the task type leaves implicit (step count,
    /// energy model, workload). The crate's [`code_version`] is always
    /// folded in.
    pub fn of<T: Serialize>(task: &T, protocol: &str) -> io::Result<CacheKey> {
        let json = serde_json::to_string(task)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let material = format!("{}\n{protocol}\n{json}", code_version());
        Ok(CacheKey(fnv1a64(material.as_bytes())))
    }

    /// The 16-hex-digit rendering used as the entry's file name.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Counters the cache accumulates over its lifetime (per process; the
/// on-disk store itself is shared across incarnations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served (checksum verified).
    pub hits: usize,
    /// Lookups that found no entry.
    pub misses: usize,
    /// Entries found damaged (bad checksum / unparsable) and
    /// quarantined; each also counts as a miss.
    pub corrupt: usize,
    /// Entries written.
    pub stores: usize,
}

/// A directory of checksummed, content-addressed result files.
pub struct ResultCache {
    dir: PathBuf,
    fs: SharedFs,
    stats: CacheStats,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("dir", &self.dir)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory on the real
    /// filesystem.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_on(real_fs(), dir)
    }

    /// Opens (creating if needed) the cache directory on an injected
    /// filesystem.
    pub fn open_on(fs: SharedFs, dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            fs,
            stats: CacheStats::default(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Looks up `key`, verifying the entry's checksum before trusting
    /// it. A damaged entry is quarantined (renamed to a `.bad-N` name
    /// that preserves the corrupt bytes for forensics) and reported as
    /// a miss: the caller re-simulates and overwrites it with a good
    /// one.
    pub fn get<T: Deserialize>(&mut self, key: &CacheKey) -> Option<T> {
        let path = self.entry_path(key);
        let bytes = match self.fs.read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.stats.misses += 1;
                return None;
            }
        };
        // Bytes first: a bit flip can leave the entry invalid UTF-8,
        // which is corruption to quarantine, not an absent entry.
        let parsed = std::str::from_utf8(&bytes).ok().and_then(|text| {
            let (crc, json) = text.trim_end().split_once(' ')?;
            let stored = u64::from_str_radix(crc, 16).ok()?;
            if stored != fnv1a64(json.as_bytes()) {
                return None;
            }
            serde_json::from_str::<T>(json).ok()
        });
        match parsed {
            Some(value) => {
                self.stats.hits += 1;
                Some(value)
            }
            None => {
                // Bit flip, torn write, or foreign bytes: quarantine.
                self.quarantine(key, &path);
                self.stats.corrupt += 1;
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Moves a damaged entry aside under a name no later corruption of
    /// the same key can clobber: `{hex}.bad-N` for the first free `N`.
    /// Two corrupt incarnations of one key therefore leave two distinct
    /// quarantine records. If even the rename fails (e.g. the disk is
    /// rejecting metadata ops) the entry is deleted so the damaged
    /// bytes can never be served.
    fn quarantine(&self, key: &CacheKey, path: &Path) {
        for n in 0u32.. {
            let q = self.dir.join(format!("{}.bad-{n}", key.hex()));
            if !self.fs.exists(&q) {
                if self.fs.rename(path, &q).is_err() {
                    let _ = self.fs.remove_file(path);
                }
                return;
            }
        }
    }

    /// Stores `value` under `key` atomically via
    /// [`cpc_vfs::atomic_publish`]: written to a temp file, fsynced,
    /// renamed into place, and the cache directory fsynced — a kill or
    /// power cut mid-store leaves either the old entry or the new one,
    /// never a torn file under the final name, and a completed store
    /// survives power loss.
    pub fn put<T: Serialize>(&mut self, key: &CacheKey, value: &T) -> io::Result<()> {
        let json = serde_json::to_string(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let line = format!("{:016x} {json}\n", fnv1a64(json.as_bytes()));
        atomic_publish(self.fs.as_ref(), &self.entry_path(key), line.as_bytes())?;
        self.stats.stores += 1;
        Ok(())
    }

    /// Whether an entry exists on disk (without verifying it).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.fs.exists(&self.entry_path(key))
    }

    /// Number of entries on disk.
    pub fn len(&self) -> usize {
        self.entry_paths().len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Paths of every entry on disk, sorted by file name (stable order
    /// for fault injection and audits).
    pub fn entry_paths(&self) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = self
            .fs
            .read_dir(&self.dir)
            .map(|paths| {
                paths
                    .into_iter()
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Paths of quarantined (damaged, moved-aside) entries, sorted.
    pub fn quarantine_paths(&self) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = self
            .fs
            .read_dir(&self.dir)
            .map(|paths| {
                paths
                    .into_iter()
                    .filter(|p| {
                        p.extension()
                            .and_then(|x| x.to_str())
                            .is_some_and(|x| x.starts_with("bad-"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::ExperimentPoint;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cpc-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn keys_are_content_addressed_and_version_scoped() {
        let a = CacheKey::of(&ExperimentPoint::focal(2), "steps=2").unwrap();
        let b = CacheKey::of(&ExperimentPoint::focal(2), "steps=2").unwrap();
        let c = CacheKey::of(&ExperimentPoint::focal(4), "steps=2").unwrap();
        let d = CacheKey::of(&ExperimentPoint::focal(2), "steps=10").unwrap();
        assert_eq!(a, b, "same content, same address");
        assert_ne!(a, c, "task drives the address");
        assert_ne!(a, d, "protocol drives the address");
        assert_eq!(a.hex().len(), 16);
        assert!(code_version().contains("fmt"));
    }

    #[test]
    fn roundtrip_hit_and_miss_accounting() {
        let mut cache = ResultCache::open(tmp_dir("roundtrip")).unwrap();
        let key = CacheKey::of(&ExperimentPoint::focal(2), "p").unwrap();
        assert!(cache.get::<Vec<f64>>(&key).is_none());
        cache.put(&key, &vec![1.5f64, -2.25]).unwrap();
        assert_eq!(cache.get::<Vec<f64>>(&key), Some(vec![1.5, -2.25]));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.corrupt, s.stores), (1, 1, 0, 1));
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn bit_flip_is_caught_quarantined_and_healed_by_restore() {
        let mut cache = ResultCache::open(tmp_dir("flip")).unwrap();
        let key = CacheKey::of(&ExperimentPoint::focal(8), "p").unwrap();
        cache.put(&key, &vec![3.5f64]).unwrap();
        let path = cache.entry_paths().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 4] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        assert!(
            cache.get::<Vec<f64>>(&key).is_none(),
            "damaged entry must not verify"
        );
        assert_eq!(cache.stats().corrupt, 1);
        assert!(!cache.contains(&key), "quarantined from disk");
        // Re-simulating and re-storing heals the entry.
        cache.put(&key, &vec![3.5f64]).unwrap();
        assert_eq!(cache.get::<Vec<f64>>(&key), Some(vec![3.5]));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn repeated_corruption_of_one_key_keeps_every_quarantine_record() {
        // Two corrupt incarnations of the same key must leave two
        // distinct quarantine files — the second must not clobber the
        // first (the forensics record of what was on disk).
        let mut cache = ResultCache::open(tmp_dir("quarantine")).unwrap();
        let key = CacheKey::of(&1u64, "p").unwrap();
        for round in 0..2 {
            cache.put(&key, &vec![9.0f64]).unwrap();
            let path = cache.entry_paths().pop().unwrap();
            std::fs::write(&path, format!("not a cache entry, round {round}")).unwrap();
            assert!(cache.get::<Vec<f64>>(&key).is_none());
        }
        assert_eq!(cache.stats().corrupt, 2);
        let quarantined = cache.quarantine_paths();
        assert_eq!(quarantined.len(), 2, "both corrupt bodies preserved");
        let bodies: Vec<String> = quarantined
            .iter()
            .map(|p| std::fs::read_to_string(p).unwrap())
            .collect();
        assert_ne!(bodies[0], bodies[1], "distinct records, not a clobber");
        assert_eq!(cache.len(), 0, "quarantine files are not entries");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn a_store_survives_every_crash_point() {
        use cpc_vfs::{explore_crashes, SimFs};
        use std::sync::Arc;
        // Cut power at every filesystem op of open + put; recovery must
        // find either no entry or a verifiable one — and after the
        // acked-then-lost probe, the entry must still be served.
        let key = CacheKey::of(&42u64, "p").unwrap();
        let report = explore_crashes(
            |fs: &SimFs| {
                let fs: Arc<SimFs> = Arc::new(fs.clone());
                let mut cache = ResultCache::open_on(fs, "cache")?;
                cache.put(&key, &vec![1.0f64, 2.0])
            },
            |fs: &SimFs| {
                let fs: Arc<SimFs> = Arc::new(fs.clone());
                let mut cache = ResultCache::open_on(fs, "cache").map_err(|e| e.to_string())?;
                match cache.get::<Vec<f64>>(&key) {
                    Some(v) if v == vec![1.0, 2.0] => Ok(()),
                    Some(v) => Err(format!("cache served wrong bytes: {v:?}")),
                    None if cache.stats().corrupt > 0 => {
                        Err("a torn entry reached the final name".into())
                    }
                    None => Ok(()), // honest miss: the put never landed
                }
            },
        )
        .unwrap();
        assert!(
            report.ops >= 5,
            "mkdir, create, write, fsync, rename, dir sync"
        );

        // The oracle above treats a miss as honest, so it cannot catch
        // acked-then-lost on the explorer's final probe; pin it here:
        // a put that returned Ok must survive an immediate power cut.
        let fs = Arc::new(SimFs::new());
        let mut cache = ResultCache::open_on(fs.clone(), "cache").unwrap();
        cache.put(&key, &vec![1.0f64, 2.0]).unwrap();
        fs.power_cut_now(false, 0);
        fs.restart();
        let mut cache = ResultCache::open_on(fs, "cache").unwrap();
        assert_eq!(
            cache.get::<Vec<f64>>(&key),
            Some(vec![1.0, 2.0]),
            "an acked store must survive power loss"
        );
    }

    #[test]
    fn torn_entry_is_a_miss() {
        let mut cache = ResultCache::open(tmp_dir("torn")).unwrap();
        let key = CacheKey::of(&7u64, "p").unwrap();
        cache.put(&key, &vec![1.0f64, 2.0]).unwrap();
        let path = cache.entry_paths().pop().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.get::<Vec<f64>>(&key).is_none());
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
