//! # cpc-workload
//!
//! The paper's experimental methodology as a library: factors and
//! levels ([`factors`]), the factorial designs of Section 3.1, an
//! experiment runner extracting the response variables ([`runner`]),
//! ASCII reproductions of every figure ([`figures`]), and the paper's
//! qualitative findings as checkable predicates ([`expectations`]).
//!
//! ## Example
//!
//! ```no_run
//! use cpc_workload::factors::ExperimentPoint;
//! use cpc_workload::figures::{fig3, Lab};
//! use cpc_workload::runner::myoglobin_shared;
//!
//! let system = myoglobin_shared();
//! let mut lab = Lab::paper(system);
//! println!("{}", fig3(&mut lab));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ascii;
pub mod cache;
pub mod disk_chaos;
pub mod expectations;
pub mod factors;
pub mod figures;
pub mod journal;
pub mod queue;
pub mod report;
pub mod runner;
pub mod sched;
pub mod service;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use disk_chaos::{run_disk_chaos, DiskChaosReport};
pub use factors::{full_factorial, one_factor_at_a_time, ExperimentPoint, NodeConfig};
pub use figures::Lab;
pub use journal::{Journal, Recovery};
pub use queue::{LeasedTask, QueueEvent, QueueRecovery, WorkQueue};
pub use runner::{measure, measure_with_model, myoglobin_shared, Measurement};
pub use sched::{run_sched_chaos, SchedChaosReport, SWEEP_THREADS};
pub use service::{BatchReport, JobService, ServiceConfig, ServiceOutcome};
