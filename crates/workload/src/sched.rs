//! Deterministic-scheduling chaos driver: one campaign run serially as
//! a reference, swept fault-free across thread counts, then driven
//! through a sampled adversarial [`SchedFaultPlan`] on the
//! work-stealing pool — steal storms, worker pauses at yield points,
//! injected worker panics, a mid-campaign thread-count change, a lease
//! expiry racing a slow worker — with the cross-thread determinism
//! oracles of `cpc-charmm` checked over the whole episode.
//!
//! The property under test is the executor's core contract: results
//! commit in task-index order, so the campaign artifact is
//! **byte-identical** whatever the thread count or interleaving; no
//! task is lost or doubly committed; a panicked worker's cell is
//! reclaimed through the ordinary lease-expiry path and the pool stays
//! usable; and no schedule — however hostile — deadlocks the run.

use crate::service::{artifact_digest, JobService, ServiceConfig, StepOutcome};
use cpc_charmm::chaos::{check_sched_ledger, SchedLedger, SchedViolation, ThreadDigest};
use cpc_pool::{quiet_injected_panics, Pool, PoolStats, SchedChaos, SchedFaultPlan};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;

/// Thread counts the fault-free sweep exercises (the paper's 1–8
/// processor range).
pub const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Everything a scheduling chaos episode produced: the aggregated
/// ledger and the oracle verdicts over it.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedChaosReport {
    /// Accounting across the reference, the sweep and the chaos run.
    pub ledger: SchedLedger,
    /// Oracle violations (empty = the schedule passed).
    pub violations: Vec<SchedViolation>,
}

impl SchedChaosReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one campaign three ways — a serial reference, a fault-free
/// pooled sweep over [`SWEEP_THREADS`], and a pooled chaos run driven
/// through `plan` — and checks the determinism oracles over the
/// result.
///
/// The chaos run honors the plan's driver-level faults: a
/// [`thread_change`](SchedFaultPlan::thread_change) swaps in a fresh
/// pool (sharing the same [`SchedChaos`] state, so fault latches and
/// global counters survive the swap) once enough cells have
/// committed, and a [`stale_lease_at`](SchedFaultPlan::stale_lease_at)
/// rides into the service config as the lease-expiry race. A stall
/// conviction by the pool's watchdog ends the run and is recorded in
/// the ledger rather than propagated. Afterwards the chaos pool
/// executes a probe batch: a contained panic must never poison it.
pub fn run_sched_chaos<T, R>(
    dir: impl Into<PathBuf>,
    tasks: &[T],
    protocol: &str,
    plan: &SchedFaultPlan,
    key_of: impl Fn(&R) -> String + Copy,
    exec: impl Fn(&T) -> (R, f64) + Sync,
) -> io::Result<SchedChaosReport>
where
    T: Serialize + Sync,
    R: Serialize + Deserialize + Clone + Send,
{
    quiet_injected_panics();
    let dir = dir.into();
    let _ = std::fs::remove_dir_all(&dir);

    // Serial reference: the byte layout every other run must hit.
    let ref_cfg = ServiceConfig::new(dir.join("reference"), protocol);
    let ref_journal = ref_cfg.journal_path();
    let mut svc = JobService::<R>::open(ref_cfg, key_of)?;
    svc.run(tasks, |t| exec(t))?;
    drop(svc);
    let reference_digest = artifact_digest(&ref_journal);

    // Fault-free sweep: same campaign at every thread count.
    let mut thread_digests = Vec::new();
    for threads in SWEEP_THREADS {
        let cfg = ServiceConfig::new(dir.join(format!("threads-{threads}")), protocol);
        let journal = cfg.journal_path();
        let mut svc = JobService::<R>::open(cfg, key_of)?;
        let pool = Pool::new(threads);
        svc.run_pooled(tasks, &pool, &exec)?;
        drop(svc);
        thread_digests.push(ThreadDigest {
            threads,
            digest: artifact_digest(&journal),
        });
    }

    // Chaos run under the sampled schedule.
    let chaos = SchedChaos::new(plan.clone());
    let cfg = ServiceConfig {
        workers: plan.threads.max(1),
        stale_lease_at: plan.stale_lease_at(),
        ..ServiceConfig::new(dir.join("chaos"), protocol)
    };
    let journal_path = cfg.journal_path();
    let mut svc = JobService::<R>::open(cfg, key_of)?;
    svc.prepare(tasks)?;

    let mut pool = Pool::new(plan.threads.max(1)).with_chaos(chaos.clone());
    let mut carried = PoolStats::default();
    let mut committed = 0usize;
    let mut swapped = false;
    let mut stalled = false;
    loop {
        match plan.thread_change() {
            Some((after, threads)) if !swapped && committed >= after => {
                // Mid-campaign thread-count change: a fresh pool under
                // the same chaos state.
                let s = pool.stats();
                carried.tasks += s.tasks;
                carried.steals += s.steals;
                carried.panics_caught += s.panics_caught;
                carried.stalls += s.stalls;
                pool = Pool::new(threads.max(1)).with_chaos(chaos.clone());
                swapped = true;
            }
            _ => {}
        }
        match svc.pooled_batch(tasks, &pool, pool.threads(), &exec) {
            Ok(report) => {
                committed += report.advanced;
                match report.step {
                    StepOutcome::Progress => continue,
                    _ => break,
                }
            }
            Err(_) => {
                // A watchdog conviction (or a lost/double claim caught
                // inside the pool) ends the run; the ledger records it
                // and the journal line count tells the rest.
                stalled = true;
                break;
            }
        }
    }
    let outcome = svc.outcome();
    drop(svc);

    // Post-chaos reusability probe: a contained panic must leave the
    // pool able to run fresh work.
    let probe: Vec<u64> = (0..8).collect();
    let pool_reusable = match pool.try_par_map_indexed(&probe, |i, &x| x + i as u64) {
        Ok(results) => results
            .into_iter()
            .enumerate()
            .all(|(i, r)| matches!(r, Ok(v) if v == probe[i] + i as u64)),
        Err(_) => false,
    };

    let s = pool.stats();
    let journal_lines = std::fs::read(&journal_path)
        .map(|b| b.iter().filter(|&&c| c == b'\n').count())
        .unwrap_or(0);
    let ledger = SchedLedger {
        total_cells: tasks.len(),
        completed: outcome.completed,
        abandoned: outcome.abandoned,
        executed: outcome.executed,
        threads: pool.threads(),
        pool_tasks: (carried.tasks + s.tasks) as usize,
        steals: (carried.steals + s.steals) as usize,
        panics_injected: chaos.injected_panics(),
        panics_caught: (carried.panics_caught + s.panics_caught) as usize,
        panic_reclaimed: outcome.panic_reclaimed,
        pauses_taken: chaos.pauses_taken(),
        stale_presented: outcome.stale_presented,
        stale_rejected: outcome.stale_rejected,
        journal_lines,
        stalled,
        pool_reusable,
        artifact_digest: artifact_digest(&journal_path),
        reference_digest,
        thread_digests,
    };
    let violations = check_sched_ledger(&ledger);
    Ok(SchedChaosReport { ledger, violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::SchedFaultSpace;
    use cpc_pool::SchedFault;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cpc-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tasks(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    fn exec(t: &u64) -> (Vec<f64>, f64) {
        (vec![*t as f64, (*t * *t) as f64], 0.25)
    }

    #[allow(clippy::ptr_arg)]
    fn key_of(r: &Vec<f64>) -> String {
        serde_json::to_string(&(r[0] as u64)).unwrap()
    }

    #[test]
    fn quiet_plan_passes_all_oracles() {
        let dir = tmp_dir("quiet");
        let plan = SchedFaultPlan::quiet(4);
        let report = run_sched_chaos(&dir, &tasks(8), "p", &plan, key_of, exec).unwrap();
        assert!(
            report.passed(),
            "quiet plan violated: {:?}\nledger: {:?}",
            report.violations,
            report.ledger
        );
        assert_eq!(report.ledger.completed, 8);
        assert_eq!(report.ledger.journal_lines, 8);
        assert!(report.ledger.pool_reusable);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panic_is_reclaimed_and_invisible_in_the_artifact() {
        let dir = tmp_dir("panic");
        let plan = SchedFaultPlan {
            threads: 4,
            faults: vec![SchedFault::TaskPanic { at_start: 3 }],
        };
        let report = run_sched_chaos(&dir, &tasks(8), "p", &plan, key_of, exec).unwrap();
        assert!(
            report.passed(),
            "panic plan violated: {:?}\nledger: {:?}",
            report.violations,
            report.ledger
        );
        assert_eq!(report.ledger.panics_injected, 1);
        assert_eq!(report.ledger.panics_caught, 1);
        assert!(report.ledger.panic_reclaimed >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_change_and_lease_race_pass_under_one_schedule() {
        let dir = tmp_dir("mixed");
        let plan = SchedFaultPlan {
            threads: 2,
            faults: vec![
                SchedFault::ThreadCountChange {
                    after_commits: 3,
                    threads: 8,
                },
                SchedFault::LeaseExpiryRace { at_lease: 2 },
                SchedFault::StealStorm { from_task: 1 },
            ],
        };
        let report = run_sched_chaos(&dir, &tasks(10), "p", &plan, key_of, exec).unwrap();
        assert!(
            report.passed(),
            "mixed plan violated: {:?}\nledger: {:?}",
            report.violations,
            report.ledger
        );
        assert_eq!(report.ledger.threads, 8, "the change took effect");
        assert_eq!(
            (report.ledger.stale_presented, report.ledger.stale_rejected),
            (1, 1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_schedules_uphold_the_determinism_oracles() {
        let space = SchedFaultSpace::new(6);
        for index in 0..8 {
            let plan = space.sample(23, index);
            let dir = tmp_dir(&format!("fuzz-{index}"));
            let report = run_sched_chaos(&dir, &tasks(6), "p", &plan, key_of, exec).unwrap();
            assert!(
                report.passed(),
                "schedule {index} ({plan:?}) violated: {:?}\nledger: {:?}",
                report.violations,
                report.ledger
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
