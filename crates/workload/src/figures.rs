//! Reproductions of every figure in the paper's evaluation, rendered
//! as ASCII charts/tables from measurements on the virtual cluster.
//!
//! Each `figN` function consumes a [`Lab`], which caches measurements
//! so figures sharing the same runs (e.g. 3 and 4) execute them once.

use crate::ascii::{pct, secs, stacked_bar, table};
use crate::factors::{ExperimentPoint, NodeConfig, PAPER_PROC_COUNTS};
use crate::journal::Journal;
use crate::runner::{measure_with_model, paper_pme_params, Measurement};
use cpc_cluster::NetworkKind;
use cpc_md::{EnergyModel, System};
use cpc_mpi::Middleware;
use std::collections::HashMap;

/// Width of the bar area in rendered charts.
const BAR_WIDTH: usize = 46;

/// Process exit code used when a lab's cell budget runs out (see
/// [`Lab::set_cell_budget`]): distinguishable from success and from
/// ordinary failures in CI scripts.
pub const EXIT_CELL_BUDGET: i32 = 3;

/// A measurement laboratory: a system, a protocol, and a cache.
pub struct Lab<'a> {
    system: &'a System,
    steps: usize,
    model: EnergyModel,
    cache: HashMap<ExperimentPoint, Measurement>,
    journal: Option<Journal<Measurement>>,
    cell_budget: Option<usize>,
    fresh_cells: usize,
}

impl<'a> Lab<'a> {
    /// The paper's protocol: 10 MD steps, PME model with the 80x36x48
    /// mesh.
    pub fn paper(system: &'a System) -> Self {
        Lab {
            system,
            steps: crate::runner::PAPER_STEPS,
            model: EnergyModel::Pme(paper_pme_params()),
            cache: HashMap::new(),
            journal: None,
            cell_budget: None,
            fresh_cells: 0,
        }
    }

    /// A custom protocol (smaller systems, fewer steps — used by tests
    /// and quick demo modes).
    pub fn custom(system: &'a System, steps: usize, model: EnergyModel) -> Self {
        Lab {
            system,
            steps,
            model,
            cache: HashMap::new(),
            journal: None,
            cell_budget: None,
            fresh_cells: 0,
        }
    }

    /// Attaches a completed-cell journal: `prior` entries (from
    /// [`Journal::resume`]) pre-seed the cache so finished cells are
    /// skipped, and every fresh measurement is appended as it
    /// completes. Prior entries measured under a different step count
    /// belong to a different protocol and are ignored.
    pub fn attach_journal(&mut self, journal: Journal<Measurement>, prior: Vec<Measurement>) {
        for m in prior {
            if m.steps == self.steps {
                self.cache.insert(m.point, m);
            }
        }
        self.journal = Some(journal);
    }

    /// Limits the number of *fresh* (non-cached, non-journaled)
    /// measurements this lab will run; exceeding the budget exits the
    /// process with [`EXIT_CELL_BUDGET`]. CI uses this to simulate a
    /// campaign killed mid-sweep without resorting to signal timing.
    pub fn set_cell_budget(&mut self, cells: usize) {
        self.cell_budget = Some(cells);
    }

    /// Measures (or retrieves) one experiment point.
    pub fn measure(&mut self, point: ExperimentPoint) -> Measurement {
        if let Some(m) = self.cache.get(&point) {
            return m.clone();
        }
        if self.cell_budget.is_some_and(|b| self.fresh_cells >= b) {
            eprintln!(
                "cell budget exhausted after {} fresh measurements; \
                 re-run with --resume to continue",
                self.fresh_cells
            );
            std::process::exit(EXIT_CELL_BUDGET);
        }
        let m = measure_with_model(self.system, point, self.steps, self.model);
        self.fresh_cells += 1;
        if let Some(journal) = &mut self.journal {
            journal.append(&m).expect("append measurement to journal");
        }
        self.cache.insert(point, m.clone());
        m
    }

    /// All cached measurements (for JSON export).
    pub fn measurements(&self) -> Vec<&Measurement> {
        let mut v: Vec<&Measurement> = self.cache.values().collect();
        v.sort_by_key(|m| {
            (
                format!("{:?}", m.point.network),
                m.point.middleware.label(),
                m.point.node.cpus(),
                m.point.procs,
            )
        });
        v
    }

    /// Serializes every cached measurement to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.measurements()).expect("measurements serialize")
    }

    /// MD steps per measurement.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

fn times_chart(rows: &[(String, Measurement)], caption: &str) -> String {
    let max = rows
        .iter()
        .map(|(_, m)| m.energy_time())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut body = Vec::new();
    for (label, m) in rows {
        body.push(vec![
            label.clone(),
            secs(m.classic_time),
            secs(m.pme_time),
            secs(m.energy_time()),
            stacked_bar(&[(m.classic_time, '#'), (m.pme_time, '+')], max, BAR_WIDTH),
        ]);
    }
    format!(
        "{caption}\n  (bars: '#' = classic calculation, '+' = pme calculation)\n\n{}",
        table(&["case", "classic(s)", "pme(s)", "total(s)", "bar"], &body)
    )
}

fn breakdown_chart(rows: &[(String, (f64, f64, f64))], caption: &str) -> String {
    let mut body = Vec::new();
    for (label, (comp, comm, sync)) in rows {
        body.push(vec![
            label.clone(),
            pct(*comp),
            pct(*comm),
            pct(*sync),
            stacked_bar(
                &[(*comp, '#'), (*comm, '~'), (*sync, '=')],
                100.0,
                BAR_WIDTH,
            ),
        ]);
    }
    format!(
        "{caption}\n  (bars: '#' = computation, '~' = communication, '=' = synchronization)\n\n{}",
        table(
            &[
                "case",
                "comp",
                "comm",
                "sync",
                "0%........................100%"
            ],
            &body
        )
    )
}

/// Figure 3: wall-clock time of the total energy calculation for the
/// reference case (TCP/IP on Ethernet, MPI, uni-processor).
pub fn fig3(lab: &mut Lab<'_>) -> String {
    let rows: Vec<(String, Measurement)> = PAPER_PROC_COUNTS
        .iter()
        .map(|&p| (format!("p={p}"), lab.measure(ExperimentPoint::focal(p))))
        .collect();
    times_chart(
        &rows,
        &format!(
            "Figure 3. Execution time of the total energy calculation ({} MD steps)\n\
             Cluster of PCs with: MPI middleware, TCP/IP on Ethernet, uni-processors",
            lab.steps()
        ),
    )
}

/// Figure 4: percentage of computation, communication and
/// synchronization in (a) the classic and (b) the PME energy
/// calculation, reference case.
pub fn fig4(lab: &mut Lab<'_>) -> String {
    let ms: Vec<(usize, Measurement)> = PAPER_PROC_COUNTS
        .iter()
        .map(|&p| (p, lab.measure(ExperimentPoint::focal(p))))
        .collect();
    let a: Vec<(String, (f64, f64, f64))> = ms
        .iter()
        .map(|(p, m)| (format!("p={p}"), m.classic_pct))
        .collect();
    let b: Vec<(String, (f64, f64, f64))> = ms
        .iter()
        .map(|(p, m)| (format!("p={p}"), m.pme_pct))
        .collect();
    format!(
        "{}\n{}",
        breakdown_chart(
            &a,
            "Figure 4a. Percentage of computation, communication and synchronization\n\
             in the CLASSIC energy calculation (reference case)"
        ),
        breakdown_chart(
            &b,
            "Figure 4b. Percentage of computation, communication and synchronization\n\
             in the PME energy calculation (reference case)"
        )
    )
}

const FIG_NETWORKS: [NetworkKind; 3] = [
    NetworkKind::TcpGigE,
    NetworkKind::ScoreGigE,
    NetworkKind::MyrinetGm,
];

/// Figure 5: energy-calculation time for the three networks (MPI,
/// uni-processor).
pub fn fig5(lab: &mut Lab<'_>) -> String {
    let mut rows = Vec::new();
    for network in FIG_NETWORKS {
        for &p in &PAPER_PROC_COUNTS {
            let point = ExperimentPoint {
                network,
                ..ExperimentPoint::focal(p)
            };
            rows.push((format!("{:<22} p={p}", network.label()), lab.measure(point)));
        }
    }
    times_chart(
        &rows,
        &format!(
            "Figure 5. Execution time of the total energy calculation for different\n\
             networks ({} MD steps; MPI middleware, uni-processors)",
            lab.steps()
        ),
    )
}

/// Figure 6: breakdown percentages per network for (a) classic and
/// (b) PME.
pub fn fig6(lab: &mut Lab<'_>) -> String {
    let mut a = Vec::new();
    let mut b = Vec::new();
    for network in FIG_NETWORKS {
        for &p in &PAPER_PROC_COUNTS {
            let point = ExperimentPoint {
                network,
                ..ExperimentPoint::focal(p)
            };
            let m = lab.measure(point);
            let label = format!("{:<22} p={p}", network.label());
            a.push((label.clone(), m.classic_pct));
            b.push((label, m.pme_pct));
        }
    }
    format!(
        "{}\n{}",
        breakdown_chart(
            &a,
            "Figure 6a. Computation/communication/synchronization in the CLASSIC\n\
             energy calculation for different networks"
        ),
        breakdown_chart(
            &b,
            "Figure 6b. Computation/communication/synchronization in the PME\n\
             energy calculation for different networks"
        )
    )
}

/// Figure 7: average and variability (min/max) of the per-node
/// communication speed, MB/s.
pub fn fig7(lab: &mut Lab<'_>) -> String {
    let mut body = Vec::new();
    for network in FIG_NETWORKS {
        for &p in &[2usize, 4, 8] {
            let point = ExperimentPoint {
                network,
                ..ExperimentPoint::focal(p)
            };
            let m = lab.measure(point);
            let (avg, min, max) = m.throughput.unwrap_or((0.0, 0.0, 0.0));
            body.push(vec![
                format!("{:<22} p={p}", network.label()),
                format!("{avg:7.1}"),
                format!("{min:7.1}"),
                format!("{max:7.1}"),
                crate::ascii::hbar(avg, 140.0, 35, '#')
                    + &format!(" |{}-{}|", min.round(), max.round()),
            ]);
        }
    }
    format!(
        "Figure 7. Average and variability of the communication speed per node\n\
         (MB/s; MPI middleware, uni-processor cluster)\n\n{}",
        table(
            &["case", "avg", "min", "max", "0 MB/s ............. 140 MB/s"],
            &body
        )
    )
}

/// Figure 8: MPI vs CMPI middleware — (a) wall times, (b) breakdown of
/// the total energy calculation.
pub fn fig8(lab: &mut Lab<'_>) -> String {
    let mut rows = Vec::new();
    let mut pcts = Vec::new();
    for middleware in Middleware::ALL {
        for &p in &PAPER_PROC_COUNTS {
            let point = ExperimentPoint {
                middleware,
                ..ExperimentPoint::focal(p)
            };
            let m = lab.measure(point);
            let label = format!("{:<4} p={p}", middleware.label());
            rows.push((label.clone(), m.clone()));
            pcts.push((label, m.energy_pct));
        }
    }
    format!(
        "{}\n{}",
        times_chart(
            &rows,
            &format!(
                "Figure 8a. Execution time of the total energy calculation for\n\
                 different middlewares ({} MD steps; TCP/IP on Ethernet, uni-processors)",
                lab.steps()
            )
        ),
        breakdown_chart(
            &pcts,
            "Figure 8b. Computation/communication/synchronization in the TOTAL\n\
             energy calculation for different middlewares"
        )
    )
}

/// Figure 9: uni- vs dual-processor nodes on (a) TCP/IP and
/// (b) Myrinet.
pub fn fig9(lab: &mut Lab<'_>) -> String {
    let mut render_for = |network: NetworkKind, tag: &str| {
        let mut rows = Vec::new();
        for node in NodeConfig::ALL {
            for &p in &PAPER_PROC_COUNTS {
                let point = ExperimentPoint {
                    network,
                    node,
                    ..ExperimentPoint::focal(p)
                };
                rows.push((format!("{:<14} p={p}", node.label()), lab.measure(point)));
            }
        }
        times_chart(
            &rows,
            &format!(
                "Figure 9{tag}. Energy-calculation time for different numbers of CPUs\n\
                 per node, {} (MPI middleware)",
                network.label()
            ),
        )
    };
    let a = render_for(NetworkKind::TcpGigE, "a");
    let b = render_for(NetworkKind::MyrinetGm, "b");
    format!("{a}\n{b}")
}

/// The full factorial design (Section 3.1): all 12 platform cells at
/// every processor count.
pub fn factorial_table(lab: &mut Lab<'_>) -> String {
    let mut body = Vec::new();
    for point in crate::factors::full_factorial(&PAPER_PROC_COUNTS) {
        let m = lab.measure(point);
        let (comp, comm, sync) = m.energy_pct;
        body.push(vec![
            point.network.label().to_string(),
            point.middleware.label().to_string(),
            point.node.label().to_string(),
            point.procs.to_string(),
            secs(m.classic_time),
            secs(m.pme_time),
            secs(m.energy_time()),
            pct(comp),
            pct(comm),
            pct(sync),
        ]);
    }
    format!(
        "Full factorial design (3 networks x 2 middlewares x 2 node configs,\n\
         p = 1/2/4/8): response variables of the total energy calculation\n\n{}",
        table(
            &[
                "network",
                "middleware",
                "nodes",
                "p",
                "classic",
                "pme",
                "total",
                "comp",
                "comm",
                "sync"
            ],
            &body
        )
    )
}

/// Figure 1 (descriptive): the factor space of the experimental
/// design, with the focal point marked.
pub fn factor_space() -> String {
    "Figure 1. Factor space of the experimental design\n\
     \n\
     Networking:      TCP/IP on Ethernet* -> SCore on Ethernet -> Myrinet\n\
     Middleware:      MPI* -> CMPI\n\
     CPUs per node:   uni-processor* -> dual-processor\n\
     \n\
     (* = focal point: the most common cluster configuration, MPICH over\n\
     TCP/IP on Gigabit Ethernet with uni-processor nodes. The study moves\n\
     one factor at a time from the focal point; the full factorial of all\n\
     12 cells is also measured — see the factorial table.)\n"
        .to_string()
}

/// Figure 2 (descriptive): the structure of the energy calculation,
/// rendered as the phase trace the instrumented engine actually
/// executes.
pub fn phase_trace() -> String {
    "Figure 2. Structure of the energy calculation in CHARMM\n\
     \n\
     classic (switch/shift) model     PME model\n\
     ----------------------------     -------------------------------------\n\
     COMPUTATION   (pairs+bonded)     COMPUTATION   (pairs+bonded)   classic\n\
     COMMUNICATION (all-to-all        COMMUNICATION (all-to-all      classic\n\
                    collective)                      collective)\n\
                                      COMPUTATION   (spread, 2D FFT) pme\n\
                                      FFT fwd:      all-to-all       pme\n\
                                                    personalized\n\
                                      COMPUTATION   (1D FFT, conv)   pme\n\
                                      FFT bwd:      all-to-all       pme\n\
                                                    personalized\n\
                                      COMPUTATION   (2D FFT, interp) pme\n\
                                      COMMUNICATION (all-to-all      pme\n\
                                                     collective)\n"
        .to_string()
}

/// Renders every figure in order (the `figures` bench target and the
/// `make_all_figures` binary).
pub fn all_figures(lab: &mut Lab<'_>) -> String {
    let sections = [
        factor_space(),
        phase_trace(),
        fig3(lab),
        fig4(lab),
        fig5(lab),
        fig6(lab),
        fig7(lab),
        fig8(lab),
        fig9(lab),
        factorial_table(lab),
    ];
    sections.join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{quick_pme_params, quick_system};

    fn quick_lab(system: &System) -> Lab<'_> {
        Lab::custom(system, 1, EnergyModel::Pme(quick_pme_params()))
    }

    #[test]
    fn attached_journal_skips_finished_cells_and_foreign_protocols() {
        let path =
            std::env::temp_dir().join(format!("cpc-lab-journal-{}.jsonl", std::process::id()));
        // Journal a sentinel measurement for focal(2) under this lab's
        // protocol (steps = 1), and one under a different protocol.
        let sentinel = Measurement {
            point: ExperimentPoint::focal(2),
            steps: 1,
            classic_time: 1234.5,
            pme_time: 0.0,
            classic_pct: (100.0, 0.0, 0.0),
            pme_pct: (100.0, 0.0, 0.0),
            energy_pct: (100.0, 0.0, 0.0),
            throughput: None,
            final_total_energy: 0.0,
        };
        let foreign = Measurement {
            steps: 99,
            point: ExperimentPoint::focal(4),
            ..sentinel.clone()
        };
        let mut journal = Journal::create(&path).unwrap();
        journal.append(&sentinel).unwrap();
        journal.append(&foreign).unwrap();
        drop(journal);

        let sys = quick_system();
        let mut lab = quick_lab(&sys);
        let (journal, recovery) = Journal::resume(&path).unwrap();
        lab.attach_journal(journal, recovery.entries);
        // The journaled cell is skipped (the sentinel comes back
        // verbatim instead of a fresh measurement)...
        let m = lab.measure(ExperimentPoint::focal(2));
        assert_eq!(m.classic_time, 1234.5);
        // ...while the foreign-protocol entry was ignored: this cell
        // runs fresh and gets journaled.
        let m4 = lab.measure(ExperimentPoint::focal(4));
        assert_ne!(m4.classic_time, 1234.5);
        assert_eq!(m4.steps, 1);
        let rec: crate::journal::Recovery<Measurement> = Journal::load(&path).unwrap();
        assert_eq!(rec.entries.len(), 3, "fresh cell appended to journal");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lab_caches_measurements() {
        let sys = quick_system();
        let mut lab = quick_lab(&sys);
        let p = ExperimentPoint::focal(2);
        let a = lab.measure(p);
        let b = lab.measure(p);
        assert_eq!(a.classic_time, b.classic_time);
        assert_eq!(lab.measurements().len(), 1);
    }

    #[test]
    fn fig3_renders_all_proc_counts() {
        let sys = quick_system();
        let mut lab = quick_lab(&sys);
        let out = fig3(&mut lab);
        for p in PAPER_PROC_COUNTS {
            assert!(out.contains(&format!("p={p}")), "missing p={p} in:\n{out}");
        }
        assert!(out.contains("Figure 3"));
        assert!(out.contains('#'));
    }

    #[test]
    fn fig4_has_both_panels() {
        let sys = quick_system();
        let mut lab = quick_lab(&sys);
        let out = fig4(&mut lab);
        assert!(out.contains("Figure 4a"));
        assert!(out.contains("Figure 4b"));
    }

    #[test]
    fn fig7_reports_throughput_stats() {
        let sys = quick_system();
        let mut lab = quick_lab(&sys);
        let out = fig7(&mut lab);
        assert!(out.contains("Figure 7"));
        assert!(out.contains("Myrinet"));
        // Three networks x three proc counts.
        assert!(out.matches("p=8").count() >= 3);
    }

    #[test]
    fn json_export_is_valid() {
        let sys = quick_system();
        let mut lab = quick_lab(&sys);
        lab.measure(ExperimentPoint::focal(2));
        let json = lab.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed.as_array().unwrap().len() == 1);
    }

    #[test]
    fn factor_space_lists_all_levels() {
        let t = factor_space();
        for needle in [
            "TCP/IP",
            "SCore",
            "Myrinet",
            "CMPI",
            "dual-processor",
            "focal",
        ] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn phase_trace_mentions_both_models() {
        let t = phase_trace();
        assert!(t.contains("PME model"));
        assert!(t.contains("all-to-all"));
    }
}
