//! Campaign runner: executes the complete reproduction and writes a
//! self-contained artifact directory — every figure, the raw
//! measurements, the factor analysis, the findings ledger and a
//! paper-vs-measured comparison table.

use crate::analysis::{factorial_2k, marginal_means};
use crate::expectations::{render_findings, verify_findings};
use crate::factors::ExperimentPoint;
use crate::figures::{all_figures, Lab};
use cpc_cluster::NetworkKind;
use cpc_mpi::Middleware;
use std::io;
use std::path::{Path, PathBuf};

/// Files written by a campaign.
#[derive(Debug, Clone)]
pub struct CampaignArtifacts {
    /// Directory containing everything below.
    pub dir: PathBuf,
    /// ASCII reproduction of every figure.
    pub figures: PathBuf,
    /// HOLDS/DEVIATES ledger.
    pub findings: PathBuf,
    /// 2^3 factor-effect analysis.
    pub factor_effects: PathBuf,
    /// Paper-vs-measured comparison table.
    pub comparison: PathBuf,
    /// Raw measurements as JSON.
    pub measurements: PathBuf,
    /// Number of findings that hold.
    pub findings_held: usize,
    /// Total findings checked.
    pub findings_total: usize,
}

/// Runs the full campaign with the given lab and writes the artifact
/// directory.
pub fn run_campaign(lab: &mut Lab<'_>, out_dir: impl AsRef<Path>) -> io::Result<CampaignArtifacts> {
    let dir = out_dir.as_ref().to_path_buf();
    std::fs::create_dir_all(&dir)?;

    let figures_path = dir.join("figures.txt");
    std::fs::write(&figures_path, all_figures(lab))?;

    let findings = verify_findings(lab);
    let held = findings.iter().filter(|f| f.holds).count();
    let findings_path = dir.join("findings.txt");
    std::fs::write(&findings_path, render_findings(&findings))?;

    let mut effects = String::new();
    for procs in [2usize, 4, 8] {
        effects.push_str(&factorial_2k(lab, procs).render());
        effects.push_str("\n\n");
    }
    effects.push_str(&marginal_means(lab, 8));
    let effects_path = dir.join("factor_effects.txt");
    std::fs::write(&effects_path, &effects)?;

    let comparison_path = dir.join("comparison.md");
    std::fs::write(&comparison_path, paper_comparison(lab))?;

    let measurements_path = dir.join("measurements.json");
    std::fs::write(&measurements_path, lab.to_json())?;

    Ok(CampaignArtifacts {
        dir,
        figures: figures_path,
        findings: findings_path,
        factor_effects: effects_path,
        comparison: comparison_path,
        measurements: measurements_path,
        findings_held: held,
        findings_total: findings.len(),
    })
}

/// Builds the paper-vs-measured markdown table from live measurements.
///
/// Paper values are read off the published charts (the paper prints few
/// exact numbers); the comparison targets *shapes*.
pub fn paper_comparison(lab: &mut Lab<'_>) -> String {
    let f1 = lab.measure(ExperimentPoint::focal(1));
    let f2 = lab.measure(ExperimentPoint::focal(2));
    let f8 = lab.measure(ExperimentPoint::focal(8));
    let myri8 = lab.measure(ExperimentPoint {
        network: NetworkKind::MyrinetGm,
        ..ExperimentPoint::focal(8)
    });
    let score8 = lab.measure(ExperimentPoint {
        network: NetworkKind::ScoreGigE,
        ..ExperimentPoint::focal(8)
    });
    let cmpi8 = lab.measure(ExperimentPoint {
        middleware: Middleware::Cmpi,
        ..ExperimentPoint::focal(8)
    });
    let cmpi4 = lab.measure(ExperimentPoint {
        middleware: Middleware::Cmpi,
        ..ExperimentPoint::focal(4)
    });
    let tp = |m: &crate::runner::Measurement| m.throughput.unwrap_or((0.0, 0.0, 0.0));

    let rows: Vec<(String, String, String)> = vec![
        (
            "PME share of total at p=1 (Fig 3)".into(),
            "slightly under 1/2".into(),
            format!("{:.1}%", 100.0 * f1.pme_time / f1.energy_time()),
        ),
        (
            "PME time p=2 vs p=1 (Fig 3)".into(),
            "LARGER at p=2".into(),
            format!("{:.2}s vs {:.2}s", f2.pme_time, f1.pme_time),
        ),
        (
            "classic overhead at p=2 (Fig 4a)".into(),
            "< 10%".into(),
            format!("{:.1}%", 100.0 - f2.classic_pct.0),
        ),
        (
            "classic overhead at p=8 (Fig 4a)".into(),
            "> 60%".into(),
            format!("{:.1}%", 100.0 - f8.classic_pct.0),
        ),
        (
            "PME overhead at p=2 (Fig 4b)".into(),
            "slightly > 50%".into(),
            format!("{:.1}%", 100.0 - f2.pme_pct.0),
        ),
        (
            "PME overhead at p=8 (Fig 4b)".into(),
            "> 75%".into(),
            format!("{:.1}%", 100.0 - f8.pme_pct.0),
        ),
        (
            "p=8 total: TCP / SCore / Myrinet (Fig 5)".into(),
            "TCP >> SCore ~ Myrinet".into(),
            format!(
                "{:.2} / {:.2} / {:.2} s",
                f8.energy_time(),
                score8.energy_time(),
                myri8.energy_time()
            ),
        ),
        (
            "Myrinet throughput (Fig 7)".into(),
            "~130 MB/s".into(),
            format!("{:.0} MB/s avg", tp(&myri8).0),
        ),
        (
            "TCP min-max spread at p=8 (Fig 7)".into(),
            "large (unstable)".into(),
            format!("{:.0}-{:.0} MB/s", tp(&f8).1, tp(&f8).2),
        ),
        (
            "CMPI p=4 -> p=8 (Fig 8a)".into(),
            "time INCREASES ~3x".into(),
            format!("{:.2}s -> {:.2}s", cmpi4.energy_time(), cmpi8.energy_time()),
        ),
        (
            "CMPI sync share at p=8 (Fig 8b)".into(),
            "dominates".into(),
            format!("{:.0}%", cmpi8.energy_pct.2),
        ),
    ];
    let mut out =
        String::from("# Paper vs reproduction\n\n| quantity | paper | measured |\n|---|---|---|\n");
    for (q, p, m) in rows {
        out.push_str(&format!("| {q} | {p} | {m} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{quick_pme_params, quick_system};
    use cpc_md::EnergyModel;

    #[test]
    fn campaign_writes_all_artifacts() {
        let system = quick_system();
        let mut lab = Lab::custom(&system, 1, EnergyModel::Pme(quick_pme_params()));
        let dir = std::env::temp_dir().join("cpc_campaign_test");
        let artifacts = run_campaign(&mut lab, &dir).unwrap();
        for path in [
            &artifacts.figures,
            &artifacts.findings,
            &artifacts.factor_effects,
            &artifacts.comparison,
            &artifacts.measurements,
        ] {
            assert!(path.exists(), "{path:?} missing");
            assert!(
                std::fs::metadata(path).unwrap().len() > 100,
                "{path:?} too small"
            );
        }
        assert!(artifacts.findings_total >= 10);
        let comparison = std::fs::read_to_string(&artifacts.comparison).unwrap();
        assert!(comparison.contains("| quantity | paper | measured |"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn comparison_table_has_all_figures() {
        let system = quick_system();
        let mut lab = Lab::custom(&system, 1, EnergyModel::Pme(quick_pme_params()));
        let table = paper_comparison(&mut lab);
        for fig in [
            "Fig 3", "Fig 4a", "Fig 4b", "Fig 5", "Fig 7", "Fig 8a", "Fig 8b",
        ] {
            assert!(table.contains(fig), "missing {fig}");
        }
    }
}
