//! The experimental design of the paper's Section 3.1: factors,
//! levels, and the factor space of Figure 1.
//!
//! Response variables are wall-clock times of the classic and PME
//! energy calculations, their computation / communication /
//! synchronization breakdown, and per-node communication speeds.

use cpc_cluster::{ClusterConfig, NetworkKind};
use cpc_mpi::Middleware;
use serde::{Deserialize, Serialize};

/// Node configuration factor: CPUs per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeConfig {
    /// One CPU per node.
    Uni,
    /// Two CPUs per node (shared memory and NIC).
    Dual,
}

impl NodeConfig {
    /// Both levels.
    pub const ALL: [NodeConfig; 2] = [NodeConfig::Uni, NodeConfig::Dual];

    /// CPUs per node.
    pub fn cpus(self) -> usize {
        match self {
            NodeConfig::Uni => 1,
            NodeConfig::Dual => 2,
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            NodeConfig::Uni => "uni-processor",
            NodeConfig::Dual => "dual-processor",
        }
    }
}

/// One cell of the factor space (Figure 1), together with a processor
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Networking factor.
    pub network: NetworkKind,
    /// Middleware factor.
    pub middleware: Middleware,
    /// CPUs-per-node factor.
    pub node: NodeConfig,
    /// Number of processors used by the calculation.
    pub procs: usize,
}

impl ExperimentPoint {
    /// The paper's focal point: MPICH over TCP/IP on Gigabit Ethernet,
    /// MPI middleware, uni-processor nodes.
    pub fn focal(procs: usize) -> Self {
        ExperimentPoint {
            network: NetworkKind::TcpGigE,
            middleware: Middleware::Mpi,
            node: NodeConfig::Uni,
            procs,
        }
    }

    /// The cluster configuration for this point.
    pub fn cluster(&self) -> ClusterConfig {
        match self.node {
            NodeConfig::Uni => ClusterConfig::uni(self.procs, self.network),
            NodeConfig::Dual => ClusterConfig::dual(self.procs, self.network),
        }
    }

    /// Compact label for tables.
    pub fn label(&self) -> String {
        format!(
            "{} / {} / {} / p={}",
            self.network.label(),
            self.middleware.label(),
            self.node.label(),
            self.procs
        )
    }
}

/// The paper's full factorial design over the three *platform* factors
/// (3 networks x 2 middlewares x 2 node configurations = 12 cells),
/// each evaluated at every processor count in `proc_counts`.
///
/// Fast Ethernet is excluded, as in the paper (handled in \[17\]).
pub fn full_factorial(proc_counts: &[usize]) -> Vec<ExperimentPoint> {
    let networks = [
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
    ];
    let mut points = Vec::new();
    for &network in &networks {
        for middleware in Middleware::ALL {
            for node in NodeConfig::ALL {
                for &procs in proc_counts {
                    points.push(ExperimentPoint {
                        network,
                        middleware,
                        node,
                        procs,
                    });
                }
            }
        }
    }
    points
}

/// The fractional (one-factor-at-a-time) design the paper actually
/// discusses: start at the focal point and vary each factor alone.
pub fn one_factor_at_a_time(proc_counts: &[usize]) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for &procs in proc_counts {
        points.push(ExperimentPoint::focal(procs));
    }
    // Vary networking.
    for network in [NetworkKind::ScoreGigE, NetworkKind::MyrinetGm] {
        for &procs in proc_counts {
            points.push(ExperimentPoint {
                network,
                ..ExperimentPoint::focal(procs)
            });
        }
    }
    // Vary middleware.
    for &procs in proc_counts {
        points.push(ExperimentPoint {
            middleware: Middleware::Cmpi,
            ..ExperimentPoint::focal(procs)
        });
    }
    // Vary node configuration (on TCP and on Myrinet, as in Fig. 9).
    for network in [NetworkKind::TcpGigE, NetworkKind::MyrinetGm] {
        for &procs in proc_counts {
            points.push(ExperimentPoint {
                network,
                node: NodeConfig::Dual,
                ..ExperimentPoint::focal(procs)
            });
        }
    }
    points
}

/// The paper's processor counts for the scaling figures.
pub const PAPER_PROC_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_factorial_has_twelve_cells() {
        let points = full_factorial(&[4]);
        assert_eq!(points.len(), 12);
        // All distinct.
        let mut set = std::collections::HashSet::new();
        for p in &points {
            assert!(set.insert(*p));
        }
    }

    #[test]
    fn full_factorial_scales_with_proc_counts() {
        assert_eq!(full_factorial(&PAPER_PROC_COUNTS).len(), 48);
    }

    #[test]
    fn focal_point_is_reference_configuration() {
        let f = ExperimentPoint::focal(8);
        assert_eq!(f.network, NetworkKind::TcpGigE);
        assert_eq!(f.middleware, Middleware::Mpi);
        assert_eq!(f.node, NodeConfig::Uni);
        let c = f.cluster();
        assert_eq!(c.cpus_per_node, 1);
        assert_eq!(c.ranks, 8);
    }

    #[test]
    fn dual_cluster_mapping() {
        let p = ExperimentPoint {
            network: NetworkKind::MyrinetGm,
            middleware: Middleware::Mpi,
            node: NodeConfig::Dual,
            procs: 8,
        };
        assert_eq!(p.cluster().nodes(), 4);
    }

    #[test]
    fn ofat_contains_focal_and_variations() {
        let points = one_factor_at_a_time(&[1, 2]);
        assert!(points.contains(&ExperimentPoint::focal(1)));
        // 1 focal + 2 networks + 1 middleware + 2 node variations = 6 series x 2 procs.
        assert_eq!(points.len(), 12);
    }

    #[test]
    fn labels_are_informative() {
        let l = ExperimentPoint::focal(4).label();
        assert!(l.contains("TCP/IP"));
        assert!(l.contains("MPI"));
        assert!(l.contains("p=4"));
    }
}
