//! Persistent sharded work queue with leased tasks: the campaign
//! driver's crash-safe to-do list.
//!
//! Every campaign cell becomes a task identified by an opaque string
//! key (the canonical JSON of its request). Tasks are leased to
//! workers with an expiry derived from the Jacobson/Karels estimator
//! of PR 4 — the lease timeout adapts to observed cell service times
//! exactly as a TCP RTO adapts to round trips — and back off
//! exponentially across retries until a bounded attempt budget
//! abandons the task to a dead-letter state.
//!
//! State changes are journaled as [`QueueEvent`]s across `shards`
//! checksummed JSONL files (`queue-NN.jsonl`, shard chosen by key
//! hash), using the same [`Journal`] discipline as results: a kill
//! mid-write tears at most the tail of one shard, and recovery
//! replays each shard's intact prefix. Leases are process-scoped —
//! a lease held by a dead incarnation is reclaimed on recovery, so
//! `kill -9` costs at most the re-execution of cells that were
//! in flight, never a lost or doubly-completed task.
//!
//! The queue runs on *virtual time*: the clock advances only when a
//! completion reports its (virtual) elapsed seconds. Replaying the
//! same events therefore rebuilds the same clock, the same estimator
//! state, and the same lease decisions — recovery is deterministic.

use crate::journal::Journal;
use cpc_cluster::RttEstimator;
use cpc_vfs::{real_fs, SharedFs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Default cap on lease attempts before a task is abandoned.
pub const DEFAULT_MAX_ATTEMPTS: usize = 4;

/// Floor on the adaptive lease timeout (virtual seconds): with no
/// service-time samples yet, leases expire after this long.
pub const LEASE_FLOOR: f64 = 1.0;

/// FNV-1a, used to pick a task's shard from its key.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One durable queue state change. The event log *is* the queue: the
/// in-memory table is always reconstructible by replaying shard
/// prefixes in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueueEvent {
    /// A task became known to the queue.
    Enqueue {
        /// Opaque task key (canonical JSON of the request).
        key: String,
        /// Global enqueue sequence number: events shard by key, so
        /// recovery needs this to reconstruct cross-shard enqueue
        /// order (which fixes dispatch order, which fixes the byte
        /// layout of the results artifact).
        seq: u64,
    },
    /// A worker took a lease on a pending task.
    Lease {
        /// Task key.
        key: String,
        /// Logical worker index.
        worker: usize,
        /// Monotone lease id; completions must present it.
        lease: u64,
        /// Virtual time at which the lease expires.
        expires: f64,
    },
    /// A leased task finished and its result is durable.
    Complete {
        /// Task key.
        key: String,
        /// The lease under which it completed (0 = pre-seeded from a
        /// recovered result, no execution happened this incarnation).
        lease: u64,
        /// Virtual seconds the cell took (advances the queue clock and
        /// feeds the lease-timeout estimator).
        elapsed: f64,
    },
    /// An expired lease was revoked; the task went back to pending.
    Reclaim {
        /// Task key.
        key: String,
        /// The revoked lease id.
        lease: u64,
    },
    /// A task exhausted its attempt budget and was dead-lettered.
    Abandon {
        /// Task key.
        key: String,
        /// Attempts consumed.
        attempts: usize,
    },
}

impl QueueEvent {
    fn key(&self) -> &str {
        match self {
            QueueEvent::Enqueue { key, .. }
            | QueueEvent::Lease { key, .. }
            | QueueEvent::Complete { key, .. }
            | QueueEvent::Reclaim { key, .. }
            | QueueEvent::Abandon { key, .. } => key,
        }
    }
}

/// A task's current standing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    Pending,
    Leased { lease: u64, expires: f64 },
    Done,
    Abandoned,
}

#[derive(Debug)]
struct TaskMeta {
    state: TaskState,
    attempts: usize,
}

/// What recovery found on disk.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueRecovery {
    /// Tasks known to the recovered queue.
    pub tasks: usize,
    /// Tasks already completed before the kill.
    pub done: usize,
    /// Leases that were in flight when the previous incarnation died
    /// and were reclaimed (their tasks went back to pending).
    pub reclaimed: usize,
    /// Tasks found dead-lettered.
    pub abandoned: usize,
    /// Torn/damaged journal lines dropped across all shards.
    pub dropped_lines: usize,
}

/// A lease handed to a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct LeasedTask {
    /// The task's key.
    pub key: String,
    /// Lease id to present on completion.
    pub lease: u64,
    /// Virtual expiry time.
    pub expires: f64,
    /// 1-based attempt number for this execution.
    pub attempt: usize,
}

/// Why a completion was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteError {
    /// The presented lease is not the task's current lease (it
    /// expired and was reclaimed, or a duplicate completion raced a
    /// newer lease). The work is discarded — the current leaseholder
    /// owns the cell.
    StaleLease,
    /// No such task.
    UnknownTask,
    /// The task is already done; duplicate completions are rejected
    /// so a cell can never be recorded twice.
    AlreadyDone,
}

/// The persistent sharded queue.
pub struct WorkQueue {
    dir: PathBuf,
    journals: Vec<Journal<QueueEvent>>,
    tasks: HashMap<String, TaskMeta>,
    /// Keys in first-enqueue order: leasing scans this, so dispatch
    /// order is deterministic.
    order: Vec<String>,
    clock: f64,
    estimator: RttEstimator,
    next_lease: u64,
    next_seq: u64,
    max_attempts: usize,
}

impl std::fmt::Debug for WorkQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueue")
            .field("dir", &self.dir)
            .field("shards", &self.journals.len())
            .field("tasks", &self.tasks.len())
            .field("clock", &self.clock)
            .finish()
    }
}

impl WorkQueue {
    fn shard_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("queue-{shard:02}.jsonl"))
    }

    fn shard_of(&self, key: &str) -> usize {
        (fnv1a64(key.as_bytes()) % self.journals.len() as u64) as usize
    }

    /// Creates a fresh queue with `shards` journal shards on the real
    /// filesystem, truncating any previous queue state in `dir`.
    pub fn create(dir: impl Into<PathBuf>, shards: usize) -> io::Result<Self> {
        Self::create_on(real_fs(), dir, shards)
    }

    /// Creates a fresh queue on an injected filesystem.
    pub fn create_on(fs: SharedFs, dir: impl Into<PathBuf>, shards: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        let shards = shards.max(1);
        let journals = (0..shards)
            .map(|s| Journal::create_on(fs.clone(), Self::shard_path(&dir, s)))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(WorkQueue {
            dir,
            journals,
            tasks: HashMap::new(),
            order: Vec::new(),
            clock: 0.0,
            estimator: RttEstimator::new(),
            next_lease: 1,
            next_seq: 0,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        })
    }

    /// Recovers the queue from `dir`: each shard's intact journal
    /// prefix is replayed (torn tails dropped and counted), events are
    /// merged in lease-id order so cross-shard causality is preserved,
    /// and any lease still open — its holder is necessarily dead — is
    /// reclaimed.
    pub fn recover(dir: impl Into<PathBuf>, shards: usize) -> io::Result<(Self, QueueRecovery)> {
        Self::recover_on(real_fs(), dir, shards)
    }

    /// [`WorkQueue::recover`] on an injected filesystem.
    pub fn recover_on(
        fs: SharedFs,
        dir: impl Into<PathBuf>,
        shards: usize,
    ) -> io::Result<(Self, QueueRecovery)> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        let shards = shards.max(1);
        let mut recovery = QueueRecovery::default();
        let mut journals = Vec::with_capacity(shards);
        let mut events: Vec<QueueEvent> = Vec::new();
        for s in 0..shards {
            let (journal, rec) =
                Journal::<QueueEvent>::resume_on(fs.clone(), Self::shard_path(&dir, s))?;
            recovery.dropped_lines += rec.dropped;
            events.extend(rec.entries);
            journals.push(journal);
        }
        // Events interleave across shards; their causal order is the
        // order the previous incarnations emitted them. Enqueues
        // carry a global sequence number and sort first among
        // themselves by it; everything else is ordered by its
        // monotone lease id (a Complete under lease L follows the
        // Lease L, and pre-seed Completes under lease 0 sort before
        // any real lease).
        fn rank(e: &QueueEvent) -> (u64, u8, u64) {
            match e {
                QueueEvent::Enqueue { seq, .. } => (0, 0, *seq),
                QueueEvent::Lease { lease, .. } => (*lease, 1, 0),
                QueueEvent::Reclaim { lease, .. } => (*lease, 2, 0),
                QueueEvent::Complete { lease, .. } => (*lease, 3, 0),
                QueueEvent::Abandon { .. } => (u64::MAX, 4, 0),
            }
        }
        events.sort_by_key(rank);

        let mut q = WorkQueue {
            dir,
            journals,
            tasks: HashMap::new(),
            order: Vec::new(),
            clock: 0.0,
            estimator: RttEstimator::new(),
            next_lease: 1,
            next_seq: 0,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        };
        for event in &events {
            let key = event.key().to_string();
            match event {
                QueueEvent::Enqueue { seq, .. } => {
                    q.next_seq = q.next_seq.max(seq + 1);
                    if !q.tasks.contains_key(&key) {
                        q.order.push(key.clone());
                        q.tasks.insert(
                            key.clone(),
                            TaskMeta {
                                state: TaskState::Pending,
                                attempts: 0,
                            },
                        );
                    }
                }
                QueueEvent::Lease { lease, expires, .. } => {
                    q.next_lease = q.next_lease.max(lease + 1);
                    if let Some(meta) = q.tasks.get_mut(&key) {
                        if !matches!(meta.state, TaskState::Done | TaskState::Abandoned) {
                            meta.state = TaskState::Leased {
                                lease: *lease,
                                expires: *expires,
                            };
                            meta.attempts += 1;
                        }
                    }
                }
                QueueEvent::Reclaim { lease, .. } => {
                    if let Some(meta) = q.tasks.get_mut(&key) {
                        if matches!(meta.state,
                            TaskState::Leased { lease: l, .. } if l == *lease)
                        {
                            meta.state = TaskState::Pending;
                        }
                    }
                }
                QueueEvent::Complete { elapsed, .. } => {
                    if let Some(meta) = q.tasks.get_mut(&key) {
                        if meta.state != TaskState::Done {
                            meta.state = TaskState::Done;
                            q.clock += elapsed;
                            if *elapsed > 0.0 {
                                q.estimator.observe(*elapsed);
                            }
                        }
                    }
                }
                QueueEvent::Abandon { .. } => {
                    if let Some(meta) = q.tasks.get_mut(&key) {
                        meta.state = TaskState::Abandoned;
                    }
                }
            }
        }
        // Any lease still open belonged to the dead incarnation.
        let open: Vec<(String, u64)> = q
            .order
            .iter()
            .filter_map(|k| match q.tasks[k].state {
                TaskState::Leased { lease, .. } => Some((k.clone(), lease)),
                _ => None,
            })
            .collect();
        for (key, lease) in open {
            q.log(&QueueEvent::Reclaim {
                key: key.clone(),
                lease,
            })?;
            q.tasks.get_mut(&key).unwrap().state = TaskState::Pending;
            recovery.reclaimed += 1;
        }
        recovery.tasks = q.tasks.len();
        recovery.done = q.done_count();
        recovery.abandoned = q
            .tasks
            .values()
            .filter(|m| m.state == TaskState::Abandoned)
            .count();
        Ok((q, recovery))
    }

    fn log(&mut self, event: &QueueEvent) -> io::Result<()> {
        let shard = self.shard_of(event.key());
        self.journals[shard].append(event)
    }

    /// Overrides the retry budget (default [`DEFAULT_MAX_ATTEMPTS`]).
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// The queue directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of journal shards.
    pub fn shards(&self) -> usize {
        self.journals.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The adaptive lease timeout for a task on its `attempt`-th try
    /// (1-based): the Jacobson/Karels RTO over observed service times
    /// (floored at [`LEASE_FLOOR`]), doubled per prior attempt —
    /// exponential backoff exactly as TCP backs off retransmits.
    pub fn lease_timeout(&self, attempt: usize) -> f64 {
        let base = self.estimator.rto().unwrap_or(LEASE_FLOOR).max(LEASE_FLOOR);
        base * f64::powi(2.0, attempt.saturating_sub(1) as i32)
    }

    /// Makes `key` known to the queue. Idempotent: re-enqueueing an
    /// existing task (done or not) is a no-op, which is what lets the
    /// service re-derive and re-enqueue the full task list on every
    /// incarnation.
    pub fn enqueue(&mut self, key: &str) -> io::Result<bool> {
        if self.tasks.contains_key(key) {
            return Ok(false);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log(&QueueEvent::Enqueue {
            key: key.to_string(),
            seq,
        })?;
        self.tasks.insert(
            key.to_string(),
            TaskMeta {
                state: TaskState::Pending,
                attempts: 0,
            },
        );
        self.order.push(key.to_string());
        Ok(true)
    }

    /// Marks `key` done without execution — used to pre-seed the
    /// queue from recovered results (journal prefix or cache) so
    /// finished cells are never re-dispatched. No-op unless pending.
    pub fn mark_done(&mut self, key: &str) -> io::Result<bool> {
        match self.tasks.get(key) {
            Some(meta) if meta.state == TaskState::Pending => {
                self.log(&QueueEvent::Complete {
                    key: key.to_string(),
                    lease: 0,
                    elapsed: 0.0,
                })?;
                self.tasks.get_mut(key).unwrap().state = TaskState::Done;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Leases the next pending task (first-enqueue order) to
    /// `worker`. Returns `None` when nothing is pending.
    pub fn lease(&mut self, worker: usize) -> io::Result<Option<LeasedTask>> {
        let key = match self
            .order
            .iter()
            .find(|k| self.tasks[*k].state == TaskState::Pending)
        {
            Some(k) => k.clone(),
            None => return Ok(None),
        };
        self.lease_key(&key, worker)
    }

    /// Leases a *specific* pending task to `worker` — `None` when the
    /// task is unknown or not pending. Callers with their own
    /// deterministic dispatch order (the job service) use this so the
    /// artifact's byte layout never depends on the queue's recovered
    /// internal order.
    pub fn lease_key(&mut self, key: &str, worker: usize) -> io::Result<Option<LeasedTask>> {
        match self.tasks.get(key) {
            Some(meta) if meta.state == TaskState::Pending => {}
            _ => return Ok(None),
        }
        let attempt = self.tasks[key].attempts + 1;
        let lease = self.next_lease;
        self.next_lease += 1;
        let expires = self.clock + self.lease_timeout(attempt);
        self.log(&QueueEvent::Lease {
            key: key.to_string(),
            worker,
            lease,
            expires,
        })?;
        let meta = self.tasks.get_mut(key).unwrap();
        meta.state = TaskState::Leased { lease, expires };
        meta.attempts = attempt;
        Ok(Some(LeasedTask {
            key: key.to_string(),
            lease,
            expires,
            attempt,
        }))
    }

    /// Whether `key` is currently pending (dispatchable).
    pub fn is_pending(&self, key: &str) -> bool {
        matches!(
            self.tasks.get(key),
            Some(TaskMeta {
                state: TaskState::Pending,
                ..
            })
        )
    }

    /// Completes a leased task: verifies the presented lease is
    /// current (stale and duplicate leases are rejected — the
    /// straggler's work is discarded rather than double-counted),
    /// advances the virtual clock by `elapsed`, and feeds the
    /// service-time estimator.
    pub fn complete(&mut self, key: &str, lease: u64, elapsed: f64) -> Result<(), CompleteError> {
        let meta = self.tasks.get(key).ok_or(CompleteError::UnknownTask)?;
        match meta.state {
            TaskState::Done => Err(CompleteError::AlreadyDone),
            TaskState::Leased { lease: current, .. } if current == lease => {
                self.log(&QueueEvent::Complete {
                    key: key.to_string(),
                    lease,
                    elapsed,
                })
                .map_err(|_| CompleteError::UnknownTask)?;
                let meta = self.tasks.get_mut(key).unwrap();
                meta.state = TaskState::Done;
                self.clock += elapsed;
                if elapsed > 0.0 {
                    self.estimator.observe(elapsed);
                }
                Ok(())
            }
            _ => Err(CompleteError::StaleLease),
        }
    }

    /// Revokes every lease whose expiry has passed. Tasks within their
    /// attempt budget go back to pending (with backoff already baked
    /// into their next lease's timeout); tasks beyond it are
    /// dead-lettered. Returns (reclaimed, abandoned) counts.
    pub fn reclaim_expired(&mut self) -> io::Result<(usize, usize)> {
        let expired: Vec<(String, u64, usize)> = self
            .order
            .iter()
            .filter_map(|k| match self.tasks[k].state {
                TaskState::Leased { lease, expires } if expires <= self.clock => {
                    Some((k.clone(), lease, self.tasks[k].attempts))
                }
                _ => None,
            })
            .collect();
        let (mut reclaimed, mut abandoned) = (0, 0);
        for (key, lease, attempts) in expired {
            if attempts >= self.max_attempts {
                self.log(&QueueEvent::Abandon {
                    key: key.clone(),
                    attempts,
                })?;
                self.tasks.get_mut(&key).unwrap().state = TaskState::Abandoned;
                abandoned += 1;
            } else {
                self.log(&QueueEvent::Reclaim {
                    key: key.clone(),
                    lease,
                })?;
                self.tasks.get_mut(&key).unwrap().state = TaskState::Pending;
                reclaimed += 1;
            }
        }
        Ok((reclaimed, abandoned))
    }

    /// Whether `key` is completed.
    pub fn is_done(&self, key: &str) -> bool {
        matches!(
            self.tasks.get(key),
            Some(TaskMeta {
                state: TaskState::Done,
                ..
            })
        )
    }

    /// Total tasks known.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks are known.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Completed task count.
    pub fn done_count(&self) -> usize {
        self.tasks
            .values()
            .filter(|m| m.state == TaskState::Done)
            .count()
    }

    /// Pending task count.
    pub fn pending_count(&self) -> usize {
        self.tasks
            .values()
            .filter(|m| m.state == TaskState::Pending)
            .count()
    }

    /// Currently leased task count.
    pub fn leased_count(&self) -> usize {
        self.tasks
            .values()
            .filter(|m| matches!(m.state, TaskState::Leased { .. }))
            .count()
    }

    /// Dead-lettered task count.
    pub fn abandoned_count(&self) -> usize {
        self.tasks
            .values()
            .filter(|m| m.state == TaskState::Abandoned)
            .count()
    }

    /// Keys of dead-lettered tasks, in enqueue order.
    pub fn abandoned_keys(&self) -> Vec<String> {
        self.order
            .iter()
            .filter(|k| self.tasks[*k].state == TaskState::Abandoned)
            .cloned()
            .collect()
    }

    /// True when every task is done or dead-lettered.
    pub fn drained(&self) -> bool {
        self.tasks
            .values()
            .all(|m| matches!(m.state, TaskState::Done | TaskState::Abandoned))
    }

    /// Advances virtual time without a completion (used by chaos
    /// schedules to force lease expiry).
    pub fn advance_clock(&mut self, dt: f64) {
        self.clock += dt.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cpc-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("cell-{i:02}")).collect()
    }

    #[test]
    fn lease_complete_drains_in_enqueue_order() {
        let dir = tmp_dir("drain");
        let mut q = WorkQueue::create(&dir, 3).unwrap();
        for k in keys(5) {
            assert!(q.enqueue(&k).unwrap());
            assert!(!q.enqueue(&k).unwrap(), "idempotent");
        }
        let mut served = Vec::new();
        while let Some(t) = q.lease(0).unwrap() {
            q.complete(&t.key, t.lease, 0.5).unwrap();
            served.push(t.key);
        }
        assert_eq!(served, keys(5), "deterministic dispatch order");
        assert!(q.drained());
        assert_eq!(q.done_count(), 5);
        assert!(q.now() > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_and_duplicate_leases_are_rejected() {
        let dir = tmp_dir("stale");
        let mut q = WorkQueue::create(&dir, 2).unwrap();
        q.enqueue("a").unwrap();
        let t1 = q.lease(0).unwrap().unwrap();
        // Force expiry and reclaim: t1's lease is now stale.
        q.advance_clock(t1.expires + 1.0);
        let (r, a) = q.reclaim_expired().unwrap();
        assert_eq!((r, a), (1, 0));
        let t2 = q.lease(1).unwrap().unwrap();
        assert!(t2.lease > t1.lease);
        assert!(t2.attempt == 2, "retry counted");
        // The straggler's completion under the old lease is discarded.
        assert_eq!(
            q.complete("a", t1.lease, 1.0),
            Err(CompleteError::StaleLease)
        );
        q.complete("a", t2.lease, 1.0).unwrap();
        // A duplicate completion is rejected too.
        assert_eq!(
            q.complete("a", t2.lease, 1.0),
            Err(CompleteError::AlreadyDone)
        );
        assert_eq!(q.done_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_timeout_adapts_and_backs_off() {
        let dir = tmp_dir("rto");
        let mut q = WorkQueue::create(&dir, 1).unwrap();
        assert_eq!(q.lease_timeout(1), LEASE_FLOOR, "cold start uses the floor");
        assert_eq!(q.lease_timeout(3), LEASE_FLOOR * 4.0, "exponential backoff");
        for k in keys(4) {
            q.enqueue(&k).unwrap();
        }
        for _ in 0..4 {
            let t = q.lease(0).unwrap().unwrap();
            q.complete(&t.key, t.lease, 10.0).unwrap();
        }
        // After observing 10 s cells the adaptive timeout dwarfs the floor.
        assert!(q.lease_timeout(1) > 10.0, "got {}", q.lease_timeout(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_retries_dead_letter_a_poison_task() {
        let dir = tmp_dir("poison");
        let mut q = WorkQueue::create(&dir, 1).unwrap().with_max_attempts(2);
        q.enqueue("poison").unwrap();
        for round in 1..=2 {
            let t = q.lease(0).unwrap().unwrap();
            assert_eq!(t.attempt, round);
            q.advance_clock(t.expires + 1.0);
            q.reclaim_expired().unwrap();
        }
        assert_eq!(q.abandoned_count(), 1);
        assert_eq!(q.abandoned_keys(), vec!["poison".to_string()]);
        assert!(q.lease(0).unwrap().is_none(), "dead-lettered, not retried");
        assert!(q.drained());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_reclaims_open_leases_and_preserves_done_work() {
        let dir = tmp_dir("recover");
        {
            let mut q = WorkQueue::create(&dir, 3).unwrap();
            for k in keys(6) {
                q.enqueue(&k).unwrap();
            }
            // Two done, one in flight at the "kill".
            for _ in 0..2 {
                let t = q.lease(0).unwrap().unwrap();
                q.complete(&t.key, t.lease, 1.0).unwrap();
            }
            let _in_flight = q.lease(1).unwrap().unwrap();
            // Process dies here: q dropped without completing.
        }
        let (mut q, rec) = WorkQueue::recover(&dir, 3).unwrap();
        assert_eq!(rec.tasks, 6);
        assert_eq!(rec.done, 2);
        assert_eq!(rec.reclaimed, 1, "the in-flight lease is reclaimed");
        assert_eq!(rec.dropped_lines, 0);
        assert_eq!(q.pending_count(), 4);
        // The reclaimed cell is re-dispatched; nothing done is.
        let mut served = Vec::new();
        while let Some(t) = q.lease(0).unwrap() {
            q.complete(&t.key, t.lease, 1.0).unwrap();
            served.push(t.key);
        }
        assert_eq!(served, keys(6)[2..].to_vec());
        assert!(q.drained());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_survives_a_torn_shard_tail() {
        let dir = tmp_dir("torn");
        {
            let mut q = WorkQueue::create(&dir, 2).unwrap();
            for k in keys(4) {
                q.enqueue(&k).unwrap();
            }
            let t = q.lease(0).unwrap().unwrap();
            q.complete(&t.key, t.lease, 1.0).unwrap();
        }
        // Tear the tail of shard 0 mid-line.
        let shard0 = WorkQueue::shard_path(&dir, 0);
        let text = std::fs::read_to_string(&shard0).unwrap();
        std::fs::write(&shard0, format!("{text}deadbeef {{\"Lease\":")).unwrap();

        let (q, rec) = WorkQueue::recover(&dir, 2).unwrap();
        assert_eq!(rec.dropped_lines, 1);
        assert_eq!(rec.tasks, 4, "intact prefix keeps all enqueues");
        assert_eq!(rec.done, 1);
        // The torn tail was truncated: a second recovery is clean.
        drop(q);
        let (_, rec2) = WorkQueue::recover(&dir, 2).unwrap();
        assert_eq!(rec2.dropped_lines, 0);
        assert_eq!(rec2.done, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mark_done_preseeds_without_execution() {
        let dir = tmp_dir("preseed");
        let mut q = WorkQueue::create(&dir, 1).unwrap();
        for k in keys(3) {
            q.enqueue(&k).unwrap();
        }
        assert!(q.mark_done("cell-01").unwrap());
        assert!(!q.mark_done("cell-01").unwrap(), "already done: no-op");
        let mut served = Vec::new();
        while let Some(t) = q.lease(0).unwrap() {
            q.complete(&t.key, t.lease, 1.0).unwrap();
            served.push(t.key);
        }
        assert_eq!(served, vec!["cell-00".to_string(), "cell-02".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
