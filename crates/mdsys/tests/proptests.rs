//! Property-based tests of the MD engine: geometric and physical
//! invariants over arbitrary configurations.

use cpc_md::forcefield::AtomClass;
use cpc_md::neighbor::NeighborList;
use cpc_md::nonbonded::switch_fn;
use cpc_md::pbc::PbcBox;
use cpc_md::pme::bspline;
use cpc_md::special::{erf, erfc};
use cpc_md::topology::{Atom, Bond, Topology};
use cpc_md::vec3::Vec3;
use proptest::prelude::*;

fn arb_vec3(scale: f64) -> impl Strategy<Value = Vec3> {
    (-scale..scale, -scale..scale, -scale..scale).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn min_image_components_bounded_by_half_box(
        a in arb_vec3(100.0),
        b in arb_vec3(100.0),
        lx in 5.0f64..40.0,
        ly in 5.0f64..40.0,
        lz in 5.0f64..40.0,
    ) {
        let pbox = PbcBox::new(lx, ly, lz);
        let d = pbox.min_image(a, b);
        prop_assert!(d.x.abs() <= lx / 2.0 + 1e-9);
        prop_assert!(d.y.abs() <= ly / 2.0 + 1e-9);
        prop_assert!(d.z.abs() <= lz / 2.0 + 1e-9);
        // Antisymmetry.
        let e = pbox.min_image(b, a);
        prop_assert!((d + e).norm() < 1e-9);
    }

    #[test]
    fn wrap_preserves_distances(
        a in arb_vec3(60.0),
        b in arb_vec3(60.0),
        edge in 8.0f64..30.0,
    ) {
        let pbox = PbcBox::new(edge, edge, edge);
        let d1 = pbox.distance(a, b);
        let d2 = pbox.distance(pbox.wrap(a), pbox.wrap(b));
        prop_assert!((d1 - d2).abs() < 1e-8);
    }

    #[test]
    fn switch_function_is_bounded_and_monotone(r in 0.0f64..12.0) {
        let (s, _) = switch_fn(r, 8.0, 10.0);
        prop_assert!((0.0..=1.0).contains(&s));
        // Monotone nonincreasing: S(r) >= S(r + eps).
        let (s2, _) = switch_fn(r + 0.05, 8.0, 10.0);
        prop_assert!(s2 <= s + 1e-12);
    }

    #[test]
    fn bspline_partition_of_unity(f in 0.0f64..0.999, order in 2usize..8) {
        let (w, dw) = bspline(f, order);
        let sum: f64 = w[..order].iter().sum();
        let dsum: f64 = dw[..order].iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-12);
        prop_assert!(dsum.abs() < 1e-12);
        prop_assert!(w[..order].iter().all(|&v| v >= -1e-12), "weights nonnegative");
    }

    #[test]
    fn erf_is_odd_monotone_and_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!(erf(x + 0.01) >= erf(x));
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn neighbor_list_matches_brute_force(
        seed in 0u64..5000,
        n in 5usize..60,
        cutoff in 3.0f64..9.0,
    ) {
        let pbox = PbcBox::new(25.0, 28.0, 23.0);
        let mut topo = Topology {
            atoms: vec![Atom { class: AtomClass::CT, charge: 0.0 }; n],
            ..Default::default()
        };
        // Random bonds to exercise exclusions.
        if n > 2 {
            topo.bonds.push(Bond {
                i: (seed as usize) % n,
                j: ((seed as usize) + 1) % n,
                param: cpc_md::forcefield::params::BOND_HEAVY,
            });
        }
        topo.rebuild_exclusions();
        let mut state = seed | 1;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng() * 25.0, rng() * 28.0, rng() * 23.0))
            .collect();

        let list = NeighborList::build(&topo, &pbox, &positions, cutoff, 0.5);
        let reach2 = (cutoff + 0.5) * (cutoff + 0.5);
        let mut expect = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if pbox.min_image(positions[i], positions[j]).norm_sqr() < reach2
                    && !topo.is_excluded(i, j)
                {
                    expect.push((i as u32, j as u32));
                }
            }
        }
        let mut got = list.pairs.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bonded_forces_sum_to_zero_for_random_geometry(
        seed in 0u64..10_000,
        n_atoms in 4usize..12,
    ) {
        use cpc_md::bonded::bonded_energy_forces;
        use cpc_md::forcefield::params;
        use cpc_md::topology::{Angle, Dihedral};

        let mut topo = Topology {
            atoms: vec![Atom { class: AtomClass::CT, charge: 0.0 }; n_atoms],
            ..Default::default()
        };
        for i in 0..n_atoms - 1 {
            topo.bonds.push(Bond { i, j: i + 1, param: params::BOND_HEAVY });
        }
        for i in 0..n_atoms.saturating_sub(2) {
            topo.angles.push(Angle { i, j: i + 1, k: i + 2, param: params::ANGLE_HEAVY });
        }
        for i in 0..n_atoms.saturating_sub(3) {
            topo.dihedrals.push(Dihedral {
                i,
                j: i + 1,
                k: i + 2,
                l: i + 3,
                param: params::DIHEDRAL_BACKBONE,
            });
        }
        topo.rebuild_exclusions();

        let mut state = seed | 1;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        // Chain with random perturbations; keep atoms separated.
        let positions: Vec<Vec3> = (0..n_atoms)
            .map(|i| {
                Vec3::new(
                    1.5 * i as f64 + 0.4 * (rng() - 0.5),
                    2.0 * rng(),
                    2.0 * rng(),
                )
            })
            .collect();
        let pbox = PbcBox::new(200.0, 200.0, 200.0);
        let mut forces = vec![Vec3::ZERO; n_atoms];
        let (e, _) = bonded_energy_forces(&topo, &pbox, &positions, &mut forces);
        prop_assert!(e.total().is_finite());
        let net = forces.iter().fold(Vec3::ZERO, |acc, &f| acc + f);
        prop_assert!(net.norm() < 1e-7 * (1.0 + forces.iter().map(|f| f.norm()).sum::<f64>()));
    }
}
