//! Physical constants in the AKMA-flavoured unit system used throughout
//! the crate: length in Angstrom, energy in kcal/mol, mass in amu,
//! charge in elementary charges, time in picoseconds.

/// Coulomb constant `1/(4 pi eps0)` in kcal*A/(mol*e^2) (CHARMM value).
pub const COULOMB: f64 = 332.0637;

/// Boltzmann constant in kcal/(mol*K).
pub const K_BOLTZMANN: f64 = 0.001987191;

/// Conversion from force in kcal/(mol*A) over mass in amu to
/// acceleration in A/ps^2.
pub const ACCEL_CONV: f64 = 418.4;

/// Default MD timestep used by the paper-scale simulations, in ps (1 fs).
pub const DEFAULT_DT: f64 = 0.001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_in_expected_ranges() {
        assert!((COULOMB - 332.0637).abs() < 1e-6);
        assert!((K_BOLTZMANN - 0.0019872).abs() < 1e-5);
        // 1 kcal/mol/A on 1 amu = 4184 J/mol / (1e-10 m * 1.66054e-27 kg * 6.022e23)
        // = 4.184e16 m/s^2 = 418.4 A/ps^2.
        assert!((ACCEL_CONV - 418.4).abs() < 1e-9);
    }
}
