//! Sequential molecular dynamics: velocity-Verlet integration driving
//! the [`Evaluator`]. This is the single-processor reference that the
//! parallel engine in `cpc-charmm` must reproduce exactly.

use crate::constraints::Shake;
use crate::energy::{EnergyModel, EnergyReport, Evaluator, OpCounts};
use crate::system::System;
use crate::thermostat::{Thermostat, ThermostatState};
use crate::units::ACCEL_CONV;
use crate::vec3::Vec3;

/// Per-step record emitted by the simulation.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Step index (1-based after the first step).
    pub step: usize,
    /// Potential energy components.
    pub energy: EnergyReport,
    /// Kinetic energy.
    pub kinetic: f64,
    /// Operation counts of the step's force evaluation.
    pub ops: OpCounts,
}

impl StepReport {
    /// Total (potential + kinetic) energy.
    pub fn total_energy(&self) -> f64 {
        self.energy.total() + self.kinetic
    }
}

/// A sequential MD simulation.
pub struct Simulation {
    /// The evolving system.
    pub system: System,
    evaluator: Evaluator,
    forces: Vec<Vec3>,
    dt: f64,
    step_count: usize,
    have_forces: bool,
    thermostat: ThermostatState,
    constraints: Option<Shake>,
}

impl Simulation {
    /// Creates a simulation with timestep `dt` (ps).
    pub fn new(system: System, model: EnergyModel, dt: f64) -> Self {
        assert!(dt > 0.0);
        let n = system.n_atoms();
        Simulation {
            system,
            evaluator: Evaluator::new(model),
            forces: vec![Vec3::ZERO; n],
            dt,
            step_count: 0,
            have_forces: false,
            thermostat: ThermostatState::new(Thermostat::None, 0),
            constraints: None,
        }
    }

    /// Installs SHAKE/RATTLE constraints, applied at every step.
    pub fn set_constraints(&mut self, shake: Shake) {
        self.constraints = Some(shake);
    }

    /// Installs a thermostat (applied after every step) with a
    /// deterministic noise seed.
    pub fn set_thermostat(&mut self, kind: Thermostat, seed: u64) {
        self.thermostat = ThermostatState::new(kind, seed);
    }

    /// Timestep in ps.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.step_count
    }

    /// Evaluates energy and forces at the current coordinates without
    /// advancing time.
    pub fn evaluate(&mut self) -> (EnergyReport, OpCounts) {
        let out = self.evaluator.evaluate(&self.system, &mut self.forces);
        self.have_forces = true;
        out
    }

    /// Advances one velocity-Verlet step and returns the step report.
    pub fn step(&mut self) -> StepReport {
        if !self.have_forces {
            self.evaluate();
        }
        let dt = self.dt;
        let n = self.system.n_atoms();

        // Half-kick + drift.
        let reference = self
            .constraints
            .is_some()
            .then(|| self.system.positions.clone());
        for i in 0..n {
            let inv_m = ACCEL_CONV / self.system.topology.atoms[i].class.mass();
            let v_half = self.system.velocities[i] + self.forces[i] * (0.5 * dt * inv_m);
            self.system.velocities[i] = v_half;
            self.system.positions[i] += v_half * dt;
        }
        // SHAKE the drift back onto the constraint manifold, folding
        // the position correction into the velocities.
        if let Some(shake) = &self.constraints {
            let reference = reference.as_ref().expect("saved above");
            let pre = self.system.positions.clone();
            shake.apply_positions(&self.system.pbox, reference, &mut self.system.positions);
            for ((v, &corrected), &drifted) in self
                .system
                .velocities
                .iter_mut()
                .zip(&self.system.positions)
                .zip(&pre)
            {
                *v += (corrected - drifted) * (1.0 / dt);
            }
        }

        // New forces.
        let (energy, ops) = self.evaluator.evaluate(&self.system, &mut self.forces);

        // Second half-kick.
        for i in 0..n {
            let inv_m = ACCEL_CONV / self.system.topology.atoms[i].class.mass();
            self.system.velocities[i] += self.forces[i] * (0.5 * dt * inv_m);
        }
        // RATTLE: remove velocity components along the constraints.
        if let Some(shake) = &self.constraints {
            shake.apply_velocities(
                &self.system.pbox,
                &self.system.positions,
                &mut self.system.velocities,
            );
        }

        self.thermostat.apply(&mut self.system, dt);

        self.step_count += 1;
        StepReport {
            step: self.step_count,
            energy,
            kinetic: self.system.kinetic_energy(),
            ops,
        }
    }

    /// Runs `n` steps, returning the reports.
    pub fn run(&mut self, n: usize) -> Vec<StepReport> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Current forces (valid after `evaluate` or `step`).
    pub fn forces(&self) -> &[Vec3] {
        &self.forces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;
    use crate::minimize::minimize;

    fn relaxed_water() -> System {
        let mut sys = water_box(2, 3.1);
        minimize(&mut sys, EnergyModel::Classic, 80);
        sys.assign_velocities(120.0, 11);
        sys
    }

    #[test]
    fn energy_is_conserved_over_short_runs() {
        let sys = relaxed_water();
        let mut sim = Simulation::new(sys, EnergyModel::Classic, 0.0005);
        let first = sim.step();
        let e0 = first.total_energy();
        let reports = sim.run(100);
        let e_end = reports.last().unwrap().total_energy();
        let scale = e0.abs().max(1.0);
        assert!(
            (e_end - e0).abs() / scale < 0.02,
            "energy drift {} -> {}",
            e0,
            e_end
        );
    }

    #[test]
    fn trajectory_is_deterministic() {
        let sys = relaxed_water();
        let mut s1 = Simulation::new(sys.clone(), EnergyModel::Classic, 0.001);
        let mut s2 = Simulation::new(sys, EnergyModel::Classic, 0.001);
        s1.run(10);
        s2.run(10);
        assert_eq!(s1.system.positions, s2.system.positions);
        assert_eq!(s1.system.velocities, s2.system.velocities);
    }

    #[test]
    fn time_reversal_returns_near_start() {
        // Velocity Verlet is time reversible: integrate forward, flip
        // velocities, integrate back.
        let sys = relaxed_water();
        let start = sys.positions.clone();
        let mut sim = Simulation::new(sys, EnergyModel::Classic, 0.0005);
        sim.run(20);
        for v in &mut sim.system.velocities {
            *v = -*v;
        }
        // Force a fresh force evaluation at the turning point.
        sim.evaluate();
        sim.run(20);
        let max_dev = sim
            .system
            .positions
            .iter()
            .zip(&start)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-6, "max deviation {max_dev}");
    }

    #[test]
    fn shake_dynamics_keeps_bonds_rigid_at_large_timestep() {
        // Flexible TIP3P water at dt = 2 fs is unstable (O-H vibration
        // period ~10 fs); with SHAKE on X-H bonds it runs fine and the
        // constrained lengths stay exact.
        let mut sys = water_box(2, 3.1);
        minimize(&mut sys, EnergyModel::Classic, 80);
        sys.assign_velocities(300.0, 21);
        let shake = crate::constraints::Shake::bonds_with_hydrogen(&sys.topology);
        let bonds: Vec<_> = sys.topology.bonds.clone();
        let mut sim = Simulation::new(sys, EnergyModel::Classic, 0.002);
        sim.set_constraints(shake);
        let reports = sim.run(100);
        for b in &bonds {
            let r = sim
                .system
                .pbox
                .distance(sim.system.positions[b.i], sim.system.positions[b.j]);
            assert!(
                (r - b.param.r0).abs() / b.param.r0 < 1e-3,
                "bond {}-{} drifted to {r}",
                b.i,
                b.j
            );
        }
        // Energy stays bounded (no blow-up).
        let last = reports.last().unwrap();
        assert!(last.total_energy().is_finite());
        assert!(
            sim.system.temperature() < 2000.0,
            "T = {}",
            sim.system.temperature()
        );
    }

    #[test]
    fn thermostatted_run_controls_temperature() {
        let mut sys = water_box(3, 3.1);
        minimize(&mut sys, EnergyModel::Classic, 60);
        sys.assign_velocities(500.0, 4);
        let mut sim = Simulation::new(sys, EnergyModel::Classic, 0.001);
        sim.set_thermostat(
            crate::thermostat::Thermostat::Berendsen {
                target: 300.0,
                tau: 0.02,
            },
            7,
        );
        sim.run(300);
        // Average over a window: instantaneous T fluctuates ~10% for a
        // system this small, and the relaxing lattice releases heat.
        let avg: f64 = sim
            .run(200)
            .iter()
            .map(|_| sim.system.temperature())
            .sum::<f64>()
            / 200.0;
        assert!((avg - 300.0).abs() < 60.0, "mean temperature {avg}");
    }

    #[test]
    fn step_reports_are_sequential() {
        let sys = relaxed_water();
        let mut sim = Simulation::new(sys, EnergyModel::Classic, 0.001);
        let reports = sim.run(5);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.step, i + 1);
            assert!(r.ops.pairs > 0);
        }
        assert_eq!(sim.steps_taken(), 5);
    }

    #[test]
    fn still_system_with_zero_velocity_gains_kinetic_energy_from_forces() {
        // A perturbed system at rest starts moving: KE grows from zero.
        let mut sys = water_box(2, 3.1);
        sys.positions[0].x += 0.2;
        let mut sim = Simulation::new(sys, EnergyModel::Classic, 0.0005);
        let r = sim.step();
        assert!(r.kinetic > 0.0);
    }
}
