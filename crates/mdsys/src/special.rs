//! Special functions needed by Ewald summation: the error function and
//! its complement, accurate to near machine precision.
//!
//! `erf` uses its Maclaurin series for small arguments; `erfc` uses a
//! continued fraction (modified Lentz algorithm) for large arguments.
//! The crossover at |x| = 2 keeps both branches fast and fully
//! converged in double precision.

use std::f64::consts::PI;

const CROSSOVER: f64 = 2.0;

/// The error function `erf(x) = 2/sqrt(pi) * int_0^x e^{-t^2} dt`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x <= CROSSOVER {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= CROSSOVER {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series: erf(x) = 2/sqrt(pi) sum_n (-1)^n x^(2n+1)/(n!(2n+1)).
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^(2n+1)/n!
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
    }
    2.0 / PI.sqrt() * sum
}

/// Continued fraction for erfc(x), x > 0:
/// erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...)))).
fn erfc_cf(x: f64) -> f64 {
    // Modified Lentz evaluation of the continued fraction
    // K = x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + ...)))).
    let tiny = 1e-300;
    let mut f = x.max(tiny);
    let mut c = f;
    let mut d = 0.0;
    for k in 1..300 {
        let a = k as f64 / 2.0; // 1/2, 1, 3/2, 2, ...
        let b = x;
        d = b + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 {
            break;
        }
    }
    (-x * x).exp() / PI.sqrt() / f
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 30 digits (excess
    /// digits intentional: they pin the rounding direction).
    #[allow(clippy::excessive_precision)]
    const REFERENCE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112462916018284892203275071744),
        (0.5, 0.520499877813046537682746653892),
        (1.0, 0.842700792949714869341220635083),
        (1.5, 0.966105146475310727066976261646),
        (2.0, 0.995322265018952734162069256367),
        (2.5, 0.999593047982555041060435784260),
        (3.0, 0.999977909503001414558627223870),
        (4.0, 0.999999984582742099719981147840),
        (5.0, 0.999999999998462540205571965150),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in REFERENCE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-14, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_matches_reference() {
        for &(x, e) in REFERENCE {
            let got = erfc(x);
            let want = 1.0 - e;
            // Relative accuracy matters in the tail.
            let tol = 1e-13 * want.abs().max(1e-16);
            assert!(
                (got - want).abs() < tol.max(1e-15),
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_deep_tail_is_positive_and_tiny() {
        let v = erfc(8.0);
        assert!(v > 0.0);
        assert!(v < 1.2e-29);
    }

    #[test]
    fn odd_symmetry() {
        for &x in &[0.3, 1.1, 2.7] {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-14);
        }
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for i in 0..100 {
            let x = i as f64 * 0.07;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x={x}");
        }
    }

    #[test]
    fn derivative_matches_gaussian() {
        // d/dx erf(x) = 2/sqrt(pi) exp(-x^2); central differences.
        for &x in &[0.2, 0.9, 1.7, 2.3, 3.1] {
            let h = 1e-6;
            let numeric = (erf(x + h) - erf(x - h)) / (2.0 * h);
            let analytic = 2.0 / PI.sqrt() * (-x * x).exp();
            assert!((numeric - analytic).abs() < 1e-8, "x={x}");
        }
    }
}
