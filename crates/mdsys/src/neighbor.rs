//! Verlet pair lists built through a periodic cell (linked-list) grid.
//!
//! The list stores all non-excluded pairs within `cutoff + skin` of each
//! other and is rebuilt when any atom has moved more than `skin / 2`
//! since the last build — the standard displacement criterion.

use crate::pbc::PbcBox;
use crate::topology::Topology;
use crate::vec3::Vec3;

/// A half pair list (`i < j`) of candidate interacting pairs.
#[derive(Debug, Clone)]
pub struct NeighborList {
    /// Candidate pairs, each within `cutoff + skin` at build time.
    pub pairs: Vec<(u32, u32)>,
    cutoff: f64,
    skin: f64,
    reference: Vec<Vec3>,
}

impl NeighborList {
    /// Builds a fresh list.
    ///
    /// # Panics
    /// Panics if `cutoff + skin` exceeds the minimum half-edge of the box
    /// (the minimum-image convention would be violated).
    pub fn build(
        topo: &Topology,
        pbox: &PbcBox,
        positions: &[Vec3],
        cutoff: f64,
        skin: f64,
    ) -> Self {
        let reach = cutoff + skin;
        assert!(
            reach <= pbox.min_half_edge() + 1e-9,
            "cutoff + skin ({reach}) exceeds half the box ({})",
            pbox.min_half_edge()
        );
        let pairs = build_pairs(topo, pbox, positions, reach);
        NeighborList {
            pairs,
            cutoff,
            skin,
            reference: positions.to_vec(),
        }
    }

    /// The cutoff this list was built for.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// The skin distance.
    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// True when some atom has drifted more than `skin / 2` from its
    /// position at build time.
    pub fn needs_rebuild(&self, pbox: &PbcBox, positions: &[Vec3]) -> bool {
        let limit = self.skin * 0.5;
        let limit2 = limit * limit;
        positions
            .iter()
            .zip(&self.reference)
            .any(|(&p, &r)| pbox.min_image(p, r).norm_sqr() > limit2)
    }

    /// Rebuilds in place, reusing the pair vector's allocation.
    pub fn rebuild(&mut self, topo: &Topology, pbox: &PbcBox, positions: &[Vec3]) {
        let reach = self.cutoff + self.skin;
        self.pairs.clear();
        build_pairs_into(topo, pbox, positions, reach, &mut self.pairs);
        self.reference.clear();
        self.reference.extend_from_slice(positions);
    }
}

fn build_pairs(topo: &Topology, pbox: &PbcBox, positions: &[Vec3], reach: f64) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    build_pairs_into(topo, pbox, positions, reach, &mut pairs);
    pairs
}

fn build_pairs_into(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    reach: f64,
    pairs: &mut Vec<(u32, u32)>,
) {
    let n = positions.len();
    let reach2 = reach * reach;

    // Grid resolution: cells at least `reach` wide in each dimension.
    let ncx = (pbox.lengths.x / reach).floor().max(1.0) as usize;
    let ncy = (pbox.lengths.y / reach).floor().max(1.0) as usize;
    let ncz = (pbox.lengths.z / reach).floor().max(1.0) as usize;
    let ncell = ncx * ncy * ncz;

    if ncell < 27 {
        // Too few cells for the stencil to prune anything; do the O(N^2)
        // sweep (still exact).
        for i in 0..n {
            for j in (i + 1)..n {
                if pbox.min_image(positions[i], positions[j]).norm_sqr() < reach2
                    && !topo.is_excluded(i, j)
                {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        return;
    }

    // Bin atoms.
    let mut head: Vec<i32> = vec![-1; ncell];
    let mut next: Vec<i32> = vec![-1; n];
    let cell_of = |p: Vec3| -> usize {
        let f = pbox.fractional(p);
        let cx = ((f.x * ncx as f64) as usize).min(ncx - 1);
        let cy = ((f.y * ncy as f64) as usize).min(ncy - 1);
        let cz = ((f.z * ncz as f64) as usize).min(ncz - 1);
        (cx * ncy + cy) * ncz + cz
    };
    for (i, &p) in positions.iter().enumerate() {
        let c = cell_of(p);
        next[i] = head[c];
        head[c] = i as i32;
    }

    // Precompute the (deduplicated) half stencil of neighbour cells.
    let mut stencil: Vec<usize> = Vec::with_capacity(14);
    for cx in 0..ncx {
        for cy in 0..ncy {
            for cz in 0..ncz {
                let c = (cx * ncy + cy) * ncz + cz;
                stencil.clear();
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            let nx = (cx as i64 + dx).rem_euclid(ncx as i64) as usize;
                            let ny = (cy as i64 + dy).rem_euclid(ncy as i64) as usize;
                            let nz = (cz as i64 + dz).rem_euclid(ncz as i64) as usize;
                            let nc = (nx * ncy + ny) * ncz + nz;
                            // Half stencil: only visit cells with index
                            // >= c; the self cell handles i<j itself.
                            if nc >= c && !stencil.contains(&nc) {
                                stencil.push(nc);
                            }
                        }
                    }
                }
                for &nc in &stencil {
                    let mut i = head[c];
                    while i >= 0 {
                        let iu = i as usize;
                        let mut j = if nc == c { next[iu] } else { head[nc] };
                        while j >= 0 {
                            let ju = j as usize;
                            let (a, b) = if iu < ju { (iu, ju) } else { (ju, iu) };
                            if pbox.min_image(positions[a], positions[b]).norm_sqr() < reach2
                                && !topo.is_excluded(a, b)
                            {
                                pairs.push((a as u32, b as u32));
                            }
                            j = next[ju];
                        }
                        i = next[iu];
                    }
                }
            }
        }
    }
    // Cross-cell visits can see a pair from both sides when the periodic
    // stencil wraps; dedup to keep the list exact.
    pairs.sort_unstable();
    pairs.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::AtomClass;
    use crate::topology::Atom;

    fn random_positions(n: usize, pbox: &PbcBox, seed: u64) -> Vec<Vec3> {
        let mut s = seed | 1;
        let mut rng = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng() * pbox.lengths.x,
                    rng() * pbox.lengths.y,
                    rng() * pbox.lengths.z,
                )
            })
            .collect()
    }

    fn free_topo(n: usize) -> Topology {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                n
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        topo
    }

    fn brute_force(
        topo: &Topology,
        pbox: &PbcBox,
        positions: &[Vec3],
        reach: f64,
    ) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let reach2 = reach * reach;
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if pbox.min_image(positions[i], positions[j]).norm_sqr() < reach2
                    && !topo.is_excluded(i, j)
                {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_large_box() {
        let pbox = PbcBox::new(40.0, 35.0, 50.0);
        let topo = free_topo(200);
        let positions = random_positions(200, &pbox, 17);
        let list = NeighborList::build(&topo, &pbox, &positions, 9.0, 1.0);
        let mut got = list.pairs.clone();
        got.sort_unstable();
        let mut want = brute_force(&topo, &pbox, &positions, 10.0);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn matches_brute_force_small_box_fallback() {
        // Box too small for a 3x3x3 stencil: exercises the O(N^2) path.
        let pbox = PbcBox::new(12.0, 12.0, 12.0);
        let topo = free_topo(60);
        let positions = random_positions(60, &pbox, 3);
        let list = NeighborList::build(&topo, &pbox, &positions, 5.0, 0.5);
        let mut got = list.pairs.clone();
        got.sort_unstable();
        let mut want = brute_force(&topo, &pbox, &positions, 5.5);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn respects_exclusions() {
        let pbox = PbcBox::new(30.0, 30.0, 30.0);
        let mut topo = free_topo(3);
        topo.bonds.push(crate::topology::Bond {
            i: 0,
            j: 1,
            param: crate::forcefield::params::BOND_HEAVY,
        });
        topo.rebuild_exclusions();
        let positions = vec![
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(2.0, 1.0, 1.0),
            Vec3::new(3.0, 1.0, 1.0),
        ];
        let list = NeighborList::build(&topo, &pbox, &positions, 8.0, 1.0);
        assert!(
            !list.pairs.contains(&(0, 1)),
            "bonded pair must be excluded"
        );
        assert!(list.pairs.contains(&(0, 2)));
        assert!(list.pairs.contains(&(1, 2)));
    }

    #[test]
    fn rebuild_criterion() {
        let pbox = PbcBox::new(40.0, 40.0, 40.0);
        let topo = free_topo(10);
        let mut positions = random_positions(10, &pbox, 5);
        let list = NeighborList::build(&topo, &pbox, &positions, 9.0, 2.0);
        assert!(!list.needs_rebuild(&pbox, &positions));
        positions[3].x += 0.9; // less than skin/2
        assert!(!list.needs_rebuild(&pbox, &positions));
        positions[3].x += 0.3; // now over skin/2 total
        assert!(list.needs_rebuild(&pbox, &positions));
    }

    #[test]
    fn rebuild_refreshes_reference() {
        let pbox = PbcBox::new(40.0, 40.0, 40.0);
        let topo = free_topo(20);
        let mut positions = random_positions(20, &pbox, 9);
        let mut list = NeighborList::build(&topo, &pbox, &positions, 9.0, 2.0);
        for p in &mut positions {
            p.x += 3.0;
        }
        assert!(list.needs_rebuild(&pbox, &positions));
        list.rebuild(&topo, &pbox, &positions);
        assert!(!list.needs_rebuild(&pbox, &positions));
        // And the rebuilt list is still exact.
        let mut got = list.pairs.clone();
        got.sort_unstable();
        let mut want = brute_force(&topo, &pbox, &positions, 11.0);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn wrap_around_pairs_found() {
        // Atoms across the periodic boundary must pair up.
        let pbox = PbcBox::new(40.0, 40.0, 40.0);
        let topo = free_topo(2);
        let positions = vec![Vec3::new(0.5, 20.0, 20.0), Vec3::new(39.5, 20.0, 20.0)];
        let list = NeighborList::build(&topo, &pbox, &positions, 9.0, 1.0);
        assert_eq!(list.pairs, vec![(0, 1)]);
    }

    #[test]
    #[should_panic]
    fn oversized_cutoff_rejected() {
        let pbox = PbcBox::new(15.0, 40.0, 40.0);
        let topo = free_topo(2);
        let positions = vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)];
        let _ = NeighborList::build(&topo, &pbox, &positions, 8.0, 1.0);
    }
}
