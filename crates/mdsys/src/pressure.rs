//! Virial and pressure for the classic (pairwise) model.
//!
//! `P = (2 K + W) / (3 V)` with the internal virial
//! `W = sum_pairs r . F` (bonded + nonbonded). The PME reciprocal-space
//! virial is not implemented (the paper's study never measures
//! pressure); `pressure_classic` documents that restriction.

use crate::bonded::bonded_energy_forces;
use crate::nonbonded::{nonbonded_energy_forces, NonbondedOptions};
use crate::pbc::PbcBox;
use crate::system::System;
use crate::topology::Topology;
use crate::vec3::Vec3;

/// Conversion from kcal/(mol A^3) to atmospheres.
pub const KCAL_PER_MOL_A3_TO_ATM: f64 = 68_568.415;

/// Internal virial `W = sum r_ij . F_ij` of the pairwise interactions
/// (bonded + nonbonded with the given options), in kcal/mol.
pub fn pairwise_virial(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    pairs: &[(u32, u32)],
    opts: &NonbondedOptions,
) -> f64 {
    // The virial of strictly pairwise forces equals sum_i r_i . F_i for
    // minimum-image consistent interactions; computing it per
    // interaction keeps it exact under PBC. We recover per-pair forces
    // by evaluating each term in isolation.
    let mut virial = 0.0;

    // Nonbonded pairs.
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        let mut f = vec![Vec3::ZERO; positions.len()];
        let (_, evaluated) =
            nonbonded_energy_forces(topo, pbox, positions, &[(i as u32, j as u32)], opts, &mut f);
        if evaluated == 0 {
            continue;
        }
        let r = pbox.min_image(positions[i], positions[j]);
        virial += r.dot(f[i]);
    }

    // Bonded terms: pairwise bonds contribute r . F exactly; angle,
    // dihedral and UB terms are multi-body — use the standard atomic
    // form sum_i r_i . F_i on the whole bonded force field, which is
    // valid when no bonded interaction spans more than half the box.
    let mut f = vec![Vec3::ZERO; positions.len()];
    bonded_energy_forces(topo, pbox, positions, &mut f);
    // Use positions relative to the first atom of each term's molecule
    // via the minimum-image anchor at atom 0 of the system.
    let anchor = positions[0];
    for (p, fi) in positions.iter().zip(&f) {
        virial += pbox.min_image(*p, anchor).dot(*fi);
    }
    virial
}

/// Instantaneous pressure of the *classic* model in atmospheres.
///
/// Only valid for the shift/switch model (no reciprocal-space term);
/// panics if called with zero volume.
pub fn pressure_classic(system: &System, pairs: &[(u32, u32)], opts: &NonbondedOptions) -> f64 {
    let v = system.pbox.volume();
    assert!(v > 0.0);
    let kinetic = system.kinetic_energy();
    let w = pairwise_virial(
        &system.topology,
        &system.pbox,
        &system.positions,
        pairs,
        opts,
    );
    (2.0 * kinetic + w) / (3.0 * v) * KCAL_PER_MOL_A3_TO_ATM
}

/// Ideal-gas reference pressure `N k T / V` in atmospheres.
pub fn pressure_ideal(n_atoms: usize, temperature: f64, volume: f64) -> f64 {
    n_atoms as f64 * crate::units::K_BOLTZMANN * temperature / volume * KCAL_PER_MOL_A3_TO_ATM
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::AtomClass;
    use crate::topology::Atom;

    #[test]
    fn ideal_gas_limit() {
        // Non-interacting particles (zero charge, pairs not listed):
        // pressure reduces to N k T / V.
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::OW,
                    charge: 0.0
                };
                50
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(30.0, 30.0, 30.0);
        let positions: Vec<Vec3> = (0..50)
            .map(|i| {
                Vec3::new(
                    (i % 5) as f64 * 6.0,
                    ((i / 5) % 5) as f64 * 6.0,
                    (i / 25) as f64 * 6.0,
                )
            })
            .collect();
        let mut sys = System::new(topo, pbox, positions);
        sys.assign_velocities(300.0, 3);
        let opts = NonbondedOptions::classic();
        let p = pressure_classic(&sys, &[], &opts);
        let p_ideal = pressure_ideal(50, sys.temperature(), sys.pbox.volume());
        assert!(
            (p - p_ideal).abs() < 1e-6 * p_ideal.abs().max(1.0),
            "{p} vs {p_ideal}"
        );
    }

    #[test]
    fn compressed_pair_pushes_outward() {
        // Two LJ atoms inside their minimum distance: positive virial,
        // pressure above ideal.
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::OW,
                    charge: 0.0
                };
                2
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(25.0, 25.0, 25.0);
        let rmin = 2.0 * AtomClass::OW.lj().rmin_half;
        let positions = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(10.0 + 0.8 * rmin, 10.0, 10.0),
        ];
        let sys = System::new(topo, pbox, positions);
        let opts = NonbondedOptions::classic();
        let w = pairwise_virial(&sys.topology, &sys.pbox, &sys.positions, &[(0, 1)], &opts);
        assert!(w > 0.0, "repulsive pair must have positive virial, got {w}");
    }

    #[test]
    fn attractive_pair_pulls_inward() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::OW,
                    charge: 0.0
                };
                2
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(25.0, 25.0, 25.0);
        let rmin = 2.0 * AtomClass::OW.lj().rmin_half;
        let positions = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(10.0 + 1.3 * rmin, 10.0, 10.0),
        ];
        let sys = System::new(topo, pbox, positions);
        let opts = NonbondedOptions::classic();
        let w = pairwise_virial(&sys.topology, &sys.pbox, &sys.positions, &[(0, 1)], &opts);
        assert!(
            w < 0.0,
            "attractive pair must have negative virial, got {w}"
        );
    }

    #[test]
    fn stretched_bond_contributes_negative_virial() {
        // A bond stretched past equilibrium pulls atoms together.
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                2
            ],
            ..Default::default()
        };
        topo.bonds.push(crate::topology::Bond {
            i: 0,
            j: 1,
            param: crate::forcefield::params::BOND_HEAVY,
        });
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(25.0, 25.0, 25.0);
        let positions = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(7.0, 5.0, 5.0)];
        let w = pairwise_virial(&topo, &pbox, &positions, &[], &NonbondedOptions::classic());
        assert!(w < 0.0, "stretched bond virial {w}");
    }
}
