//! Synthetic system builders.
//!
//! The paper's workload is myoglobin (153 residues, alpha-helical) with
//! a carbon monoxide molecule, 337 waters and one sulfate ion — 3552
//! atoms, PME grid 80 x 36 x 48. We cannot redistribute CHARMM input
//! files, so [`myoglobin_system`] generates a myoglobin-*class* system:
//! the same atom count, the same box/grid, an 8-helix bundle of 153
//! residues with pseudo-sidechains, the same solvation-shell setup.
//! Workload characterization depends on atom count, pair density within
//! the 10 A cutoff and the FFT grid — all of which are matched.

use crate::forcefield::{params, AtomClass};
use crate::pbc::PbcBox;
use crate::system::System;
use crate::topology::{Angle, Atom, Bond, Dihedral, Improper, Topology};
use crate::vec3::Vec3;

/// Total atom count of the paper's molecular system.
pub const MYOGLOBIN_ATOMS: usize = 3552;
/// Residue count of myoglobin.
pub const MYOGLOBIN_RESIDUES: usize = 153;
/// Number of water molecules in the paper's setup.
pub const MYOGLOBIN_WATERS: usize = 337;

/// Box edge lengths matched to the paper's 80 x 36 x 48 PME grid
/// (mesh spacings 0.75 / 1.0 / 1.0 A).
pub const MYOGLOBIN_BOX: (f64, f64, f64) = (60.0, 36.0, 48.0);

/// Builds a periodic box of flexible TIP3P-like waters on a cubic
/// lattice: `n_side^3` molecules spaced by `spacing`.
///
/// The box is padded to at least 24.2 A per edge so the standard 10 A
/// cutoff plus 2 A skin remains valid for small lattices.
pub fn water_box(n_side: usize, spacing: f64) -> System {
    assert!(n_side > 0 && spacing > 2.5, "waters would overlap");
    let extent = n_side as f64 * spacing;
    let edge = (extent).max(24.2);
    let pbox = PbcBox::new(edge, edge, edge);

    let mut topo = Topology::default();
    let mut positions = Vec::new();
    let mut idx = 0usize;
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let o = Vec3::new(
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                );
                add_water(&mut topo, &mut positions, o, idx);
                idx += 1;
            }
        }
    }
    topo.rebuild_exclusions();
    System::new(topo, pbox, positions)
}

/// Appends one water molecule at oxygen position `o`, orientation
/// varied deterministically by `index`.
fn add_water(topo: &mut Topology, positions: &mut Vec<Vec3>, o: Vec3, index: usize) {
    let base = topo.atoms.len();
    topo.atoms.push(Atom {
        class: AtomClass::OW,
        charge: -0.834,
    });
    topo.atoms.push(Atom {
        class: AtomClass::HW,
        charge: 0.417,
    });
    topo.atoms.push(Atom {
        class: AtomClass::HW,
        charge: 0.417,
    });

    // Rotate the H-O-H plane by an index-dependent angle so the lattice
    // is not artificially aligned.
    let phi = index as f64 * 2.399963; // golden angle
    let half = params::ANGLE_WATER.theta0 / 2.0;
    let r = params::BOND_WATER_OH.r0;
    let (s, c) = phi.sin_cos();
    let e1 = Vec3::new(c, s, 0.0);
    let e2 = Vec3::new(-s * 0.6, c * 0.6, 0.8);
    let h1 = o + (e1 * half.cos() + e2 * half.sin()) * r;
    let h2 = o + (e1 * half.cos() - e2 * half.sin()) * r;
    positions.push(o);
    positions.push(h1);
    positions.push(h2);

    topo.bonds.push(Bond {
        i: base,
        j: base + 1,
        param: params::BOND_WATER_OH,
    });
    topo.bonds.push(Bond {
        i: base,
        j: base + 2,
        param: params::BOND_WATER_OH,
    });
    topo.angles.push(Angle {
        i: base + 1,
        j: base,
        k: base + 2,
        param: params::ANGLE_WATER,
    });
}

/// Options for the myoglobin-class builder.
#[derive(Debug, Clone, Copy)]
pub struct MyoglobinOptions {
    /// Steepest-descent steps run after assembly to relax synthetic
    /// contacts (0 = raw geometry).
    pub minimize_steps: usize,
    /// Temperature for the initial Maxwell-Boltzmann velocities (K).
    pub temperature: f64,
    /// RNG seed for velocities.
    pub seed: u64,
}

impl Default for MyoglobinOptions {
    fn default() -> Self {
        MyoglobinOptions {
            minimize_steps: 150,
            temperature: 300.0,
            seed: 2002,
        }
    }
}

/// Builds the full 3552-atom myoglobin-class system with default
/// options (relaxed, 300 K velocities).
pub fn myoglobin_system() -> System {
    myoglobin_system_with(MyoglobinOptions::default())
}

/// Builds the raw (unrelaxed, zero-velocity) system — cheap enough for
/// debug-mode tests.
pub fn myoglobin_raw() -> System {
    myoglobin_system_with(MyoglobinOptions {
        minimize_steps: 0,
        temperature: 0.0,
        seed: 0,
    })
}

/// Builds the myoglobin-class system with explicit options.
pub fn myoglobin_system_with(opts: MyoglobinOptions) -> System {
    let (lx, ly, lz) = MYOGLOBIN_BOX;
    let pbox = PbcBox::new(lx, ly, lz);
    let mut topo = Topology::default();
    let mut positions: Vec<Vec3> = Vec::with_capacity(MYOGLOBIN_ATOMS);

    build_protein(&mut topo, &mut positions);
    let protein_atoms = topo.atoms.len();
    debug_assert_eq!(protein_atoms, 2534);

    // Candidate solvent sites on a 3.1 A lattice, kept clear of the
    // protein.
    let sites = solvent_sites(&pbox, &positions);

    // Carbon monoxide in the first free pocket.
    add_carbon_monoxide(&mut topo, &mut positions, sites[0]);
    // Sulfate in the second.
    add_sulfate(&mut topo, &mut positions, sites[1]);
    // 337 waters fill the remaining sites in scan order.
    for (w, &site) in sites[2..].iter().take(MYOGLOBIN_WATERS).enumerate() {
        add_water(&mut topo, &mut positions, site, w);
    }
    assert_eq!(
        topo.atoms.len(),
        MYOGLOBIN_ATOMS,
        "builder produced {} atoms (need more solvent sites?)",
        topo.atoms.len()
    );
    topo.rebuild_exclusions();
    topo.validate().expect("generated topology is valid");

    relieve_clashes(&topo, &pbox, &mut positions, 0.9, 60);

    let mut system = System::new(topo, pbox, positions);
    if opts.minimize_steps > 0 {
        crate::minimize::minimize(
            &mut system,
            crate::energy::EnergyModel::Classic,
            opts.minimize_steps,
        );
    }
    if opts.temperature > 0.0 {
        system.assign_velocities(opts.temperature, opts.seed);
    }
    system
}

/// 153 residues in an 8-helix bundle; 2534 atoms.
fn build_protein(topo: &mut Topology, positions: &mut Vec<Vec3>) {
    // Helix axis anchors (x = along the helix).
    let anchors = [
        (12.5, 9.0),
        (12.5, 19.5),
        (12.5, 30.0),
        (12.5, 40.5),
        (23.5, 9.0),
        (23.5, 19.5),
        (23.5, 30.0),
        (23.5, 40.5),
    ];
    let helix_lengths = [19usize, 19, 19, 19, 19, 19, 19, 20];
    debug_assert_eq!(helix_lengths.iter().sum::<usize>(), MYOGLOBIN_RESIDUES);

    let mut residue = 0usize;
    for (h, (&(cy, cz), &len)) in anchors.iter().zip(&helix_lengths).enumerate() {
        let x0 = 15.0;
        let flip = h % 2 == 1; // antiparallel bundle
        let mut prev_c: Option<(usize, usize)> = None; // (C index, CA index)
        for i in 0..len {
            // Sidechain size: first 86 residues get 11 atoms, rest 10,
            // so the protein totals exactly 2534 atoms.
            let side_k = if residue < 86 { 11 } else { 10 };
            let charged = residue == 10 || residue == 100;
            prev_c = Some(add_residue(
                topo, positions, cy, cz, x0, i, flip, side_k, charged, prev_c,
            ));
            residue += 1;
        }
    }
    debug_assert_eq!(residue, MYOGLOBIN_RESIDUES);
}

/// Adds one residue on the helix around axis `(y=cy, z=cz)`; returns
/// the `(C, CA)` indices for the next peptide link.
#[allow(clippy::too_many_arguments)]
fn add_residue(
    topo: &mut Topology,
    positions: &mut Vec<Vec3>,
    cy: f64,
    cz: f64,
    x0: f64,
    i: usize,
    flip: bool,
    side_k: usize,
    charged: bool,
    prev: Option<(usize, usize)>,
) -> (usize, usize) {
    // Ideal alpha-helix: 1.5 A rise, 100 degrees per residue.
    let phase = 100.0_f64.to_radians() * i as f64;
    let rise = 1.5 * i as f64;
    let place = |radius: f64, dphase: f64, dx: f64| -> Vec3 {
        let p = phase + dphase;
        let x = if flip {
            x0 + 28.5 - (rise + dx)
        } else {
            x0 + rise + dx
        };
        Vec3::new(x, cy + radius * p.cos(), cz + radius * p.sin())
    };
    let axis_x = if flip { -1.0 } else { 1.0 };

    let n_pos = place(1.5, -28.0_f64.to_radians(), -0.9);
    let ca_pos = place(2.3, 0.0, 0.0);
    let c_pos = place(1.6, 27.0_f64.to_radians(), 1.1);
    let o_pos = place(2.83, 27.0_f64.to_radians(), 1.1);
    let h_pos = place(2.5, -28.0_f64.to_radians(), -0.9);
    // Outward radial unit vector at the CA phase.
    let radial = Vec3::new(0.0, phase.cos(), phase.sin());
    let tang = Vec3::new(0.0, -phase.sin(), phase.cos());
    let xhat = Vec3::new(axis_x, 0.0, 0.0);
    let ha_pos = ca_pos + (radial * 0.5 + xhat * 0.85).normalized() * 1.09;
    let cb_pos = ca_pos + (radial * 0.94 - xhat * 0.34).normalized() * 1.5;

    let base = topo.atoms.len();
    let (n_i, h_i, ca_i, ha_i, c_i, o_i, cb_i) = (
        base,
        base + 1,
        base + 2,
        base + 3,
        base + 4,
        base + 5,
        base + 6,
    );

    topo.atoms.push(Atom {
        class: AtomClass::N,
        charge: -0.47,
    });
    topo.atoms.push(Atom {
        class: AtomClass::H,
        charge: 0.31,
    });
    topo.atoms.push(Atom {
        class: AtomClass::CT,
        charge: 0.07,
    });
    topo.atoms.push(Atom {
        class: AtomClass::HA,
        charge: 0.09,
    });
    topo.atoms.push(Atom {
        class: AtomClass::C,
        charge: 0.51,
    });
    topo.atoms.push(Atom {
        class: AtomClass::O,
        charge: -0.51,
    });
    let n_star = side_k - 1;
    let cb_charge = -0.05 * n_star as f64 + if charged { 1.0 } else { 0.0 };
    topo.atoms.push(Atom {
        class: AtomClass::CT,
        charge: cb_charge,
    });
    positions.extend_from_slice(&[n_pos, h_pos, ca_pos, ha_pos, c_pos, o_pos, cb_pos]);

    // Pseudo-sidechain: a hemisphere of H-class atoms around CB, facing
    // away from CA (spherical Fibonacci arrangement).
    let mut star_ids = Vec::with_capacity(n_star);
    for m in 0..n_star {
        let zc = 0.15 + 0.8 * m as f64 / (n_star.max(2) - 1) as f64; // along radial
        let az = 2.399963 * m as f64;
        let rr = (1.0 - zc * zc).sqrt();
        let dir = radial * zc + (tang * az.cos() + xhat * az.sin()) * rr;
        let id = topo.atoms.len();
        topo.atoms.push(Atom {
            class: AtomClass::H,
            charge: 0.05,
        });
        positions.push(cb_pos + dir * 1.3);
        star_ids.push(id);
    }

    // Intra-residue bonds.
    topo.bonds.push(Bond {
        i: n_i,
        j: h_i,
        param: params::BOND_XH,
    });
    topo.bonds.push(Bond {
        i: n_i,
        j: ca_i,
        param: params::BOND_HEAVY,
    });
    topo.bonds.push(Bond {
        i: ca_i,
        j: ha_i,
        param: params::BOND_XH,
    });
    topo.bonds.push(Bond {
        i: ca_i,
        j: c_i,
        param: params::BOND_HEAVY,
    });
    topo.bonds.push(Bond {
        i: c_i,
        j: o_i,
        param: params::BOND_CO_DOUBLE,
    });
    topo.bonds.push(Bond {
        i: ca_i,
        j: cb_i,
        param: params::BOND_HEAVY,
    });
    for &s in &star_ids {
        topo.bonds.push(Bond {
            i: cb_i,
            j: s,
            param: params::BOND_XH,
        });
    }

    // Intra-residue angles.
    topo.angles.push(Angle {
        i: h_i,
        j: n_i,
        k: ca_i,
        param: params::ANGLE_XH,
    });
    topo.angles.push(Angle {
        i: n_i,
        j: ca_i,
        k: c_i,
        param: params::ANGLE_BACKBONE,
    });
    topo.angles.push(Angle {
        i: n_i,
        j: ca_i,
        k: ha_i,
        param: params::ANGLE_XH,
    });
    topo.angles.push(Angle {
        i: n_i,
        j: ca_i,
        k: cb_i,
        param: params::ANGLE_HEAVY,
    });
    topo.angles.push(Angle {
        i: ca_i,
        j: c_i,
        k: o_i,
        param: params::ANGLE_HEAVY,
    });
    if let Some(&s0) = star_ids.first() {
        topo.angles.push(Angle {
            i: ca_i,
            j: cb_i,
            k: s0,
            param: params::ANGLE_XH,
        });
    }
    for w in star_ids.windows(2) {
        topo.angles.push(Angle {
            i: w[0],
            j: cb_i,
            k: w[1],
            param: params::ANGLE_XH,
        });
    }

    // Peptide link to the previous residue.
    if let Some((pc, pca)) = prev {
        topo.bonds.push(Bond {
            i: pc,
            j: n_i,
            param: params::BOND_PEPTIDE,
        });
        topo.angles.push(Angle {
            i: pca,
            j: pc,
            k: n_i,
            param: params::ANGLE_HEAVY,
        });
        // O of the previous residue is pc + 1.
        topo.angles.push(Angle {
            i: pc + 1,
            j: pc,
            k: n_i,
            param: params::ANGLE_HEAVY,
        });
        topo.angles.push(Angle {
            i: pc,
            j: n_i,
            k: ca_i,
            param: params::ANGLE_HEAVY,
        });
        topo.angles.push(Angle {
            i: pc,
            j: n_i,
            k: h_i,
            param: params::ANGLE_XH,
        });
        // phi: C- N CA C ; psi of previous: N- CA- C- N ; omega: CA- C- N CA.
        topo.dihedrals.push(Dihedral {
            i: pc,
            j: n_i,
            k: ca_i,
            l: c_i,
            param: params::DIHEDRAL_BACKBONE,
        });
        topo.dihedrals.push(Dihedral {
            i: pca,
            j: pc,
            k: n_i,
            l: ca_i,
            param: params::DIHEDRAL_OMEGA,
        });
        // Improper keeping the carbonyl planar: central C first.
        topo.impropers.push(Improper {
            i: pc,
            j: pca,
            k: n_i,
            l: pc + 1,
            param: params::IMPROPER_CARBONYL,
        });
    }
    // A sidechain torsion per residue.
    if star_ids.len() >= 2 {
        topo.dihedrals.push(Dihedral {
            i: n_i,
            j: ca_i,
            k: cb_i,
            l: star_ids[0],
            param: params::DIHEDRAL_SIDECHAIN,
        });
    }
    (c_i, ca_i)
}

fn add_carbon_monoxide(topo: &mut Topology, positions: &mut Vec<Vec3>, at: Vec3) {
    let base = topo.atoms.len();
    topo.atoms.push(Atom {
        class: AtomClass::C,
        charge: 0.021,
    });
    topo.atoms.push(Atom {
        class: AtomClass::O,
        charge: -0.021,
    });
    positions.push(at);
    positions.push(at + Vec3::new(params::BOND_CARBON_MONOXIDE.r0, 0.0, 0.0));
    topo.bonds.push(Bond {
        i: base,
        j: base + 1,
        param: params::BOND_CARBON_MONOXIDE,
    });
}

fn add_sulfate(topo: &mut Topology, positions: &mut Vec<Vec3>, at: Vec3) {
    let base = topo.atoms.len();
    topo.atoms.push(Atom {
        class: AtomClass::S,
        charge: 1.18,
    });
    positions.push(at);
    // Tetrahedral oxygens.
    let dirs = [
        Vec3::new(1.0, 1.0, 1.0),
        Vec3::new(1.0, -1.0, -1.0),
        Vec3::new(-1.0, 1.0, -1.0),
        Vec3::new(-1.0, -1.0, 1.0),
    ];
    for d in dirs {
        let id = topo.atoms.len();
        topo.atoms.push(Atom {
            class: AtomClass::O,
            charge: -0.795,
        });
        positions.push(at + d.normalized() * params::BOND_SULFATE.r0);
        topo.bonds.push(Bond {
            i: base,
            j: id,
            param: params::BOND_SULFATE,
        });
    }
    for a in 0..4usize {
        for b in (a + 1)..4 {
            topo.angles.push(Angle {
                i: base + 1 + a,
                j: base,
                k: base + 1 + b,
                param: params::ANGLE_SULFATE,
            });
        }
    }
}

/// Lattice points at least 3.0 A away from every existing atom.
///
/// The candidate scan is embarrassingly parallel; rayon's ordered
/// `filter`/`collect` keeps the result deterministic.
fn solvent_sites(pbox: &PbcBox, occupied: &[Vec3]) -> Vec<Vec3> {
    use rayon::prelude::*;
    let spacing = 3.1;
    let clear = 3.0;
    let clear2 = clear * clear;
    let counts = [
        (pbox.lengths.x / spacing) as usize,
        (pbox.lengths.y / spacing) as usize,
        (pbox.lengths.z / spacing) as usize,
    ];
    let total = counts[0] * counts[1] * counts[2];
    (0..total)
        .into_par_iter()
        .filter_map(|idx| {
            let ix = idx / (counts[1] * counts[2]);
            let iy = (idx / counts[2]) % counts[1];
            let iz = idx % counts[2];
            let p = Vec3::new(
                (ix as f64 + 0.5) * spacing,
                (iy as f64 + 0.5) * spacing,
                (iz as f64 + 0.5) * spacing,
            );
            occupied
                .iter()
                .all(|&q| pbox.min_image(p, q).norm_sqr() >= clear2)
                .then_some(p)
        })
        .collect()
}

/// Pushes apart non-excluded atom pairs closer than `limit`, iterating
/// until no such pair remains (or `max_iter`). Keeps synthetic geometry
/// free of singular Lennard-Jones contacts before minimization.
pub fn relieve_clashes(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &mut [Vec3],
    limit: f64,
    max_iter: usize,
) {
    use crate::neighbor::NeighborList;
    let limit2 = limit * limit;
    for _ in 0..max_iter {
        let list = NeighborList::build(topo, pbox, positions, limit, 0.05);
        let mut moved = false;
        for &(i, j) in &list.pairs {
            let (i, j) = (i as usize, j as usize);
            let d = pbox.min_image(positions[i], positions[j]);
            let r2 = d.norm_sqr();
            if r2 < limit2 {
                let r = r2.sqrt().max(1e-6);
                let push = (limit - r) * 0.55;
                let dir = if r > 1e-5 {
                    d / r
                } else {
                    // Coincident points: separate along a deterministic axis.
                    Vec3::new(1.0, 0.0, 0.0)
                };
                positions[i] += dir * push;
                positions[j] -= dir * push;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_box_counts_and_neutrality() {
        let sys = water_box(3, 3.1);
        assert_eq!(sys.n_atoms(), 81);
        assert_eq!(sys.topology.bonds.len(), 54);
        assert_eq!(sys.topology.angles.len(), 27);
        assert!(sys.topology.total_charge().abs() < 1e-12);
        assert!(sys.pbox.min_half_edge() >= 12.0);
    }

    #[test]
    fn water_geometry_is_near_equilibrium() {
        let sys = water_box(2, 3.2);
        for b in &sys.topology.bonds {
            let r = sys.pbox.distance(sys.positions[b.i], sys.positions[b.j]);
            assert!((r - b.param.r0).abs() < 1e-9, "bond length {r}");
        }
    }

    #[test]
    fn myoglobin_atom_count_is_exact() {
        let sys = myoglobin_raw();
        assert_eq!(sys.n_atoms(), MYOGLOBIN_ATOMS);
    }

    #[test]
    fn myoglobin_is_neutral() {
        let sys = myoglobin_raw();
        assert!(
            sys.topology.total_charge().abs() < 1e-9,
            "net charge {}",
            sys.topology.total_charge()
        );
    }

    #[test]
    fn myoglobin_topology_is_valid_and_bonded() {
        let sys = myoglobin_raw();
        sys.topology.validate().unwrap();
        assert!(sys.topology.bonds.len() > 3000);
        assert!(sys.topology.angles.len() > 2000);
        assert!(sys.topology.dihedrals.len() > 250);
        assert!(sys.topology.impropers.len() > 100);
    }

    #[test]
    fn myoglobin_has_no_severe_clashes() {
        let sys = myoglobin_raw();
        let list = crate::neighbor::NeighborList::build(
            &sys.topology,
            &sys.pbox,
            &sys.positions,
            0.88,
            0.0,
        );
        assert!(
            list.pairs.is_empty(),
            "found {} contacts under 0.88 A, e.g. {:?}",
            list.pairs.len(),
            list.pairs.first()
        );
    }

    #[test]
    fn myoglobin_atoms_inside_box() {
        let sys = myoglobin_raw();
        // Not strictly required by PBC, but the builder should produce
        // coordinates near the primary cell.
        for p in &sys.positions {
            assert!(p.x > -10.0 && p.x < 70.0);
            assert!(p.y > -10.0 && p.y < 46.0);
            assert!(p.z > -10.0 && p.z < 58.0);
        }
    }

    #[test]
    fn relieve_clashes_separates_coincident_atoms() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                2
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(30.0, 30.0, 30.0);
        let mut positions = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(5.05, 5.0, 5.0)];
        relieve_clashes(&topo, &pbox, &mut positions, 0.9, 50);
        assert!(pbox.distance(positions[0], positions[1]) >= 0.9 - 1e-6);
    }
}
