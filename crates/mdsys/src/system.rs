//! The simulation system: topology + box + coordinates + velocities.

use crate::pbc::PbcBox;
use crate::topology::Topology;
use crate::units::K_BOLTZMANN;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A complete molecular system ready for energy evaluation or dynamics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct System {
    /// Bonded topology, charges, LJ classes.
    pub topology: Topology,
    /// Periodic box.
    pub pbox: PbcBox,
    /// Positions in Angstrom.
    pub positions: Vec<Vec3>,
    /// Velocities in Angstrom/ps.
    pub velocities: Vec<Vec3>,
}

impl System {
    /// Creates a system with zero velocities.
    ///
    /// # Panics
    /// Panics if `positions.len() != topology.n_atoms()`.
    pub fn new(topology: Topology, pbox: PbcBox, positions: Vec<Vec3>) -> Self {
        assert_eq!(
            positions.len(),
            topology.n_atoms(),
            "coordinate count mismatch"
        );
        let n = positions.len();
        System {
            topology,
            pbox,
            positions,
            velocities: vec![Vec3::ZERO; n],
        }
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.topology.n_atoms()
    }

    /// Kinetic energy in kcal/mol: `sum 1/2 m v^2 / ACCEL_CONV`.
    pub fn kinetic_energy(&self) -> f64 {
        let conv = crate::units::ACCEL_CONV;
        self.topology
            .atoms
            .iter()
            .zip(&self.velocities)
            .map(|(a, v)| 0.5 * a.class.mass() * v.norm_sqr() / conv)
            .sum()
    }

    /// Instantaneous temperature in Kelvin from the kinetic energy
    /// (3N degrees of freedom; no constraint correction).
    pub fn temperature(&self) -> f64 {
        let dof = 3.0 * self.n_atoms() as f64;
        2.0 * self.kinetic_energy() / (dof * K_BOLTZMANN)
    }

    /// Assigns Maxwell-Boltzmann velocities at temperature `t` using a
    /// deterministic xorshift generator seeded with `seed`, then removes
    /// the centre-of-mass drift.
    pub fn assign_velocities(&mut self, t: f64, seed: u64) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        // Box-Muller pairs.
        let mut gauss = move || {
            let u1: f64 = uniform().max(1e-300);
            let u2: f64 = uniform();
            (-2.0f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let conv = crate::units::ACCEL_CONV;
        for (a, v) in self.topology.atoms.iter().zip(self.velocities.iter_mut()) {
            // sigma^2 = kB T / m (in kcal/mol units, converted to A/ps).
            let sigma = (K_BOLTZMANN * t / a.class.mass() * conv).sqrt();
            *v = Vec3::new(gauss() * sigma, gauss() * sigma, gauss() * sigma);
        }
        self.remove_com_motion();
    }

    /// Removes centre-of-mass translational velocity.
    pub fn remove_com_motion(&mut self) {
        let total_mass = self.topology.total_mass();
        let mut p = Vec3::ZERO;
        for (a, v) in self.topology.atoms.iter().zip(&self.velocities) {
            p += *v * a.class.mass();
        }
        let v_com = p / total_mass;
        for v in &mut self.velocities {
            *v -= v_com;
        }
    }

    /// Wraps all positions into the primary cell.
    pub fn wrap_positions(&mut self) {
        for p in &mut self.positions {
            *p = self.pbox.wrap(*p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::AtomClass;
    use crate::topology::Atom;

    fn free_system(n: usize) -> System {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::OW,
                    charge: 0.0
                };
                n
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(30.0, 30.0, 30.0);
        let positions = (0..n)
            .map(|i| Vec3::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0, 1.0))
            .collect();
        System::new(topo, pbox, positions)
    }

    #[test]
    fn velocity_assignment_hits_target_temperature() {
        let mut sys = free_system(500);
        sys.assign_velocities(300.0, 42);
        let t = sys.temperature();
        assert!((t - 300.0).abs() < 25.0, "temperature {t}");
    }

    #[test]
    fn com_motion_removed() {
        let mut sys = free_system(100);
        sys.assign_velocities(300.0, 7);
        let mut p = Vec3::ZERO;
        for (a, v) in sys.topology.atoms.iter().zip(&sys.velocities) {
            p += *v * a.class.mass();
        }
        assert!(p.norm() < 1e-9, "net momentum {p:?}");
    }

    #[test]
    fn velocity_assignment_is_deterministic() {
        let mut s1 = free_system(20);
        let mut s2 = free_system(20);
        s1.assign_velocities(300.0, 9);
        s2.assign_velocities(300.0, 9);
        assert_eq!(s1.velocities, s2.velocities);
        s2.assign_velocities(300.0, 10);
        assert_ne!(s1.velocities, s2.velocities);
    }

    #[test]
    fn kinetic_energy_zero_at_rest() {
        let sys = free_system(10);
        assert_eq!(sys.kinetic_energy(), 0.0);
        assert_eq!(sys.temperature(), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_coordinates_rejected() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::OW,
                    charge: 0.0
                };
                3
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        let _ = System::new(topo, PbcBox::new(10.0, 10.0, 10.0), vec![Vec3::ZERO; 2]);
    }
}
