//! System serialization: JSON checkpoints (full fidelity, via serde)
//! and XYZ trajectory frames (interoperable with standard viewers).

use crate::system::System;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Saves a full-fidelity JSON checkpoint of the system.
pub fn save_checkpoint(system: &System, path: impl AsRef<Path>) -> io::Result<()> {
    let json =
        serde_json::to_string(system).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Loads a JSON checkpoint.
pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<System> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Element symbol used in XYZ output for an atom class.
fn element(class: crate::forcefield::AtomClass) -> &'static str {
    use crate::forcefield::AtomClass::*;
    match class {
        C | CT => "C",
        N => "N",
        H | HA | HW => "H",
        O | OW => "O",
        S => "S",
    }
}

/// Writes one XYZ frame (atom count, comment, element + coordinates).
pub fn write_xyz_frame(system: &System, comment: &str, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{}", system.n_atoms())?;
    writeln!(w, "{}", comment.replace('\n', " "))?;
    for (a, p) in system.topology.atoms.iter().zip(&system.positions) {
        writeln!(w, "{} {:.6} {:.6} {:.6}", element(a.class), p.x, p.y, p.z)?;
    }
    Ok(())
}

/// Reads coordinates back from a single-frame XYZ stream (topology is
/// not reconstructable from XYZ; returns element symbols + positions).
pub fn read_xyz_frame(r: &mut impl BufRead) -> io::Result<Vec<(String, crate::vec3::Vec3)>> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let n: usize = line
        .trim()
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad count: {e}")))?;
    line.clear();
    r.read_line(&mut line)?; // comment
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        line.clear();
        r.read_line(&mut line)?;
        let mut it = line.split_whitespace();
        let sym = it
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing element"))?
            .to_string();
        let mut coord = [0.0f64; 3];
        for c in &mut coord {
            *c = it
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing coord"))?
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        }
        out.push((sym, crate::vec3::Vec3::new(coord[0], coord[1], coord[2])));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;
    use std::io::BufReader;

    #[test]
    fn json_checkpoint_roundtrip() {
        let sys = water_box(2, 3.1);
        let dir = std::env::temp_dir().join("cpc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        save_checkpoint(&sys, &path).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.n_atoms(), sys.n_atoms());
        // JSON float formatting can differ in the last ulp.
        for (a, b) in loaded.positions.iter().zip(&sys.positions) {
            assert!((*a - *b).norm() < 1e-12);
        }
        assert_eq!(loaded.topology.bonds.len(), sys.topology.bonds.len());
        assert_eq!(loaded.pbox, sys.pbox);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn xyz_roundtrip() {
        let sys = water_box(2, 3.1);
        let mut buf = Vec::new();
        write_xyz_frame(&sys, "test frame", &mut buf).unwrap();
        let frame = read_xyz_frame(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(frame.len(), sys.n_atoms());
        assert_eq!(frame[0].0, "O");
        assert_eq!(frame[1].0, "H");
        for ((_, p), q) in frame.iter().zip(&sys.positions) {
            assert!((*p - *q).norm() < 1e-5);
        }
    }

    #[test]
    fn xyz_rejects_garbage() {
        let garbage = b"not a number\nxx\n";
        assert!(read_xyz_frame(&mut BufReader::new(&garbage[..])).is_err());
    }

    #[test]
    fn xyz_comment_newlines_are_sanitized() {
        let sys = water_box(1, 3.1);
        let mut buf = Vec::new();
        write_xyz_frame(&sys, "line1\nline2", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "line1 line2");
        assert_eq!(lines.len(), 2 + sys.n_atoms());
    }
}
