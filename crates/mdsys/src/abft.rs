//! Algorithm-based fault tolerance (ABFT) primitives.
//!
//! The replicated-data decomposition computes every array redundantly:
//! each rank integrates the same atoms, spreads the same charges and
//! reduces the same partial energies. That redundancy makes silent data
//! corruption *checkable* with invariants intrinsic to the MD algorithm
//! itself, without perturbing the arithmetic being checked:
//!
//! * **time-bracketed tile checksums** — digest an array when it is
//!   produced (e.g. forces right after the reduction) and verify the
//!   digest when it is consumed (right before the kick). Any bit that
//!   changed in between is localized to a tile of [`DEFAULT_TILE`]
//!   atoms and can be recomputed in place;
//! * **physics invariants** — Newton's third law makes pairwise forces
//!   sum to zero ([`force_sum_residual`]) and B-spline interpolation
//!   partitions unity so the PME charge grid sums to the total system
//!   charge;
//! * **replica voting** — ranks exchange one compact digest of their
//!   replicated state per energy call; a strict-majority [`vote`]
//!   localizes a minority rank whose replica diverged.
//!
//! All digests are order-dependent folds over raw IEEE-754 bit
//! patterns, so checks are bit-exact: a fault-free run produces zero
//! [`Corruption`] verdicts by construction, and a single flipped bit
//! anywhere in a checked array is detected with certainty (up to a
//! 2^-64 hash collision). Digests that travel between ranks are masked
//! to [`DIGEST_BITS`] bits so they are exactly representable as `f64`
//! payloads on the existing control channel.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default number of atoms per checksum tile.
pub const DEFAULT_TILE: usize = 8;

/// Digests exchanged between ranks are masked to this many bits so the
/// value round-trips exactly through an `f64` control-message payload
/// (integers below 2^53 are exactly representable).
pub const DIGEST_BITS: u32 = 52;

/// Mask selecting the low [`DIGEST_BITS`] bits of a digest.
pub const DIGEST_MASK: u64 = (1u64 << DIGEST_BITS) - 1;

/// SplitMix64 finalizer: a cheap avalanche so a single flipped input
/// bit flips ~half the digest bits.
#[inline]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Order-dependent digest of raw `f64` bit patterns.
///
/// `-0.0` and `+0.0` hash differently on purpose: the checksums guard
/// bit-exact replication, not numerical equality.
pub fn scalar_digest(xs: &[f64]) -> u64 {
    let mut h = 0x243f_6a88_85a3_08d3u64; // pi fractional bits
    for x in xs {
        h = mix(h ^ x.to_bits()).wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    h
}

/// Order-dependent combination of already-computed digests.
pub fn combine_digests(digests: &[u64]) -> u64 {
    let mut h = 0x1319_8a2e_0370_7344u64;
    for d in digests {
        h = mix(h ^ d).wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    h
}

/// Order-dependent digest of a `Vec3` slice (component-wise).
pub fn vec3_digest(vs: &[Vec3]) -> u64 {
    let mut h = 0x4528_21e6_38d0_1377u64; // e fractional bits
    for v in vs {
        h = mix(h ^ v.x.to_bits());
        h = mix(h ^ v.y.to_bits());
        h = mix(h ^ v.z.to_bits()).wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    h
}

/// Per-tile digests of a `Vec3` array: tile `t` covers atoms
/// `t*tile .. (t+1)*tile`. A corrupted atom is localized to its tile.
pub fn tile_digests(vs: &[Vec3], tile: usize) -> Vec<u64> {
    let tile = tile.max(1);
    vs.chunks(tile).map(vec3_digest).collect()
}

/// Indices of tiles whose digests differ between the recorded
/// (production-time) and observed (consumption-time) checksums.
pub fn mismatched_tiles(recorded: &[u64], observed: &[u64]) -> Vec<usize> {
    if recorded.len() != observed.len() {
        // A length change is itself a corruption of every tile involved.
        return (0..recorded.len().max(observed.len())).collect();
    }
    recorded
        .iter()
        .zip(observed)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(t, _)| t)
        .collect()
}

/// Relative residual of Newton's third law: `|Σ f| / max(Σ |f|, 1)`.
///
/// Pairwise forces cancel exactly in exact arithmetic; floating-point
/// reassociation leaves a residual many orders of magnitude below any
/// corruption a high-bit flip introduces.
pub fn force_sum_residual(forces: &[Vec3]) -> f64 {
    let mut sum = Vec3::ZERO;
    let mut scale = 0.0;
    for f in forces {
        sum += *f;
        scale += f.norm();
    }
    sum.norm() / scale.max(1.0)
}

/// Strict-majority vote over per-rank digests.
///
/// Returns the lowest rank whose digest disagrees with the value held
/// by a strict majority of the voters, or `None` when the voters agree
/// or no value reaches a strict majority (corruption is then detected
/// but cannot be localized to a rank).
pub fn vote(votes: &[(usize, u64)]) -> Option<usize> {
    if votes.len() < 3 {
        return None; // two voters cannot out-vote each other
    }
    let majority = votes.iter().find_map(|(_, candidate)| {
        let support = votes.iter().filter(|(_, d)| d == candidate).count();
        (2 * support > votes.len()).then_some(*candidate)
    })?;
    votes
        .iter()
        .filter(|(_, d)| *d != majority)
        .map(|(rank, _)| *rank)
        .min()
}

/// Which ABFT check fired, with the evidence it saw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// The replicated position array diverged from the redundant
    /// integration prediction in this checksum tile.
    Positions {
        /// Index of the corrupted tile.
        tile: usize,
    },
    /// The force array changed between the reduction that produced it
    /// and the kick that consumes it.
    Forces {
        /// Index of the corrupted tile.
        tile: usize,
    },
    /// Newton's-third-law force sum exceeded tolerance.
    ForceSum {
        /// Observed relative residual.
        residual: f64,
    },
    /// The PME charge grid no longer sums to the total system charge.
    PmeGrid {
        /// Observed relative residual.
        residual: f64,
    },
    /// Per-block checksums failed across the distributed-FFT transpose.
    Transpose {
        /// Number of corrupted blocks.
        blocks: usize,
    },
    /// Cross-rank replica vote localized a minority rank.
    Replica {
        /// Rank whose replicated state diverged.
        rank: usize,
    },
}

/// A typed verdict: an ABFT check detected corrupted data at `step`.
///
/// The verdict localizes the fault (tile or rank) so the degradation
/// ladder can respond proportionately: targeted recompute of the tile,
/// then rollback to the last checkpoint, then eviction of the rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Corruption {
    /// Step whose computation the corrupted data fed.
    pub step: u64,
    /// The check that fired and what it localized.
    pub kind: CorruptionKind,
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {}: ", self.step)?;
        match self.kind {
            CorruptionKind::Positions { tile } => {
                write!(f, "position checksum mismatch in tile {tile}")
            }
            CorruptionKind::Forces { tile } => {
                write!(f, "force checksum mismatch in tile {tile}")
            }
            CorruptionKind::ForceSum { residual } => {
                write!(f, "Newton force-sum residual {residual:.3e} over tolerance")
            }
            CorruptionKind::PmeGrid { residual } => {
                write!(f, "PME grid-charge residual {residual:.3e} over tolerance")
            }
            CorruptionKind::Transpose { blocks } => {
                write!(f, "{blocks} corrupted FFT-transpose block(s)")
            }
            CorruptionKind::Replica { rank } => {
                write!(f, "replica vote isolated rank {rank}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdc::flip_vec3_bit;

    fn sample_positions(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Vec3::new(0.37 * t - 1.5, (0.11 * t).sin() * 4.0, 2.0 - 0.05 * t * t)
            })
            .collect()
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest_and_localizes_the_tile() {
        let clean = sample_positions(24);
        let want = tile_digests(&clean, DEFAULT_TILE);
        for atom in [0, 7, 8, 23] {
            for axis in 0..3 {
                for bit in 0..64u8 {
                    let mut vs = clean.clone();
                    flip_vec3_bit(&mut vs, atom, axis, bit).expect("flip applies");
                    let got = tile_digests(&vs, DEFAULT_TILE);
                    let bad = mismatched_tiles(&want, &got);
                    assert_eq!(
                        bad,
                        vec![atom / DEFAULT_TILE],
                        "atom {atom} axis {axis} bit {bit} must be caught in its tile"
                    );
                }
            }
        }
    }

    #[test]
    fn digests_are_order_sensitive_and_distinguish_signed_zero() {
        assert_ne!(scalar_digest(&[1.0, 2.0]), scalar_digest(&[2.0, 1.0]));
        assert_ne!(scalar_digest(&[0.0]), scalar_digest(&[-0.0]));
        let a = [Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO];
        let b = [Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)];
        assert_ne!(vec3_digest(&a), vec3_digest(&b));
    }

    #[test]
    fn masked_digest_roundtrips_through_f64_exactly() {
        let d = vec3_digest(&sample_positions(9)) & DIGEST_MASK;
        assert_eq!((d as f64) as u64, d);
    }

    #[test]
    fn vote_localizes_a_strict_minority_and_abstains_otherwise() {
        assert_eq!(vote(&[(0, 7), (1, 7), (2, 9), (3, 7)]), Some(2));
        assert_eq!(vote(&[(0, 7), (1, 7), (2, 7)]), None, "agreement");
        assert_eq!(vote(&[(0, 1), (1, 2)]), None, "two voters cannot vote");
        assert_eq!(vote(&[(0, 1), (1, 2), (2, 3), (3, 1)]), None, "no majority");
    }

    #[test]
    fn newton_residual_is_tiny_for_action_reaction_pairs_and_flags_flips() {
        let mut forces = Vec::new();
        for i in 0..12 {
            let f = Vec3::new(1.0 + 0.3 * i as f64, -2.0 + 0.1 * i as f64, 0.7);
            forces.push(f);
            forces.push(-f);
        }
        assert!(force_sum_residual(&forces) < 1e-14);
        flip_vec3_bit(&mut forces, 3, 1, 60).expect("flip applies");
        assert!(force_sum_residual(&forces) > 1e-3);
    }

    #[test]
    fn corruption_verdicts_render_their_localization() {
        let c = Corruption {
            step: 4,
            kind: CorruptionKind::Positions { tile: 2 },
        };
        assert_eq!(
            c.to_string(),
            "step 4: position checksum mismatch in tile 2"
        );
        let r = Corruption {
            step: 9,
            kind: CorruptionKind::Replica { rank: 1 },
        };
        assert_eq!(r.to_string(), "step 9: replica vote isolated rank 1");
    }
}
