//! Bonded energy terms and their analytic forces: bonds, angles, proper
//! dihedrals and harmonic impropers.
//!
//! Every kernel adds its forces into the caller's force array and
//! returns the term energy plus the number of terms evaluated (the
//! operation count feeds the virtual-cluster cost model).

use crate::pbc::PbcBox;
use crate::topology::Topology;
use crate::vec3::Vec3;
use std::f64::consts::PI;

/// Accumulated bonded energies in kcal/mol.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BondedEnergies {
    /// Bond stretching energy.
    pub bond: f64,
    /// Angle bending energy (including Urey-Bradley 1-3 springs).
    pub angle: f64,
    /// Proper dihedral energy.
    pub dihedral: f64,
    /// Improper (out-of-plane) energy.
    pub improper: f64,
}

impl BondedEnergies {
    /// Sum of all bonded terms.
    pub fn total(&self) -> f64 {
        self.bond + self.angle + self.dihedral + self.improper
    }

    /// Bit-exact ABFT digest of the partial energies (see [`crate::abft`]).
    pub fn abft_digest(&self) -> u64 {
        crate::abft::scalar_digest(&[self.bond, self.angle, self.dihedral, self.improper])
    }
}

/// Evaluates every bonded term of `topo` at `positions`, accumulating
/// into `forces`. Returns the energies and the number of bonded terms
/// evaluated.
pub fn bonded_energy_forces(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    forces: &mut [Vec3],
) -> (BondedEnergies, usize) {
    bonded_energy_forces_range(
        topo,
        pbox,
        positions,
        forces,
        0..topo.bonds.len(),
        0..topo.angles.len(),
        0..topo.dihedrals.len(),
        0..topo.impropers.len(),
    )
}

/// Range-restricted variant used by the parallel decomposition: each
/// rank evaluates a contiguous block of every term type.
#[allow(clippy::too_many_arguments)]
pub fn bonded_energy_forces_range(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    forces: &mut [Vec3],
    bonds: std::ops::Range<usize>,
    angles: std::ops::Range<usize>,
    dihedrals: std::ops::Range<usize>,
    impropers: std::ops::Range<usize>,
) -> (BondedEnergies, usize) {
    let mut e = BondedEnergies::default();
    let mut count = 0usize;

    for b in &topo.bonds[bonds] {
        e.bond += bond_term(pbox, positions, forces, b.i, b.j, b.param.k, b.param.r0);
        count += 1;
    }
    for a in &topo.angles[angles] {
        e.angle += angle_term(
            pbox,
            positions,
            forces,
            a.i,
            a.j,
            a.k,
            a.param.k,
            a.param.theta0,
        );
        if a.param.kub != 0.0 {
            // CHARMM Urey-Bradley: a 1-3 harmonic spring, mechanically
            // identical to a bond between the angle's end atoms.
            e.angle += bond_term(pbox, positions, forces, a.i, a.k, a.param.kub, a.param.s0);
        }
        count += 1;
    }
    for d in &topo.dihedrals[dihedrals] {
        e.dihedral += torsion_term(
            pbox,
            positions,
            forces,
            [d.i, d.j, d.k, d.l],
            TorsionKind::Cosine {
                k: d.param.k,
                n: d.param.n,
                delta: d.param.delta,
            },
        );
        count += 1;
    }
    for d in &topo.impropers[impropers] {
        e.improper += torsion_term(
            pbox,
            positions,
            forces,
            [d.i, d.j, d.k, d.l],
            TorsionKind::Harmonic {
                k: d.param.k,
                psi0: d.param.psi0,
            },
        );
        count += 1;
    }
    (e, count)
}

/// Single harmonic bond: `E = k (r - r0)^2`.
#[inline]
fn bond_term(
    pbox: &PbcBox,
    positions: &[Vec3],
    forces: &mut [Vec3],
    i: usize,
    j: usize,
    k: f64,
    r0: f64,
) -> f64 {
    let d = pbox.min_image(positions[i], positions[j]);
    let r = d.norm();
    let dr = r - r0;
    let energy = k * dr * dr;
    // dE/dr = 2 k dr; F_i = -dE/dr * d/r.
    let coef = -2.0 * k * dr / r;
    let f = d * coef;
    forces[i] += f;
    forces[j] -= f;
    energy
}

/// Single harmonic angle: `E = k (theta - theta0)^2` for `i-j-k`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn angle_term(
    pbox: &PbcBox,
    positions: &[Vec3],
    forces: &mut [Vec3],
    i: usize,
    j: usize,
    kk: usize,
    k: f64,
    theta0: f64,
) -> f64 {
    let d1 = pbox.min_image(positions[i], positions[j]);
    let d2 = pbox.min_image(positions[kk], positions[j]);
    let r1 = d1.norm();
    let r2 = d2.norm();
    let u = d1 / r1;
    let v = d2 / r2;
    let cos_t = u.dot(v).clamp(-1.0, 1.0);
    let theta = cos_t.acos();
    let dt = theta - theta0;
    let energy = k * dt * dt;

    // dtheta/dcos = -1/sin; guard near-linear geometries.
    let sin_t = (1.0 - cos_t * cos_t).sqrt().max(1e-8);
    let de_dtheta = 2.0 * k * dt;
    // dcos/dri = (v - cos u)/r1 ; F_i = -dE/dtheta * dtheta/dri
    //          = de_dtheta / sin * dcos/dri.
    let fi = (v - u * cos_t) * (de_dtheta / (sin_t * r1));
    let fk = (u - v * cos_t) * (de_dtheta / (sin_t * r2));
    forces[i] += fi;
    forces[kk] += fk;
    forces[j] -= fi + fk;
    energy
}

enum TorsionKind {
    Cosine { k: f64, n: u32, delta: f64 },
    Harmonic { k: f64, psi0: f64 },
}

/// Shared torsion machinery for proper dihedrals and impropers.
///
/// Gradient formulation after Bekker et al. (the `do_dih_fup` scheme
/// used by GROMACS): with `r_ij = r_i - r_j`, `r_kj = r_k - r_j`,
/// `r_kl = r_k - r_l`, `m = r_ij x r_kj`, `n = r_kj x r_kl`,
/// `|phi|` is the angle between `m` and `n` and its sign follows
/// `r_ij . n`.
fn torsion_term(
    pbox: &PbcBox,
    positions: &[Vec3],
    forces: &mut [Vec3],
    [i, j, k, l]: [usize; 4],
    kind: TorsionKind,
) -> f64 {
    let r_ij = pbox.min_image(positions[i], positions[j]);
    let r_kj = pbox.min_image(positions[k], positions[j]);
    let r_kl = pbox.min_image(positions[k], positions[l]);

    let m = r_ij.cross(r_kj);
    let n = r_kj.cross(r_kl);
    let m2 = m.norm_sqr().max(1e-12);
    let n2 = n.norm_sqr().max(1e-12);
    let nrkj2 = r_kj.norm_sqr();
    let nrkj = nrkj2.sqrt();

    let cos_phi = (m.dot(n) / (m2 * n2).sqrt()).clamp(-1.0, 1.0);
    let phi = if r_ij.dot(n) < 0.0 {
        -cos_phi.acos()
    } else {
        cos_phi.acos()
    };

    let (energy, de_dphi) = match kind {
        TorsionKind::Cosine { k, n, delta } => {
            let arg = n as f64 * phi - delta;
            (k * (1.0 + arg.cos()), -k * n as f64 * arg.sin())
        }
        TorsionKind::Harmonic { k, psi0 } => {
            // Wrap the deviation into (-pi, pi] so the restraint is
            // continuous across the branch cut.
            let mut dp = phi - psi0;
            while dp > PI {
                dp -= 2.0 * PI;
            }
            while dp <= -PI {
                dp += 2.0 * PI;
            }
            (k * dp * dp, 2.0 * k * dp)
        }
    };

    // do_dih_fup: forces from dE/dphi.
    let fi = m * (-de_dphi * nrkj / m2);
    let fl = n * (de_dphi * nrkj / n2);
    let p = r_ij.dot(r_kj) / nrkj2;
    let q = r_kl.dot(r_kj) / nrkj2;
    let sv = fi * p - fl * q;
    let fj = sv - fi;
    let fk = -sv - fl;

    forces[i] += fi;
    forces[j] += fj;
    forces[k] += fk;
    forces[l] += fl;
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::{params, AtomClass};
    use crate::topology::{Angle, Atom, Bond, Dihedral, Improper, Topology};

    fn big_box() -> PbcBox {
        PbcBox::new(100.0, 100.0, 100.0)
    }

    fn numerical_gradient_check(topo: &Topology, positions: &[Vec3], tol: f64) {
        let pbox = big_box();
        let n = positions.len();
        let mut forces = vec![Vec3::ZERO; n];
        let (_, _) = bonded_energy_forces(topo, &pbox, positions, &mut forces);
        let h = 1e-6;
        for a in 0..n {
            for c in 0..3 {
                let mut plus = positions.to_vec();
                let mut minus = positions.to_vec();
                plus[a][c] += h;
                minus[a][c] -= h;
                let mut dummy = vec![Vec3::ZERO; n];
                let (ep, _) = bonded_energy_forces(topo, &pbox, &plus, &mut dummy);
                let mut dummy = vec![Vec3::ZERO; n];
                let (em, _) = bonded_energy_forces(topo, &pbox, &minus, &mut dummy);
                let numeric = -(ep.total() - em.total()) / (2.0 * h);
                assert!(
                    (forces[a][c] - numeric).abs() < tol,
                    "atom {a} comp {c}: analytic {} vs numeric {numeric}",
                    forces[a][c]
                );
            }
        }
    }

    #[test]
    fn bond_force_matches_numerical_gradient() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                2
            ],
            ..Default::default()
        };
        topo.bonds.push(Bond {
            i: 0,
            j: 1,
            param: params::BOND_HEAVY,
        });
        topo.rebuild_exclusions();
        let positions = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(2.3, 2.9, 3.4)];
        numerical_gradient_check(&topo, &positions, 1e-5);
    }

    #[test]
    fn bond_at_equilibrium_has_zero_energy_and_force() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                2
            ],
            ..Default::default()
        };
        topo.bonds.push(Bond {
            i: 0,
            j: 1,
            param: params::BOND_HEAVY,
        });
        let positions = vec![Vec3::ZERO, Vec3::new(params::BOND_HEAVY.r0, 0.0, 0.0)];
        let mut forces = vec![Vec3::ZERO; 2];
        let (e, count) = bonded_energy_forces(&topo, &big_box(), &positions, &mut forces);
        assert!(e.total().abs() < 1e-12);
        assert!(forces[0].norm() < 1e-12);
        assert_eq!(count, 1);
    }

    #[test]
    fn angle_force_matches_numerical_gradient() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                3
            ],
            ..Default::default()
        };
        topo.angles.push(Angle {
            i: 0,
            j: 1,
            k: 2,
            param: params::ANGLE_HEAVY,
        });
        let positions = vec![
            Vec3::new(1.0, 0.2, 0.0),
            Vec3::new(0.0, 0.0, 0.1),
            Vec3::new(-0.3, 1.1, 0.4),
        ];
        numerical_gradient_check(&topo, &positions, 1e-4);
    }

    #[test]
    fn urey_bradley_force_matches_numerical_gradient() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                3
            ],
            ..Default::default()
        };
        topo.angles.push(Angle {
            i: 0,
            j: 1,
            k: 2,
            param: crate::forcefield::AngleParam::with_ub(60.0, 1.939, 12.0, 2.4),
        });
        let positions = vec![
            Vec3::new(1.2, 0.1, 0.0),
            Vec3::new(0.0, 0.0, 0.2),
            Vec3::new(-0.4, 1.2, 0.3),
        ];
        numerical_gradient_check(&topo, &positions, 1e-4);
    }

    #[test]
    fn urey_bradley_adds_energy_at_stretched_13_distance() {
        let mk = |kub: f64| {
            let mut topo = Topology {
                atoms: vec![
                    Atom {
                        class: AtomClass::CT,
                        charge: 0.0
                    };
                    3
                ],
                ..Default::default()
            };
            topo.angles.push(Angle {
                i: 0,
                j: 1,
                k: 2,
                param: crate::forcefield::AngleParam::with_ub(60.0, 1.911, kub, 2.0),
            });
            let positions = vec![
                Vec3::new(1.5, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(-0.5, 1.45, 0.0),
            ];
            let mut f = vec![Vec3::ZERO; 3];
            bonded_energy_forces(&topo, &big_box(), &positions, &mut f)
                .0
                .angle
        };
        let without = mk(0.0);
        let with = mk(12.0);
        assert!(with > without, "UB term must add energy off its minimum");
    }

    #[test]
    fn dihedral_force_matches_numerical_gradient() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                4
            ],
            ..Default::default()
        };
        topo.dihedrals.push(Dihedral {
            i: 0,
            j: 1,
            k: 2,
            l: 3,
            param: params::DIHEDRAL_BACKBONE,
        });
        let positions = vec![
            Vec3::new(0.1, 1.1, -0.2),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.5, 0.1, 0.2),
            Vec3::new(1.9, 1.0, 1.0),
        ];
        numerical_gradient_check(&topo, &positions, 1e-4);
    }

    #[test]
    fn improper_force_matches_numerical_gradient() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::C,
                    charge: 0.0
                };
                4
            ],
            ..Default::default()
        };
        topo.impropers.push(Improper {
            i: 0,
            j: 1,
            k: 2,
            l: 3,
            param: params::IMPROPER_CARBONYL,
        });
        let positions = vec![
            Vec3::new(0.0, 0.0, 0.3),
            Vec3::new(1.4, 0.1, -0.1),
            Vec3::new(-0.8, 1.2, 0.0),
            Vec3::new(-0.7, -1.2, 0.1),
        ];
        numerical_gradient_check(&topo, &positions, 1e-4);
    }

    #[test]
    fn bonded_forces_sum_to_zero() {
        // Newton's third law: internal forces cancel.
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                4
            ],
            ..Default::default()
        };
        topo.bonds.push(Bond {
            i: 0,
            j: 1,
            param: params::BOND_HEAVY,
        });
        topo.bonds.push(Bond {
            i: 1,
            j: 2,
            param: params::BOND_PEPTIDE,
        });
        topo.angles.push(Angle {
            i: 0,
            j: 1,
            k: 2,
            param: params::ANGLE_BACKBONE,
        });
        topo.dihedrals.push(Dihedral {
            i: 0,
            j: 1,
            k: 2,
            l: 3,
            param: params::DIHEDRAL_OMEGA,
        });
        let positions = vec![
            Vec3::new(0.3, 0.1, 0.9),
            Vec3::new(1.5, 0.2, 0.8),
            Vec3::new(2.0, 1.4, 0.2),
            Vec3::new(3.1, 1.5, 1.0),
        ];
        let mut forces = vec![Vec3::ZERO; 4];
        bonded_energy_forces(&topo, &big_box(), &positions, &mut forces);
        let net: Vec3 = forces.iter().fold(Vec3::ZERO, |acc, &f| acc + f);
        assert!(net.norm() < 1e-10, "net bonded force {net:?}");
    }

    #[test]
    fn omega_term_vanishes_at_planar_geometries() {
        // The omega term (n=2, delta=pi) is E = k (1 - cos 2 phi):
        // zero at both planar configurations (phi = 0 and pi), maximal
        // at phi = pi/2.
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                4
            ],
            ..Default::default()
        };
        topo.dihedrals.push(Dihedral {
            i: 0,
            j: 1,
            k: 2,
            l: 3,
            param: params::DIHEDRAL_OMEGA,
        });
        // Planar trans arrangement.
        let trans = vec![
            Vec3::new(-1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.5, 0.0, 0.0),
            Vec3::new(2.5, -1.0, 0.0),
        ];
        // Planar cis arrangement.
        let cis = vec![
            Vec3::new(-1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.5, 0.0, 0.0),
            Vec3::new(2.5, 1.0, 0.0),
        ];
        // Perpendicular arrangement (phi = pi/2).
        let perp = vec![
            Vec3::new(-1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.5, 0.0, 0.0),
            Vec3::new(2.5, 0.0, 1.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let (e_trans, _) = bonded_energy_forces(&topo, &big_box(), &trans, &mut f);
        let mut f = vec![Vec3::ZERO; 4];
        let (e_cis, _) = bonded_energy_forces(&topo, &big_box(), &cis, &mut f);
        let mut f = vec![Vec3::ZERO; 4];
        let (e_perp, _) = bonded_energy_forces(&topo, &big_box(), &perp, &mut f);
        assert!(e_trans.dihedral.abs() < 1e-9, "trans {}", e_trans.dihedral);
        assert!(e_cis.dihedral.abs() < 1e-9, "cis {}", e_cis.dihedral);
        assert!((e_perp.dihedral - 2.0 * params::DIHEDRAL_OMEGA.k).abs() < 1e-9);
    }

    #[test]
    fn range_restricted_sums_to_full() {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                5
            ],
            ..Default::default()
        };
        for i in 0..4 {
            topo.bonds.push(Bond {
                i,
                j: i + 1,
                param: params::BOND_HEAVY,
            });
        }
        for i in 0..3 {
            topo.angles.push(Angle {
                i,
                j: i + 1,
                k: i + 2,
                param: params::ANGLE_HEAVY,
            });
        }
        let positions: Vec<Vec3> = (0..5)
            .map(|i| Vec3::new(i as f64 * 1.4, (i % 2) as f64, 0.3 * i as f64))
            .collect();
        let pbox = big_box();

        let mut f_full = vec![Vec3::ZERO; 5];
        let (e_full, _) = bonded_energy_forces(&topo, &pbox, &positions, &mut f_full);

        let mut f_split = vec![Vec3::ZERO; 5];
        let (e1, _) = bonded_energy_forces_range(
            &topo,
            &pbox,
            &positions,
            &mut f_split,
            0..2,
            0..1,
            0..0,
            0..0,
        );
        let (e2, _) = bonded_energy_forces_range(
            &topo,
            &pbox,
            &positions,
            &mut f_split,
            2..4,
            1..3,
            0..0,
            0..0,
        );
        assert!((e_full.total() - e1.total() - e2.total()).abs() < 1e-12);
        for (a, b) in f_full.iter().zip(&f_split) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }
}
