//! Nonbonded pair interactions: Lennard-Jones with a CHARMM switching
//! function and electrostatics in either CHARMM shifted form (the
//! "classic" model of the paper, electrostatics shifted to zero at
//! 10 Angstrom) or Ewald direct-space form (the short-range half of the
//! PME model).

use crate::pbc::PbcBox;
use crate::special::{erf, erfc};
use crate::topology::Topology;
use crate::units::COULOMB;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Electrostatics treatment for the pair loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ElecMethod {
    /// No electrostatics (vdW only).
    None,
    /// CHARMM energy-shifted Coulomb: `E = C q q / r (1 - (r/roff)^2)^2`.
    Shift,
    /// Ewald/PME direct space: `E = C q q erfc(beta r)/r`.
    EwaldDirect {
        /// Ewald splitting parameter in 1/Angstrom.
        beta: f64,
    },
}

/// Options for the nonbonded evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonbondedOptions {
    /// Outer cutoff `roff` in Angstrom (10 A in the paper).
    pub cutoff: f64,
    /// Inner switching radius `ron` for the vdW switching function.
    pub switch_on: f64,
    /// Electrostatics treatment.
    pub elec: ElecMethod,
}

impl NonbondedOptions {
    /// The paper's classic model: both terms cut at 10 A, vdW switched
    /// from 8 A, electrostatics shifted.
    pub fn classic() -> Self {
        NonbondedOptions {
            cutoff: 10.0,
            switch_on: 8.0,
            elec: ElecMethod::Shift,
        }
    }

    /// The short-range half of the paper's PME model with splitting
    /// parameter `beta`.
    pub fn pme_direct(beta: f64) -> Self {
        NonbondedOptions {
            cutoff: 10.0,
            switch_on: 8.0,
            elec: ElecMethod::EwaldDirect { beta },
        }
    }
}

/// Nonbonded energy components in kcal/mol.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NonbondedEnergies {
    /// Lennard-Jones energy.
    pub vdw: f64,
    /// Electrostatic energy (per the selected method).
    pub elec: f64,
}

impl NonbondedEnergies {
    /// Sum of components.
    pub fn total(&self) -> f64 {
        self.vdw + self.elec
    }

    /// Bit-exact ABFT digest of the partial energies (see [`crate::abft`]).
    pub fn abft_digest(&self) -> u64 {
        crate::abft::scalar_digest(&[self.vdw, self.elec])
    }
}

/// CHARMM switching function and derivative on `[ron, roff]`.
///
/// Returns `(S, dS/dr)`; `S = 1` below `ron` and `0` above `roff`.
#[inline]
pub fn switch_fn(r: f64, ron: f64, roff: f64) -> (f64, f64) {
    if r <= ron {
        (1.0, 0.0)
    } else if r >= roff {
        (0.0, 0.0)
    } else {
        let r2 = r * r;
        let ron2 = ron * ron;
        let roff2 = roff * roff;
        let denom = (roff2 - ron2).powi(3);
        let a = roff2 - r2;
        let s = a * a * (roff2 + 2.0 * r2 - 3.0 * ron2) / denom;
        let ds = -12.0 * r * a * (r2 - ron2) / denom;
        (s, ds)
    }
}

/// Evaluates the nonbonded interactions over an explicit pair list,
/// accumulating forces. Returns energies and the number of pairs whose
/// interaction was actually computed (within the cutoff) — the figure
/// the cost model charges for.
pub fn nonbonded_energy_forces(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    pairs: &[(u32, u32)],
    opts: &NonbondedOptions,
    forces: &mut [Vec3],
) -> (NonbondedEnergies, usize) {
    let cutoff2 = opts.cutoff * opts.cutoff;
    let mut e = NonbondedEnergies::default();
    let mut evaluated = 0usize;

    for &(i, j) in pairs {
        let i = i as usize;
        let j = j as usize;
        let d = pbox.min_image(positions[i], positions[j]);
        let r2 = d.norm_sqr();
        if r2 >= cutoff2 {
            continue;
        }
        evaluated += 1;
        let r = r2.sqrt();

        // Lennard-Jones with switching.
        let (eps, rmin) = topo.atoms[i].class.lj().combine(topo.atoms[j].class.lj());
        let u = (rmin * rmin / r2).powi(3);
        let e_lj = eps * (u * u - 2.0 * u);
        let de_lj = -12.0 * eps * u * (u - 1.0) / r;
        let (s, ds) = switch_fn(r, opts.switch_on, opts.cutoff);
        e.vdw += e_lj * s;
        let mut de_dr = de_lj * s + e_lj * ds;

        // Electrostatics.
        let qq = COULOMB * topo.atoms[i].charge * topo.atoms[j].charge;
        match opts.elec {
            ElecMethod::None => {}
            ElecMethod::Shift => {
                if qq != 0.0 {
                    let roff2 = cutoff2;
                    let t = 1.0 - r2 / roff2;
                    e.elec += qq * t * t / r;
                    de_dr += qq * (-t * t / r2 - 4.0 * t / roff2);
                }
            }
            ElecMethod::EwaldDirect { beta } => {
                if qq != 0.0 {
                    let br = beta * r;
                    let ec = erfc(br);
                    e.elec += qq * ec / r;
                    de_dr += qq * (-ec / r2 - 2.0 * beta / PI.sqrt() * (-br * br).exp() / r);
                }
            }
        }

        // F_i = -dE/dr * d/r.
        let f = d * (-de_dr / r);
        forces[i] += f;
        forces[j] -= f;
    }
    (e, evaluated)
}

/// Correction removing the reciprocal-space contribution of excluded
/// pairs (PME includes *all* pairs in k-space): `E = -C q q erf(beta r)/r`
/// per excluded pair, with matching forces. Returns `(energy, n_pairs)`.
pub fn ewald_excluded_correction(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    beta: f64,
    forces: &mut [Vec3],
) -> (f64, usize) {
    let mut energy = 0.0;
    let mut count = 0usize;
    for (i, j) in topo.excluded_pairs() {
        let qq = COULOMB * topo.atoms[i].charge * topo.atoms[j].charge;
        if qq == 0.0 {
            continue;
        }
        let d = pbox.min_image(positions[i], positions[j]);
        let r2 = d.norm_sqr();
        let r = r2.sqrt();
        let br = beta * r;
        let ef = erf(br);
        energy -= qq * ef / r;
        // E = -A erf(beta r)/r; dE/dr = -A (2 beta/sqrt(pi) e^{-b^2 r^2}/r - erf/r^2).
        let de_dr = -qq * (2.0 * beta / PI.sqrt() * (-br * br).exp() / r - ef / r2);
        let f = d * (-de_dr / r);
        forces[i] += f;
        forces[j] -= f;
        count += 1;
    }
    (energy, count)
}

/// Ewald self-energy: `-C beta/sqrt(pi) * sum q_i^2` (position
/// independent, no force).
pub fn ewald_self_energy(topo: &Topology, beta: f64) -> f64 {
    let q2: f64 = topo.atoms.iter().map(|a| a.charge * a.charge).sum();
    -COULOMB * beta / PI.sqrt() * q2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::AtomClass;
    use crate::topology::Atom;

    fn two_atom_topo(q1: f64, q2: f64) -> Topology {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::OW,
                    charge: q1,
                },
                Atom {
                    class: AtomClass::OW,
                    charge: q2,
                },
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        topo
    }

    fn pair_energy(topo: &Topology, sep: f64, opts: &NonbondedOptions) -> (f64, Vec<Vec3>) {
        let pbox = PbcBox::new(50.0, 50.0, 50.0);
        let positions = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(10.0 + sep, 10.0, 10.0),
        ];
        let mut forces = vec![Vec3::ZERO; 2];
        let (e, _) = nonbonded_energy_forces(topo, &pbox, &positions, &[(0, 1)], opts, &mut forces);
        (e.total(), forces)
    }

    #[test]
    fn switch_function_boundaries() {
        let (s, ds) = switch_fn(7.0, 8.0, 10.0);
        assert_eq!((s, ds), (1.0, 0.0));
        let (s, ds) = switch_fn(10.0, 8.0, 10.0);
        assert_eq!((s, ds), (0.0, 0.0));
        // Continuity at ron and roff.
        let (s, _) = switch_fn(8.0 + 1e-9, 8.0, 10.0);
        assert!((s - 1.0).abs() < 1e-7);
        let (s, _) = switch_fn(10.0 - 1e-9, 8.0, 10.0);
        assert!(s.abs() < 1e-7);
    }

    #[test]
    fn switch_derivative_matches_numeric() {
        for &r in &[8.3, 9.0, 9.7] {
            let h = 1e-7;
            let (sp, _) = switch_fn(r + h, 8.0, 10.0);
            let (sm, _) = switch_fn(r - h, 8.0, 10.0);
            let (_, ds) = switch_fn(r, 8.0, 10.0);
            assert!((ds - (sp - sm) / (2.0 * h)).abs() < 1e-6, "r={r}");
        }
    }

    #[test]
    fn lj_minimum_at_rmin() {
        let topo = two_atom_topo(0.0, 0.0);
        let rmin = 2.0 * AtomClass::OW.lj().rmin_half;
        let opts = NonbondedOptions {
            cutoff: 12.0,
            switch_on: 11.0,
            elec: ElecMethod::None,
        };
        let (e_min, forces) = pair_energy(&topo, rmin, &opts);
        assert!(
            (e_min + AtomClass::OW.lj().eps).abs() < 1e-9,
            "well depth at rmin"
        );
        assert!(forces[0].norm() < 1e-9, "zero force at minimum");
        // Energy rises on either side.
        let (e_lo, _) = pair_energy(&topo, rmin - 0.1, &opts);
        let (e_hi, _) = pair_energy(&topo, rmin + 0.1, &opts);
        assert!(e_lo > e_min && e_hi > e_min);
    }

    #[test]
    fn forces_match_numerical_gradient_all_methods() {
        let methods = [
            ElecMethod::None,
            ElecMethod::Shift,
            ElecMethod::EwaldDirect { beta: 0.32 },
        ];
        let topo = two_atom_topo(0.417, -0.834);
        for elec in methods {
            let opts = NonbondedOptions {
                cutoff: 10.0,
                switch_on: 8.0,
                elec,
            };
            for &sep in &[2.5, 5.0, 8.5, 9.5] {
                let h = 1e-6;
                let (ep, _) = pair_energy(&topo, sep + h, &opts);
                let (em, _) = pair_energy(&topo, sep - h, &opts);
                let numeric = -(ep - em) / (2.0 * h);
                let (_, forces) = pair_energy(&topo, sep, &opts);
                // Force on atom 1 along +x equals -dE/dsep.
                assert!(
                    (forces[1].x - numeric).abs() < 1e-5,
                    "elec={elec:?} sep={sep}: {} vs {numeric}",
                    forces[1].x
                );
            }
        }
    }

    #[test]
    fn shift_energy_is_zero_at_cutoff() {
        let topo = two_atom_topo(1.0, 1.0);
        let opts = NonbondedOptions {
            cutoff: 10.0,
            switch_on: 8.0,
            elec: ElecMethod::Shift,
        };
        let (e, _) = pair_energy(&topo, 9.999999, &opts);
        // vdW is fully switched off and shifted elec goes to zero.
        assert!(e.abs() < 1e-9);
    }

    #[test]
    fn pairs_beyond_cutoff_are_skipped() {
        let topo = two_atom_topo(1.0, -1.0);
        let pbox = PbcBox::new(50.0, 50.0, 50.0);
        let positions = vec![Vec3::ZERO, Vec3::new(15.0, 0.0, 0.0)];
        let mut forces = vec![Vec3::ZERO; 2];
        let opts = NonbondedOptions::classic();
        let (e, n) =
            nonbonded_energy_forces(&topo, &pbox, &positions, &[(0, 1)], &opts, &mut forces);
        assert_eq!(n, 0);
        assert_eq!(e.total(), 0.0);
        assert_eq!(forces[0], Vec3::ZERO);
    }

    #[test]
    fn ewald_direct_plus_excluded_correction_is_continuous() {
        // For an excluded pair, erfc part is not computed in the pair
        // loop; the exclusion correction must equal minus the full
        // k-space 1/r minus nothing — check the identity
        // erfc(x)/r = 1/r - erf(x)/r at the formula level.
        let beta = 0.3;
        let r = 2.0;
        let full = 1.0 / r;
        let direct = erfc(beta * r) / r;
        let recip_of_pair = erf(beta * r) / r;
        assert!((direct + recip_of_pair - full).abs() < 1e-12);
    }

    #[test]
    fn self_energy_scales_with_charges() {
        let topo1 = two_atom_topo(1.0, 0.0);
        let topo2 = two_atom_topo(2.0, 0.0);
        let e1 = ewald_self_energy(&topo1, 0.3);
        let e2 = ewald_self_energy(&topo2, 0.3);
        assert!(e1 < 0.0);
        assert!((e2 - 4.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn excluded_correction_forces_match_numeric() {
        let mut topo = two_atom_topo(0.5, -0.4);
        // Make the pair excluded via a bond.
        topo.bonds.push(crate::topology::Bond {
            i: 0,
            j: 1,
            param: crate::forcefield::params::BOND_XH,
        });
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(40.0, 40.0, 40.0);
        let beta = 0.34;
        let base = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(6.1, 5.4, 5.2)];
        let mut forces = vec![Vec3::ZERO; 2];
        ewald_excluded_correction(&topo, &pbox, &base, beta, &mut forces);
        let h = 1e-6;
        for c in 0..3 {
            let mut plus = base.clone();
            let mut minus = base.clone();
            plus[0][c] += h;
            minus[0][c] -= h;
            let mut dummy = vec![Vec3::ZERO; 2];
            let (ep, _) = ewald_excluded_correction(&topo, &pbox, &plus, beta, &mut dummy);
            let mut dummy = vec![Vec3::ZERO; 2];
            let (em, _) = ewald_excluded_correction(&topo, &pbox, &minus, beta, &mut dummy);
            let numeric = -(ep - em) / (2.0 * h);
            assert!((forces[0][c] - numeric).abs() < 1e-6, "component {c}");
        }
    }
}
