//! Trajectory observables: the structural and dynamical quantities a
//! downstream user of the MD engine actually inspects — radius of
//! gyration, RMSD, mean-square displacement and radial distribution
//! functions.

use crate::system::System;
use crate::vec3::Vec3;

/// Mass-weighted centre of a selection of atoms.
pub fn center_of_mass(system: &System, selection: &[usize]) -> Vec3 {
    assert!(!selection.is_empty());
    let mut com = Vec3::ZERO;
    let mut mass = 0.0;
    for &i in selection {
        let m = system.topology.atoms[i].class.mass();
        com += system.positions[i] * m;
        mass += m;
    }
    com / mass
}

/// Mass-weighted radius of gyration of a selection, in Angstrom.
///
/// Valid for selections that do not wrap around the periodic box
/// (e.g. the protein in the myoglobin system).
pub fn radius_of_gyration(system: &System, selection: &[usize]) -> f64 {
    let com = center_of_mass(system, selection);
    let mut num = 0.0;
    let mut mass = 0.0;
    for &i in selection {
        let m = system.topology.atoms[i].class.mass();
        num += m * (system.positions[i] - com).norm_sqr();
        mass += m;
    }
    (num / mass).sqrt()
}

/// Plain (unfitted) RMSD between two coordinate sets over a selection,
/// in Angstrom. No optimal superposition is performed; use for
/// same-frame-of-reference comparisons (e.g. drift along a trajectory).
pub fn rmsd(a: &[Vec3], b: &[Vec3], selection: &[usize]) -> f64 {
    assert!(!selection.is_empty());
    let sum: f64 = selection.iter().map(|&i| (a[i] - b[i]).norm_sqr()).sum();
    (sum / selection.len() as f64).sqrt()
}

/// Mean-square displacement between two coordinate sets (all atoms),
/// in A^2. Coordinates must be unwrapped (the integrator never wraps).
pub fn mean_square_displacement(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum::<f64>()
        / a.len() as f64
}

/// Radial distribution function g(r) between two selections, using
/// minimum-image distances.
///
/// Returns `(bin_centers, g)` with `bins` bins up to `r_max`.
pub fn radial_distribution(
    system: &System,
    sel_a: &[usize],
    sel_b: &[usize],
    r_max: f64,
    bins: usize,
) -> (Vec<f64>, Vec<f64>) {
    assert!(bins > 0 && r_max > 0.0);
    assert!(
        r_max <= system.pbox.min_half_edge() + 1e-9,
        "r_max beyond the minimum-image radius"
    );
    let dr = r_max / bins as f64;
    let mut counts = vec![0usize; bins];
    let mut n_pairs = 0usize;
    for &i in sel_a {
        for &j in sel_b {
            if i == j {
                continue;
            }
            n_pairs += 1;
            let r = system
                .pbox
                .distance(system.positions[i], system.positions[j]);
            if r < r_max {
                counts[(r / dr) as usize] += 1;
            }
        }
    }
    let volume = system.pbox.volume();
    let density = n_pairs as f64 / volume;
    let mut centers = Vec::with_capacity(bins);
    let mut g = Vec::with_capacity(bins);
    for (b, &c) in counts.iter().enumerate() {
        let r_lo = b as f64 * dr;
        let r_hi = r_lo + dr;
        let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
        centers.push(r_lo + 0.5 * dr);
        g.push(c as f64 / (density * shell));
    }
    (centers, g)
}

/// Indices of all atoms of a given class (e.g. water oxygens).
pub fn select_class(system: &System, class: crate::forcefield::AtomClass) -> Vec<usize> {
    system
        .topology
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.class == class)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;
    use crate::forcefield::AtomClass;

    #[test]
    fn rg_of_a_known_arrangement() {
        // Two unit-mass-equal atoms 2 A apart: Rg = 1.
        let sys = {
            let mut topo = crate::topology::Topology {
                atoms: vec![
                    crate::topology::Atom {
                        class: AtomClass::HW,
                        charge: 0.0
                    };
                    2
                ],
                ..Default::default()
            };
            topo.rebuild_exclusions();
            System::new(
                topo,
                crate::pbc::PbcBox::new(20.0, 20.0, 20.0),
                vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(7.0, 5.0, 5.0)],
            )
        };
        let rg = radius_of_gyration(&sys, &[0, 1]);
        assert!((rg - 1.0).abs() < 1e-12, "rg {rg}");
        let com = center_of_mass(&sys, &[0, 1]);
        assert!((com - Vec3::new(6.0, 5.0, 5.0)).norm() < 1e-12);
    }

    #[test]
    fn rmsd_zero_for_identical_and_positive_for_shifted() {
        let sys = water_box(2, 3.1);
        let sel: Vec<usize> = (0..sys.n_atoms()).collect();
        assert_eq!(rmsd(&sys.positions, &sys.positions, &sel), 0.0);
        let shifted: Vec<Vec3> = sys
            .positions
            .iter()
            .map(|&p| p + Vec3::new(1.0, 0.0, 0.0))
            .collect();
        assert!((rmsd(&sys.positions, &shifted, &sel) - 1.0).abs() < 1e-12);
        assert!((mean_square_displacement(&sys.positions, &shifted) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rdf_of_lattice_waters_has_peak_at_lattice_spacing() {
        let sys = water_box(4, 3.1);
        let oxygens = select_class(&sys, AtomClass::OW);
        assert_eq!(oxygens.len(), 64);
        let (centers, g) = radial_distribution(&sys, &oxygens, &oxygens, 6.0, 30);
        // The nearest-neighbour lattice spacing is 3.1 A: g(r) must peak
        // in that bin region.
        let peak_idx = g
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak_r = centers[peak_idx];
        assert!((peak_r - 3.1).abs() < 0.35, "peak at {peak_r}");
        // No counts below ~2 A (no overlapping molecules).
        for (c, v) in centers.iter().zip(&g) {
            if *c < 2.0 {
                assert_eq!(*v, 0.0, "unexpected g({c}) = {v}");
            }
        }
    }

    #[test]
    fn select_class_finds_waters() {
        let sys = water_box(2, 3.1);
        assert_eq!(select_class(&sys, AtomClass::OW).len(), 8);
        assert_eq!(select_class(&sys, AtomClass::HW).len(), 16);
        assert!(select_class(&sys, AtomClass::S).is_empty());
    }

    #[test]
    #[should_panic]
    fn rdf_rejects_oversized_rmax() {
        let sys = water_box(2, 3.1);
        let sel = select_class(&sys, AtomClass::OW);
        let _ = radial_distribution(&sys, &sel, &sel, 100.0, 10);
    }
}
