//! Temperature control: the two classic thermostats a CHARMM-style
//! engine offers for equilibration — Berendsen weak coupling and a
//! Langevin (Ornstein-Uhlenbeck) thermostat.

use crate::system::System;
use crate::units::{ACCEL_CONV, K_BOLTZMANN};
use serde::{Deserialize, Serialize};

/// Thermostat applied after each integration step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Thermostat {
    /// Microcanonical dynamics (no temperature control).
    None,
    /// Berendsen weak coupling: velocities scaled by
    /// `sqrt(1 + dt/tau (T0/T - 1))`.
    Berendsen {
        /// Target temperature in Kelvin.
        target: f64,
        /// Coupling time constant in ps.
        tau: f64,
    },
    /// Langevin dynamics via an exact Ornstein-Uhlenbeck velocity
    /// update: `v <- c v + sqrt(1 - c^2) sigma g`, `c = exp(-gamma dt)`.
    Langevin {
        /// Target temperature in Kelvin.
        target: f64,
        /// Friction coefficient in 1/ps.
        gamma: f64,
    },
}

/// Mutable thermostat state (RNG stream for the stochastic variants).
#[derive(Debug, Clone)]
pub struct ThermostatState {
    kind: Thermostat,
    rng_state: u64,
}

impl ThermostatState {
    /// Creates thermostat state with a deterministic noise stream.
    pub fn new(kind: Thermostat, seed: u64) -> Self {
        ThermostatState {
            kind,
            rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    /// The configured thermostat.
    pub fn kind(&self) -> Thermostat {
        self.kind
    }

    /// Raw RNG stream cursor, for checkpointing: a state rebuilt via
    /// [`ThermostatState::restore`] continues the noise sequence
    /// exactly where this one stands.
    pub fn rng_cursor(&self) -> u64 {
        self.rng_state
    }

    /// Rebuilds thermostat state from a checkpointed kind and RNG
    /// cursor (the counterpart of [`ThermostatState::rng_cursor`]).
    pub fn restore(kind: Thermostat, rng_cursor: u64) -> Self {
        ThermostatState {
            kind,
            rng_state: rng_cursor,
        }
    }

    fn gauss(&mut self) -> f64 {
        // Box-Muller on a xorshift stream.
        let next = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            (*s >> 11) as f64 / (1u64 << 53) as f64
        };
        let u1: f64 = next(&mut self.rng_state).max(1e-300);
        let u2: f64 = next(&mut self.rng_state);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Applies the thermostat to the system's velocities for a step of
    /// length `dt` (ps).
    pub fn apply(&mut self, system: &mut System, dt: f64) {
        match self.kind {
            Thermostat::None => {}
            Thermostat::Berendsen { target, tau } => {
                let t = system.temperature();
                if t <= 1e-12 {
                    return;
                }
                let lambda2 = 1.0 + dt / tau * (target / t - 1.0);
                let lambda = lambda2.max(0.0).sqrt().clamp(0.8, 1.25);
                for v in &mut system.velocities {
                    *v = *v * lambda;
                }
            }
            Thermostat::Langevin { target, gamma } => {
                let c = (-gamma * dt).exp();
                let noise = (1.0 - c * c).sqrt();
                for i in 0..system.n_atoms() {
                    let mass = system.topology.atoms[i].class.mass();
                    let sigma = (K_BOLTZMANN * target / mass * ACCEL_CONV).sqrt();
                    let g = crate::vec3::Vec3::new(self.gauss(), self.gauss(), self.gauss());
                    system.velocities[i] = system.velocities[i] * c + g * (noise * sigma);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;

    fn hot_system(t: f64) -> System {
        let mut sys = water_box(3, 3.1);
        sys.assign_velocities(t, 5);
        sys
    }

    #[test]
    fn none_is_identity() {
        let mut sys = hot_system(500.0);
        let before = sys.velocities.clone();
        let mut th = ThermostatState::new(Thermostat::None, 1);
        th.apply(&mut sys, 0.001);
        assert_eq!(sys.velocities, before);
    }

    #[test]
    fn berendsen_pulls_toward_target() {
        let mut sys = hot_system(600.0);
        let mut th = ThermostatState::new(
            Thermostat::Berendsen {
                target: 300.0,
                tau: 0.1,
            },
            1,
        );
        let t0 = sys.temperature();
        // dt/tau = 0.01: temperature relaxes on a ~100-step scale; run
        // five time constants.
        for _ in 0..500 {
            th.apply(&mut sys, 0.001);
        }
        let t1 = sys.temperature();
        assert!(t1 < t0, "{t0} -> {t1}");
        assert!((t1 - 300.0).abs() < 40.0, "final temperature {t1}");
    }

    #[test]
    fn berendsen_heats_a_cold_system() {
        let mut sys = hot_system(100.0);
        let mut th = ThermostatState::new(
            Thermostat::Berendsen {
                target: 300.0,
                tau: 0.1,
            },
            1,
        );
        for _ in 0..300 {
            th.apply(&mut sys, 0.001);
        }
        let t = sys.temperature();
        assert!((t - 300.0).abs() < 40.0, "final temperature {t}");
    }

    #[test]
    fn langevin_equilibrates_to_target() {
        let mut sys = hot_system(700.0);
        let mut th = ThermostatState::new(
            Thermostat::Langevin {
                target: 300.0,
                gamma: 5.0,
            },
            9,
        );
        let mut samples = Vec::new();
        for step in 0..800 {
            th.apply(&mut sys, 0.001);
            if step >= 400 {
                samples.push(sys.temperature());
            }
        }
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 300.0).abs() < 30.0, "mean temperature {mean}");
    }

    #[test]
    fn langevin_noise_is_deterministic() {
        let run = || {
            let mut sys = hot_system(300.0);
            let mut th = ThermostatState::new(
                Thermostat::Langevin {
                    target: 300.0,
                    gamma: 2.0,
                },
                42,
            );
            for _ in 0..10 {
                th.apply(&mut sys, 0.001);
            }
            sys.velocities
        };
        assert_eq!(run(), run());
    }
}
