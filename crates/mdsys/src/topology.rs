//! Molecular topology: atoms, bonded terms and nonbonded exclusions.

use crate::forcefield::{AngleParam, AtomClass, BondParam, DihedralParam, ImproperParam};
use serde::{Deserialize, Serialize};

/// One atom of the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Lennard-Jones / mass class.
    pub class: AtomClass,
    /// Partial charge in elementary charges.
    pub charge: f64,
}

/// A harmonic bond between atoms `i` and `j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bond {
    /// First atom index.
    pub i: usize,
    /// Second atom index.
    pub j: usize,
    /// Parameters.
    pub param: BondParam,
}

/// A harmonic angle `i-j-k` centered on `j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Angle {
    /// End atom.
    pub i: usize,
    /// Apex atom.
    pub j: usize,
    /// End atom.
    pub k: usize,
    /// Parameters.
    pub param: AngleParam,
}

/// A proper dihedral `i-j-k-l` around the `j-k` axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dihedral {
    /// First atom.
    pub i: usize,
    /// Second atom (axis).
    pub j: usize,
    /// Third atom (axis).
    pub k: usize,
    /// Fourth atom.
    pub l: usize,
    /// Parameters.
    pub param: DihedralParam,
}

/// A harmonic improper `i-j-k-l` (CHARMM convention: the angle between
/// the `ijk` and `jkl` planes is restrained).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Improper {
    /// Central atom first (CHARMM convention).
    pub i: usize,
    /// Second atom.
    pub j: usize,
    /// Third atom.
    pub k: usize,
    /// Fourth atom.
    pub l: usize,
    /// Parameters.
    pub param: ImproperParam,
}

/// Complete bonded topology plus exclusion lists.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All atoms.
    pub atoms: Vec<Atom>,
    /// Harmonic bonds.
    pub bonds: Vec<Bond>,
    /// Harmonic angles.
    pub angles: Vec<Angle>,
    /// Proper dihedrals.
    pub dihedrals: Vec<Dihedral>,
    /// Harmonic impropers.
    pub impropers: Vec<Improper>,
    /// Sorted per-atom exclusion lists (1-2 and 1-3 neighbours). Only
    /// partners with a larger index are stored for atom `i`.
    pub exclusions: Vec<Vec<u32>>,
}

impl Topology {
    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total charge of the system in elementary charges.
    pub fn total_charge(&self) -> f64 {
        self.atoms.iter().map(|a| a.charge).sum()
    }

    /// Total mass in amu.
    pub fn total_mass(&self) -> f64 {
        self.atoms.iter().map(|a| a.class.mass()).sum()
    }

    /// Rebuilds the exclusion lists from the bond graph: directly bonded
    /// pairs (1-2) and pairs separated by two bonds (1-3) are excluded
    /// from the nonbonded interaction, as in CHARMM's default `NBXMod 5`
    /// minus the special 1-4 treatment (1-4 pairs interact fully here).
    pub fn rebuild_exclusions(&mut self) {
        let n = self.atoms.len();
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        for b in &self.bonds {
            assert!(
                b.i < n && b.j < n && b.i != b.j,
                "bond indices out of range"
            );
            adjacency[b.i].push(b.j as u32);
            adjacency[b.j].push(b.i as u32);
        }
        let mut excl: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            // 1-2 neighbours.
            for &j in &adjacency[i] {
                if (j as usize) > i {
                    excl[i].push(j);
                }
            }
            // 1-3 neighbours.
            for &j in &adjacency[i] {
                for &k in &adjacency[j as usize] {
                    let k = k as usize;
                    if k > i && k != i {
                        excl[i].push(k as u32);
                    }
                }
            }
            excl[i].sort_unstable();
            excl[i].dedup();
        }
        self.exclusions = excl;
    }

    /// True if the unordered pair `(i, j)` is excluded. Requires
    /// `rebuild_exclusions` to have run.
    #[inline]
    pub fn is_excluded(&self, i: usize, j: usize) -> bool {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.exclusions[lo].binary_search(&(hi as u32)).is_ok()
    }

    /// Iterates over all excluded pairs `(i, j)` with `i < j`.
    pub fn excluded_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.exclusions
            .iter()
            .enumerate()
            .flat_map(|(i, list)| list.iter().map(move |&j| (i, j as usize)))
    }

    /// Sanity-checks index ranges of every bonded term.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.atoms.len();
        for (t, b) in self.bonds.iter().enumerate() {
            if b.i >= n || b.j >= n || b.i == b.j {
                return Err(format!("bond {t} has invalid indices ({}, {})", b.i, b.j));
            }
        }
        for (t, a) in self.angles.iter().enumerate() {
            if a.i >= n || a.j >= n || a.k >= n || a.i == a.k || a.i == a.j || a.j == a.k {
                return Err(format!("angle {t} has invalid indices"));
            }
        }
        for (t, d) in self.dihedrals.iter().enumerate() {
            if d.i >= n || d.j >= n || d.k >= n || d.l >= n {
                return Err(format!("dihedral {t} has out-of-range indices"));
            }
        }
        for (t, d) in self.impropers.iter().enumerate() {
            if d.i >= n || d.j >= n || d.k >= n || d.l >= n {
                return Err(format!("improper {t} has out-of-range indices"));
            }
        }
        if self.exclusions.len() != n {
            return Err("exclusion lists not built".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::params;

    fn chain(n: usize) -> Topology {
        // Linear chain 0-1-2-...-(n-1).
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::CT,
                    charge: 0.0
                };
                n
            ],
            ..Default::default()
        };
        for i in 0..n - 1 {
            topo.bonds.push(Bond {
                i,
                j: i + 1,
                param: params::BOND_HEAVY,
            });
        }
        topo.rebuild_exclusions();
        topo
    }

    #[test]
    fn exclusions_of_linear_chain() {
        let topo = chain(6);
        // 1-2 and 1-3 are excluded; 1-4 is not.
        assert!(topo.is_excluded(0, 1));
        assert!(topo.is_excluded(0, 2));
        assert!(!topo.is_excluded(0, 3));
        assert!(topo.is_excluded(2, 4));
        assert!(!topo.is_excluded(1, 5));
    }

    #[test]
    fn exclusion_is_symmetric() {
        let topo = chain(5);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert_eq!(topo.is_excluded(i, j), topo.is_excluded(j, i));
                }
            }
        }
    }

    #[test]
    fn excluded_pairs_enumeration_matches_query() {
        let topo = chain(7);
        let pairs: Vec<_> = topo.excluded_pairs().collect();
        for &(i, j) in &pairs {
            assert!(i < j);
            assert!(topo.is_excluded(i, j));
        }
        // Chain of 7: 6 bonds + 5 one-three pairs.
        assert_eq!(pairs.len(), 11);
    }

    #[test]
    fn validate_catches_bad_bond() {
        let mut topo = chain(3);
        topo.bonds.push(Bond {
            i: 0,
            j: 99,
            param: params::BOND_HEAVY,
        });
        assert!(topo.validate().is_err());
    }

    #[test]
    fn totals() {
        let mut topo = chain(4);
        topo.atoms[0].charge = 0.5;
        topo.atoms[3].charge = -0.25;
        assert!((topo.total_charge() - 0.25).abs() < 1e-12);
        assert!((topo.total_mass() - 4.0 * 12.011).abs() < 1e-9);
    }
}
