//! Silent-data-corruption injection hook: deterministic single-bit
//! flips in replicated `Vec3` arrays (positions, forces).
//!
//! The chaos harness models cosmic-ray / bad-DIMM events as one bit of
//! one f64 flipping silently. The hook is deliberately dumb — pure bit
//! arithmetic, no RNG, no time source — so the *schedule* (which step,
//! which atom, which bit) lives entirely in the seeded fault plan and
//! every rank of a replicated-data run applies the identical flip.

use crate::vec3::Vec3;

/// Flips `bit` (0..64, little-endian significance) of the `axis`
/// (0..3) component of `vs[atom % vs.len()]` in place. Returns the
/// `(before, after)` component values, or `None` when `vs` is empty.
///
/// Flipping the same bit twice restores the original value exactly.
pub fn flip_vec3_bit(vs: &mut [Vec3], atom: usize, axis: u8, bit: u8) -> Option<(f64, f64)> {
    if vs.is_empty() {
        return None;
    }
    debug_assert!(axis < 3, "axis {axis} outside 0..3");
    debug_assert!(bit < 64, "bit {bit} outside 0..64");
    let v = &mut vs[atom % vs.len()];
    let slot = match axis % 3 {
        0 => &mut v.x,
        1 => &mut v.y,
        _ => &mut v.z,
    };
    let before = *slot;
    let after = f64::from_bits(before.to_bits() ^ (1u64 << (bit & 63)));
    *slot = after;
    Some((before, after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_flip_restores_bit_exactly() {
        let mut vs = vec![Vec3::new(1.5, -2.25, 3.75); 4];
        let (before, after) = flip_vec3_bit(&mut vs, 2, 1, 13).unwrap();
        assert_ne!(before.to_bits(), after.to_bits());
        let (b2, a2) = flip_vec3_bit(&mut vs, 2, 1, 13).unwrap();
        assert_eq!(b2.to_bits(), after.to_bits());
        assert_eq!(a2.to_bits(), before.to_bits());
        assert_eq!(vs[2].y, -2.25);
    }

    #[test]
    fn sign_bit_flips_sign_and_low_mantissa_is_tiny() {
        let mut vs = vec![Vec3::new(4.0, 0.0, 0.0)];
        flip_vec3_bit(&mut vs, 0, 0, 63).unwrap();
        assert_eq!(vs[0].x, -4.0);
        let mut vs = vec![Vec3::new(4.0, 0.0, 0.0)];
        let (before, after) = flip_vec3_bit(&mut vs, 0, 0, 3).unwrap();
        let rel = ((after - before) / before).abs();
        assert!(rel > 0.0 && rel < 1e-12, "rel change {rel}");
    }

    #[test]
    fn top_exponent_flip_displaces_by_two_or_blows_up() {
        // Bit 62 is the chaos fuzzer's "detectable" class: whichever
        // state the bit starts in, the component either moves by at
        // least 2.0 or leaves the finite range entirely. |x| >= 2
        // collapses to a subnormal (displacement |x|); |x| < 2 jumps to
        // >= 2 (0.0 becomes exactly 2.0, 1.0 overflows to infinity).
        for x in [0.0, 1e-5, 0.3, 1.0, 1.999, 2.0, 3.0, 30.0, -7.5] {
            let mut vs = vec![Vec3::new(x, 0.0, 0.0)];
            let (before, after) = flip_vec3_bit(&mut vs, 0, 0, 62).unwrap();
            assert_eq!(before, x);
            assert!(
                !after.is_finite() || (after - before).abs() >= 2.0,
                "x = {x}: after = {after}"
            );
        }
    }

    #[test]
    fn atom_index_wraps_and_empty_is_none() {
        let mut vs = vec![Vec3::new(1.0, 1.0, 1.0); 3];
        flip_vec3_bit(&mut vs, 7, 0, 63).unwrap(); // 7 % 3 == 1
        assert_eq!(vs[1].x, -1.0);
        assert_eq!(vs[0].x, 1.0);
        let mut empty: Vec<Vec3> = Vec::new();
        assert!(flip_vec3_bit(&mut empty, 0, 0, 0).is_none());
    }
}
