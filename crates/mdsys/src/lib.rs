//! # cpc-md
//!
//! A CHARMM-style classical molecular dynamics engine, built from
//! scratch for the reproduction of *"Performance Characterization of a
//! Molecular Dynamics Code on PC Clusters"* (IPPS 2002).
//!
//! The crate provides everything a CHARMM energy calculation needs:
//!
//! * CHARMM functional forms for bonds, angles, dihedrals and impropers
//!   ([`bonded`]),
//! * switched Lennard-Jones plus shifted or Ewald-direct electrostatics
//!   ([`nonbonded`]) — the paper's "classic" model,
//! * smooth particle mesh Ewald ([`pme`]) validated against a naive
//!   Ewald sum ([`ewald`]) — the paper's "PME" model,
//! * cell-list Verlet neighbour lists ([`neighbor`]),
//! * velocity-Verlet dynamics ([`dynamics`]) with Berendsen/Langevin
//!   thermostats ([`thermostat`]) and steepest-descent minimization
//!   ([`minimize`]),
//! * virial/pressure ([`pressure`]), trajectory observables
//!   ([`observe`]) and checkpoint/XYZ I/O ([`io`]),
//! * synthetic workload builders ([`builder`]), including the
//!   3552-atom myoglobin-class system the paper benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use cpc_md::builder::water_box;
//! use cpc_md::dynamics::Simulation;
//! use cpc_md::energy::EnergyModel;
//!
//! let system = water_box(2, 3.1);
//! let mut sim = Simulation::new(system, EnergyModel::Classic, 0.001);
//! let report = sim.step();
//! assert!(report.total_energy().is_finite());
//! ```

#![warn(missing_docs)]

pub mod abft;
pub mod bonded;
pub mod builder;
pub mod constraints;
pub mod dynamics;
pub mod energy;
pub mod ewald;
pub mod forcefield;
pub mod io;
pub mod minimize;
pub mod neighbor;
pub mod nonbonded;
pub mod observe;
pub mod pbc;
pub mod pme;
pub mod pressure;
pub mod sdc;
pub mod snapshot;
pub mod special;
pub mod system;
pub mod tables;
pub mod thermostat;
pub mod topology;
pub mod units;
pub mod vec3;

pub use energy::{EnergyModel, EnergyReport, Evaluator, OpCounts};
pub use pbc::PbcBox;
pub use snapshot::{MdSnapshot, SnapshotError};
pub use system::System;
pub use vec3::Vec3;
