//! CHARMM-style force-field parameter types and the Lennard-Jones
//! parameter classes used by the synthetic systems.
//!
//! Functional forms (CHARMM conventions, no factor 1/2 on harmonics):
//!
//! * bond:      `E = k (r - r0)^2`
//! * angle:     `E = k (theta - theta0)^2`
//! * dihedral:  `E = k (1 + cos(n phi - delta))`
//! * improper:  `E = k (psi - psi0)^2`
//! * LJ:        `E = eps [ (rmin/r)^12 - 2 (rmin/r)^6 ]`
//!   with Lorentz-Berthelot-style combination
//!   `rmin_ij = rmin_i/2 + rmin_j/2`, `eps_ij = sqrt(eps_i eps_j)`.

use serde::{Deserialize, Serialize};

/// Harmonic bond parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BondParam {
    /// Force constant in kcal/(mol*A^2).
    pub k: f64,
    /// Equilibrium length in Angstrom.
    pub r0: f64,
}

/// Harmonic angle parameters, with CHARMM's optional Urey-Bradley
/// 1-3 term: `E = k (theta - theta0)^2 + kub (s - s0)^2` where `s` is
/// the i..k distance. `kub = 0` disables the UB component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AngleParam {
    /// Force constant in kcal/(mol*rad^2).
    pub k: f64,
    /// Equilibrium angle in radians.
    pub theta0: f64,
    /// Urey-Bradley force constant in kcal/(mol*A^2) (0 = off).
    pub kub: f64,
    /// Urey-Bradley equilibrium 1-3 distance in Angstrom.
    pub s0: f64,
}

impl AngleParam {
    /// Pure harmonic angle without a UB component.
    pub const fn harmonic(k: f64, theta0: f64) -> Self {
        AngleParam {
            k,
            theta0,
            kub: 0.0,
            s0: 0.0,
        }
    }

    /// CHARMM angle with a Urey-Bradley 1-3 spring.
    pub const fn with_ub(k: f64, theta0: f64, kub: f64, s0: f64) -> Self {
        AngleParam { k, theta0, kub, s0 }
    }
}

/// Cosine dihedral parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DihedralParam {
    /// Barrier height in kcal/mol.
    pub k: f64,
    /// Multiplicity.
    pub n: u32,
    /// Phase in radians.
    pub delta: f64,
}

/// Harmonic improper parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImproperParam {
    /// Force constant in kcal/(mol*rad^2).
    pub k: f64,
    /// Equilibrium out-of-plane angle in radians.
    pub psi0: f64,
}

/// Per-atom Lennard-Jones parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LjParam {
    /// Well depth in kcal/mol (stored positive).
    pub eps: f64,
    /// Half of the LJ minimum distance, `rmin/2`, in Angstrom.
    pub rmin_half: f64,
}

impl LjParam {
    /// Combines two per-atom parameter sets into pair parameters
    /// `(eps_ij, rmin_ij)` using CHARMM combination rules.
    #[inline]
    pub fn combine(self, other: LjParam) -> (f64, f64) {
        (
            (self.eps * other.eps).sqrt(),
            self.rmin_half + other.rmin_half,
        )
    }
}

/// Lennard-Jones classes for the synthetic systems. Values are in the
/// range of the CHARMM22 all-atom parameter set for the corresponding
/// element/environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomClass {
    /// Carbonyl / aromatic carbon.
    C,
    /// Aliphatic (tetrahedral) carbon.
    CT,
    /// Amide / amine nitrogen.
    N,
    /// Polar hydrogen (bonded to N or O).
    H,
    /// Nonpolar hydrogen (bonded to carbon).
    HA,
    /// Carbonyl / carboxylate oxygen.
    O,
    /// Water oxygen (TIP3P-like).
    OW,
    /// Water hydrogen (TIP3P-like).
    HW,
    /// Sulfur.
    S,
}

impl AtomClass {
    /// Lennard-Jones parameters for this class.
    pub fn lj(self) -> LjParam {
        match self {
            AtomClass::C => LjParam {
                eps: 0.110,
                rmin_half: 2.000,
            },
            AtomClass::CT => LjParam {
                eps: 0.080,
                rmin_half: 2.060,
            },
            AtomClass::N => LjParam {
                eps: 0.200,
                rmin_half: 1.850,
            },
            AtomClass::H => LjParam {
                eps: 0.046,
                rmin_half: 0.2245,
            },
            AtomClass::HA => LjParam {
                eps: 0.022,
                rmin_half: 1.320,
            },
            AtomClass::O => LjParam {
                eps: 0.120,
                rmin_half: 1.700,
            },
            AtomClass::OW => LjParam {
                eps: 0.1521,
                rmin_half: 1.7682,
            },
            AtomClass::HW => LjParam {
                eps: 0.046,
                rmin_half: 0.2245,
            },
            AtomClass::S => LjParam {
                eps: 0.450,
                rmin_half: 2.000,
            },
        }
    }

    /// Atomic mass in amu.
    pub fn mass(self) -> f64 {
        match self {
            AtomClass::C | AtomClass::CT => 12.011,
            AtomClass::N => 14.007,
            AtomClass::H | AtomClass::HA | AtomClass::HW => 1.008,
            AtomClass::O | AtomClass::OW => 15.999,
            AtomClass::S => 32.06,
        }
    }
}

/// Library of bonded parameters used by the synthetic system builders.
pub mod params {
    use super::*;
    use std::f64::consts::PI;

    /// Generic heavy-atom/heavy-atom bond.
    pub const BOND_HEAVY: BondParam = BondParam { k: 300.0, r0: 1.5 };
    /// Peptide C-N bond.
    pub const BOND_PEPTIDE: BondParam = BondParam { k: 370.0, r0: 1.33 };
    /// X-H bond.
    pub const BOND_XH: BondParam = BondParam { k: 450.0, r0: 1.0 };
    /// C=O bond.
    pub const BOND_CO_DOUBLE: BondParam = BondParam { k: 620.0, r0: 1.23 };
    /// Water O-H bond (TIP3P flexible).
    pub const BOND_WATER_OH: BondParam = BondParam {
        k: 450.0,
        r0: 0.9572,
    };
    /// Carbon monoxide C=O bond.
    pub const BOND_CARBON_MONOXIDE: BondParam = BondParam {
        k: 1115.0,
        r0: 1.128,
    };
    /// Sulfate S-O bond.
    pub const BOND_SULFATE: BondParam = BondParam { k: 540.0, r0: 1.48 };

    /// Generic heavy-atom angle (tetrahedral-ish).
    pub const ANGLE_HEAVY: AngleParam = AngleParam::harmonic(50.0, 1.911);
    /// Backbone angle around CA.
    pub const ANGLE_BACKBONE: AngleParam = AngleParam::with_ub(60.0, 1.939, 12.0, 2.4);
    /// Angle involving hydrogen.
    pub const ANGLE_XH: AngleParam = AngleParam::harmonic(35.0, 1.911);
    /// Water H-O-H angle (TIP3P flexible).
    pub const ANGLE_WATER: AngleParam = AngleParam::harmonic(55.0, 1.82421813);
    /// Sulfate O-S-O angle (tetrahedral).
    pub const ANGLE_SULFATE: AngleParam = AngleParam::harmonic(140.0, 1.9106332);

    /// Backbone phi/psi-style dihedral.
    pub const DIHEDRAL_BACKBONE: DihedralParam = DihedralParam {
        k: 0.6,
        n: 3,
        delta: 0.0,
    };
    /// Sidechain chain dihedral.
    pub const DIHEDRAL_SIDECHAIN: DihedralParam = DihedralParam {
        k: 0.2,
        n: 3,
        delta: 0.0,
    };
    /// Peptide omega dihedral (trans planar).
    pub const DIHEDRAL_OMEGA: DihedralParam = DihedralParam {
        k: 2.5,
        n: 2,
        delta: PI,
    };

    /// Planarity improper on carbonyl carbons.
    pub const IMPROPER_CARBONYL: ImproperParam = ImproperParam {
        k: 120.0,
        psi0: 0.0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_rules() {
        let a = LjParam {
            eps: 0.04,
            rmin_half: 1.0,
        };
        let b = LjParam {
            eps: 0.09,
            rmin_half: 2.0,
        };
        let (eps, rmin) = a.combine(b);
        assert!((eps - 0.06).abs() < 1e-12);
        assert!((rmin - 3.0).abs() < 1e-12);
    }

    #[test]
    fn combine_is_symmetric() {
        let a = AtomClass::C.lj();
        let b = AtomClass::OW.lj();
        assert_eq!(a.combine(b), b.combine(a));
    }

    #[test]
    fn masses_are_physical() {
        for class in [
            AtomClass::C,
            AtomClass::CT,
            AtomClass::N,
            AtomClass::H,
            AtomClass::HA,
            AtomClass::O,
            AtomClass::OW,
            AtomClass::HW,
            AtomClass::S,
        ] {
            assert!(class.mass() >= 1.0 && class.mass() <= 33.0);
            assert!(class.lj().eps > 0.0);
            assert!(class.lj().rmin_half > 0.0);
        }
    }

    #[test]
    fn water_angle_is_about_104_5_degrees() {
        let deg = params::ANGLE_WATER.theta0.to_degrees();
        assert!((deg - 104.52).abs() < 0.01);
    }
}
