//! Orthorhombic periodic boundary conditions and minimum-image
//! displacements.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An orthorhombic simulation box with edges along the Cartesian axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PbcBox {
    /// Edge lengths in Angstrom.
    pub lengths: Vec3,
}

impl PbcBox {
    /// Creates a box with the given edge lengths (all must be positive).
    pub fn new(lx: f64, ly: f64, lz: f64) -> Self {
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "box edges must be positive"
        );
        PbcBox {
            lengths: Vec3::new(lx, ly, lz),
        }
    }

    /// Box volume in cubic Angstrom.
    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }

    /// Minimum-image displacement `a - b` (the shortest periodic image).
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = a - b;
        d.x -= self.lengths.x * (d.x / self.lengths.x).round();
        d.y -= self.lengths.y * (d.y / self.lengths.y).round();
        d.z -= self.lengths.z * (d.z / self.lengths.z).round();
        d
    }

    /// Minimum-image distance between two points.
    #[inline]
    pub fn distance(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm()
    }

    /// Wraps a point into the primary cell `[0, L)` in each dimension.
    #[inline]
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            p.x.rem_euclid(self.lengths.x),
            p.y.rem_euclid(self.lengths.y),
            p.z.rem_euclid(self.lengths.z),
        )
    }

    /// Fractional coordinates of a point, each in `[0, 1)` after wrapping.
    #[inline]
    pub fn fractional(&self, p: Vec3) -> Vec3 {
        let w = self.wrap(p);
        Vec3::new(
            w.x / self.lengths.x,
            w.y / self.lengths.y,
            w.z / self.lengths.z,
        )
    }

    /// The shortest half-edge; pair cutoffs must not exceed this for the
    /// minimum-image convention to be valid.
    pub fn min_half_edge(&self) -> f64 {
        0.5 * self.lengths.x.min(self.lengths.y).min(self.lengths.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume() {
        let b = PbcBox::new(10.0, 20.0, 5.0);
        assert_eq!(b.volume(), 1000.0);
    }

    #[test]
    fn min_image_within_half_box() {
        let b = PbcBox::new(10.0, 10.0, 10.0);
        let d = b.min_image(Vec3::new(9.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0));
        assert!((d.x - (-1.0)).abs() < 1e-12);
        // Component magnitudes never exceed half the box.
        for (a, c) in [(0.1, 9.9), (4.9, 5.1), (0.0, 5.0)] {
            let d = b.min_image(Vec3::splat(a), Vec3::splat(c));
            assert!(d.x.abs() <= 5.0 + 1e-12);
        }
    }

    #[test]
    fn min_image_is_antisymmetric() {
        let b = PbcBox::new(8.0, 12.0, 9.0);
        let p = Vec3::new(7.3, 1.2, 8.8);
        let q = Vec3::new(0.4, 11.0, 0.3);
        let d1 = b.min_image(p, q);
        let d2 = b.min_image(q, p);
        assert!((d1 + d2).norm() < 1e-12);
    }

    #[test]
    fn wrap_into_primary_cell() {
        let b = PbcBox::new(10.0, 10.0, 10.0);
        let w = b.wrap(Vec3::new(-0.5, 10.5, 25.0));
        assert!((w.x - 9.5).abs() < 1e-12);
        assert!((w.y - 0.5).abs() < 1e-12);
        assert!((w.z - 5.0).abs() < 1e-12);
    }

    #[test]
    fn wrapping_does_not_change_distances() {
        let b = PbcBox::new(7.0, 9.0, 11.0);
        let p = Vec3::new(1.0, 2.0, 3.0);
        let q = Vec3::new(6.5, 8.5, 10.5);
        let d1 = b.distance(p, q);
        let d2 = b.distance(b.wrap(p + Vec3::new(7.0, -9.0, 22.0)), q);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn fractional_in_unit_interval() {
        let b = PbcBox::new(4.0, 5.0, 6.0);
        let f = b.fractional(Vec3::new(-1.0, 12.0, 3.0));
        for i in 0..3 {
            assert!((0.0..1.0).contains(&f[i]));
        }
        assert!((f.x - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_edge_rejected() {
        let _ = PbcBox::new(0.0, 1.0, 1.0);
    }
}
