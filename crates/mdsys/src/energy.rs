//! Unified total-energy evaluator: bonded + nonbonded (+ PME k-space),
//! mirroring the two CHARMM models the paper studies — "classic"
//! (everything cut/shifted at 10 A) and "PME".

use crate::bonded::{bonded_energy_forces, BondedEnergies};
use crate::neighbor::NeighborList;
use crate::nonbonded::{
    ewald_excluded_correction, ewald_self_energy, nonbonded_energy_forces, NonbondedEnergies,
    NonbondedOptions,
};
use crate::pme::{Pme, PmeParams};
use crate::system::System;
use crate::vec3::Vec3;

/// Which energy model to run — the paper's central algorithmic factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnergyModel {
    /// Shift/switch model: all electrostatics truncated at the cutoff.
    Classic,
    /// Particle mesh Ewald: erfc direct space + FFT reciprocal space.
    Pme(PmeParams),
}

/// Operation counts of one full energy evaluation; consumed by the
/// virtual-cluster cost model to charge computation time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// Nonbonded pairs actually evaluated (inside the cutoff).
    pub pairs: usize,
    /// Pairs visited in the list (distance checks).
    pub list_pairs: usize,
    /// Bonded terms evaluated.
    pub bonded_terms: usize,
    /// Excluded-pair Ewald corrections.
    pub excl_pairs: usize,
    /// PME spread mesh writes.
    pub spread_points: usize,
    /// PME FFT flops (both directions).
    pub fft_flops: f64,
    /// PME convolution mesh points.
    pub conv_points: usize,
    /// PME force-interpolation mesh reads.
    pub interp_points: usize,
    /// Neighbour-list rebuilds performed.
    pub list_rebuilds: usize,
}

impl OpCounts {
    /// Merges counts from another evaluation segment.
    pub fn add(&mut self, other: &OpCounts) {
        self.pairs += other.pairs;
        self.list_pairs += other.list_pairs;
        self.bonded_terms += other.bonded_terms;
        self.excl_pairs += other.excl_pairs;
        self.spread_points += other.spread_points;
        self.fft_flops += other.fft_flops;
        self.conv_points += other.conv_points;
        self.interp_points += other.interp_points;
        self.list_rebuilds += other.list_rebuilds;
    }
}

/// Energy components of one evaluation, kcal/mol.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Bonded terms.
    pub bonded: BondedEnergies,
    /// Short-range nonbonded terms.
    pub nonbonded: NonbondedEnergies,
    /// PME reciprocal-space energy (zero in the classic model).
    pub recip: f64,
    /// Ewald self term (zero in the classic model).
    pub self_term: f64,
    /// Excluded-pair correction (zero in the classic model).
    pub excluded: f64,
}

impl EnergyReport {
    /// Total potential energy.
    pub fn total(&self) -> f64 {
        self.bonded.total() + self.nonbonded.total() + self.recip + self.self_term + self.excluded
    }

    /// The paper's "classic calculation" share: everything except the
    /// k-space PME contributions.
    pub fn classic_part(&self) -> f64 {
        self.bonded.total() + self.nonbonded.total()
    }

    /// The paper's "PME calculation" share.
    pub fn pme_part(&self) -> f64 {
        self.recip + self.self_term + self.excluded
    }
}

/// Reusable evaluator owning the neighbour list and PME state.
pub struct Evaluator {
    model: EnergyModel,
    opts: NonbondedOptions,
    skin: f64,
    nblist: Option<NeighborList>,
    pme: Option<Pme>,
}

impl Evaluator {
    /// Default neighbour-list skin in Angstrom.
    pub const DEFAULT_SKIN: f64 = 2.0;

    /// Creates an evaluator for the given model.
    pub fn new(model: EnergyModel) -> Self {
        let opts = match model {
            EnergyModel::Classic => NonbondedOptions::classic(),
            EnergyModel::Pme(p) => NonbondedOptions::pme_direct(p.beta),
        };
        Evaluator {
            model,
            opts,
            skin: Self::DEFAULT_SKIN,
            nblist: None,
            pme: None,
        }
    }

    /// The active model.
    pub fn model(&self) -> EnergyModel {
        self.model
    }

    /// The nonbonded options in use.
    pub fn options(&self) -> &NonbondedOptions {
        &self.opts
    }

    /// Overrides the neighbour-list skin (drops any existing list).
    pub fn set_skin(&mut self, skin: f64) {
        assert!(skin >= 0.0);
        self.skin = skin;
        self.nblist = None;
    }

    /// Ensures the neighbour list is valid for the given coordinates;
    /// returns true if it was (re)built.
    pub fn refresh_neighbor_list(&mut self, system: &System) -> bool {
        match &mut self.nblist {
            Some(list) => {
                if list.needs_rebuild(&system.pbox, &system.positions) {
                    list.rebuild(&system.topology, &system.pbox, &system.positions);
                    true
                } else {
                    false
                }
            }
            None => {
                self.nblist = Some(NeighborList::build(
                    &system.topology,
                    &system.pbox,
                    &system.positions,
                    self.opts.cutoff,
                    self.skin,
                ));
                true
            }
        }
    }

    /// Read access to the current pair list (after a refresh).
    pub fn pair_list(&self) -> Option<&[(u32, u32)]> {
        self.nblist.as_ref().map(|l| l.pairs.as_slice())
    }

    /// Full energy + force evaluation. Forces are overwritten.
    pub fn evaluate(&mut self, system: &System, forces: &mut [Vec3]) -> (EnergyReport, OpCounts) {
        assert_eq!(forces.len(), system.n_atoms());
        for f in forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        let mut ops = OpCounts::default();
        if self.refresh_neighbor_list(system) {
            ops.list_rebuilds += 1;
        }
        let mut report = EnergyReport::default();

        // Bonded.
        let (bonded, n_terms) =
            bonded_energy_forces(&system.topology, &system.pbox, &system.positions, forces);
        report.bonded = bonded;
        ops.bonded_terms = n_terms;

        // Short-range nonbonded.
        let pairs = self
            .nblist
            .as_ref()
            .expect("list refreshed above")
            .pairs
            .as_slice();
        ops.list_pairs = pairs.len();
        let (nb, evaluated) = nonbonded_energy_forces(
            &system.topology,
            &system.pbox,
            &system.positions,
            pairs,
            &self.opts,
            forces,
        );
        report.nonbonded = nb;
        ops.pairs = evaluated;

        // PME k-space side.
        if let EnergyModel::Pme(params) = self.model {
            let pme = self
                .pme
                .get_or_insert_with(|| Pme::new(params, &system.pbox));
            let (recip, pme_ops) =
                pme.energy_forces(&system.topology, &system.pbox, &system.positions, forces);
            report.recip = recip;
            ops.spread_points = pme_ops.spread_points;
            ops.fft_flops = pme_ops.fft_flops;
            ops.conv_points = pme_ops.conv_points;
            ops.interp_points = pme_ops.interp_points;

            report.self_term = ewald_self_energy(&system.topology, params.beta);
            let (excl, n_excl) = ewald_excluded_correction(
                &system.topology,
                &system.pbox,
                &system.positions,
                params.beta,
                forces,
            );
            report.excluded = excl;
            ops.excl_pairs = n_excl;
        }
        (report, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;
    use cpc_fft::Dims3;

    #[test]
    fn classic_evaluation_runs_and_is_finite() {
        let sys = water_box(3, 3.1);
        let mut ev = Evaluator::new(EnergyModel::Classic);
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        let (report, ops) = ev.evaluate(&sys, &mut forces);
        assert!(report.total().is_finite());
        assert_eq!(report.pme_part(), 0.0);
        assert!(ops.pairs > 0);
        assert!(ops.bonded_terms > 0);
        assert_eq!(ops.spread_points, 0);
    }

    #[test]
    fn pme_evaluation_has_kspace_terms() {
        let sys = water_box(3, 3.1);
        let params = PmeParams {
            grid: Dims3::new(16, 16, 16),
            order: 4,
            beta: 0.34,
        };
        let mut ev = Evaluator::new(EnergyModel::Pme(params));
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        let (report, ops) = ev.evaluate(&sys, &mut forces);
        assert!(report.recip > 0.0, "recip {}", report.recip);
        assert!(report.self_term < 0.0);
        assert!(ops.fft_flops > 0.0);
        assert!(ops.excl_pairs > 0);
    }

    #[test]
    fn forces_sum_to_zero() {
        // All interactions are internal: net force must vanish — exactly
        // for the pairwise classic model, and up to the well-known
        // interpolation noise for smooth PME (which does not conserve
        // momentum exactly).
        let sys = water_box(3, 3.1);
        for model in [
            EnergyModel::Classic,
            EnergyModel::Pme(PmeParams {
                grid: Dims3::new(16, 16, 16),
                order: 4,
                beta: 0.34,
            }),
        ] {
            let mut ev = Evaluator::new(model);
            let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
            ev.evaluate(&sys, &mut forces);
            let net: Vec3 = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
            let total: f64 = forces.iter().map(|f| f.norm()).sum();
            let tol = match model {
                EnergyModel::Classic => 1e-6,
                EnergyModel::Pme(_) => 1e-3 * total,
            };
            assert!(
                net.norm() < tol,
                "model {model:?}: net {net:?} (sum |F| {total})"
            );
        }
    }

    #[test]
    fn repeated_evaluation_is_stable() {
        let sys = water_box(2, 3.1);
        let mut ev = Evaluator::new(EnergyModel::Classic);
        let mut f1 = vec![Vec3::ZERO; sys.n_atoms()];
        let (r1, _) = ev.evaluate(&sys, &mut f1);
        let mut f2 = vec![Vec3::ZERO; sys.n_atoms()];
        let (r2, ops2) = ev.evaluate(&sys, &mut f2);
        assert_eq!(r1.total(), r2.total());
        assert_eq!(f1, f2);
        // Second evaluation must not rebuild the list.
        assert_eq!(ops2.list_rebuilds, 0);
    }
}
