//! Classical Ewald summation: the exact (naive) reciprocal-space sum
//! used as the correctness reference for the PME solver, plus a helper
//! assembling the full electrostatic energy.

use crate::nonbonded::{ewald_excluded_correction, ewald_self_energy};
use crate::pbc::PbcBox;
use crate::topology::Topology;
use crate::units::COULOMB;
use crate::vec3::Vec3;
use std::f64::consts::TAU;

/// Naive O(N * K^3) reciprocal-space Ewald sum.
///
/// `kmax` bounds the integer reciprocal vector components. Forces are
/// accumulated into `forces`; the energy is returned in kcal/mol.
pub fn ewald_recip_reference(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    beta: f64,
    kmax: i32,
    forces: &mut [Vec3],
) -> f64 {
    let v = pbox.volume();
    let prefactor = COULOMB * TAU / v; // C * 2 pi / V
    let gamma = 1.0 / (4.0 * beta * beta);
    let l = pbox.lengths;
    let mut energy = 0.0;

    for nx in -kmax..=kmax {
        for ny in -kmax..=kmax {
            for nz in -kmax..=kmax {
                if nx == 0 && ny == 0 && nz == 0 {
                    continue;
                }
                let k = Vec3::new(
                    TAU * nx as f64 / l.x,
                    TAU * ny as f64 / l.y,
                    TAU * nz as f64 / l.z,
                );
                let k2 = k.norm_sqr();
                let w = (-gamma * k2).exp() / k2;

                // Structure factor S(k) = sum q e^{i k.r}.
                let mut s_re = 0.0;
                let mut s_im = 0.0;
                for (a, &p) in topo.atoms.iter().zip(positions) {
                    let phase = k.dot(p);
                    s_re += a.charge * phase.cos();
                    s_im += a.charge * phase.sin();
                }
                energy += prefactor * w * (s_re * s_re + s_im * s_im);

                // F_i = C (2 pi / V) w * 2 q_i k Im[S* e^{i k r_i}].
                for (a, (&p, f)) in topo
                    .atoms
                    .iter()
                    .zip(positions.iter().zip(forces.iter_mut()))
                {
                    let phase = k.dot(p);
                    let (sin_p, cos_p) = phase.sin_cos();
                    // Im[(s_re - i s_im)(cos + i sin)] = s_re sin - s_im cos.
                    let im = s_re * sin_p - s_im * cos_p;
                    *f += k * (prefactor * w * 2.0 * a.charge * im);
                }
            }
        }
    }
    energy
}

/// Components of a full Ewald electrostatic energy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EwaldEnergies {
    /// Reciprocal-space sum.
    pub recip: f64,
    /// Self-interaction correction (negative).
    pub self_term: f64,
    /// Excluded-pair correction (removes k-space contribution of bonded
    /// neighbours).
    pub excluded: f64,
}

impl EwaldEnergies {
    /// Sum of the k-space-side terms.
    pub fn total(&self) -> f64 {
        self.recip + self.self_term + self.excluded
    }
}

/// Full reference evaluation of the k-space side of an Ewald sum
/// (reciprocal + self + exclusion corrections) with forces.
pub fn ewald_kspace_reference(
    topo: &Topology,
    pbox: &PbcBox,
    positions: &[Vec3],
    beta: f64,
    kmax: i32,
    forces: &mut [Vec3],
) -> EwaldEnergies {
    let recip = ewald_recip_reference(topo, pbox, positions, beta, kmax, forces);
    let self_term = ewald_self_energy(topo, beta);
    let (excluded, _) = ewald_excluded_correction(topo, pbox, positions, beta, forces);
    EwaldEnergies {
        recip,
        self_term,
        excluded,
    }
}

/// A reasonable Ewald splitting parameter for a given cutoff: chooses
/// `beta` such that `erfc(beta * cutoff) ~ tolerance`.
pub fn beta_for_cutoff(cutoff: f64, tolerance: f64) -> f64 {
    // Solve erfc(beta * rc) = tol by bisection on beta.
    let mut lo = 0.01;
    let mut hi = 10.0;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if crate::special::erfc(mid * cutoff) > tolerance {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::AtomClass;
    use crate::topology::Atom;

    fn ion_pair() -> (Topology, PbcBox, Vec<Vec3>) {
        let mut topo = Topology {
            atoms: vec![
                Atom {
                    class: AtomClass::N,
                    charge: 1.0,
                },
                Atom {
                    class: AtomClass::O,
                    charge: -1.0,
                },
            ],
            ..Default::default()
        };
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(20.0, 20.0, 20.0);
        let positions = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(8.1, 6.0, 5.5)];
        (topo, pbox, positions)
    }

    #[test]
    fn madelung_nacl() {
        // Rock-salt lattice of +-1 charges, lattice constant a: the
        // Madelung constant is 1.7476 per ion pair. Total electrostatic
        // energy = -C * M * N_pairs / r_nn.
        let a = 5.0_f64;
        let cells = 2; // 2x2x2 unit cells, 64 ions
        let mut topo = Topology::default();
        let mut positions = Vec::new();
        let half = a / 2.0;
        for ix in 0..2 * cells {
            for iy in 0..2 * cells {
                for iz in 0..2 * cells {
                    let q = if (ix + iy + iz) % 2 == 0 { 1.0 } else { -1.0 };
                    topo.atoms.push(Atom {
                        class: AtomClass::N,
                        charge: q,
                    });
                    positions.push(Vec3::new(
                        half * ix as f64,
                        half * iy as f64,
                        half * iz as f64,
                    ));
                }
            }
        }
        topo.rebuild_exclusions();
        let pbox = PbcBox::new(a * cells as f64, a * cells as f64, a * cells as f64);

        let beta = 0.9; // strong screening so the direct sum converges fast
        let n = positions.len();
        let mut forces = vec![Vec3::ZERO; n];
        let e = ewald_kspace_reference(&topo, &pbox, &positions, beta, 12, &mut forces);

        // Direct-space part via erfc over minimum images.
        let mut direct = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let r = pbox.distance(positions[i], positions[j]);
                direct += COULOMB
                    * topo.atoms[i].charge
                    * topo.atoms[j].charge
                    * crate::special::erfc(beta * r)
                    / r;
            }
        }
        let total = e.total() + direct;
        let n_ions = n as f64;
        let madelung = -total / (COULOMB * n_ions / 2.0) * half;
        assert!(
            (madelung - 1.7476).abs() < 2e-3,
            "madelung constant {madelung} (total {total})"
        );
        // Forces vanish by symmetry on a perfect lattice.
        for f in &forces {
            assert!(f.norm() < 1e-6);
        }
    }

    #[test]
    fn recip_forces_match_numeric_gradient() {
        let (topo, pbox, positions) = ion_pair();
        let beta = 0.35;
        let kmax = 8;
        let mut forces = vec![Vec3::ZERO; 2];
        ewald_recip_reference(&topo, &pbox, &positions, beta, kmax, &mut forces);
        let h = 1e-5;
        for c in 0..3 {
            let mut plus = positions.clone();
            let mut minus = positions.clone();
            plus[0][c] += h;
            minus[0][c] -= h;
            let mut dummy = vec![Vec3::ZERO; 2];
            let ep = ewald_recip_reference(&topo, &pbox, &plus, beta, kmax, &mut dummy);
            let mut dummy = vec![Vec3::ZERO; 2];
            let em = ewald_recip_reference(&topo, &pbox, &minus, beta, kmax, &mut dummy);
            let numeric = -(ep - em) / (2.0 * h);
            assert!(
                (forces[0][c] - numeric).abs() < 1e-6,
                "component {c}: {} vs {numeric}",
                forces[0][c]
            );
        }
    }

    #[test]
    fn total_ewald_independent_of_beta() {
        // The physical energy must not depend on the splitting parameter
        // (within truncation error).
        let (topo, pbox, positions) = ion_pair();
        let total_for = |beta: f64, kmax: i32| {
            let mut forces = vec![Vec3::ZERO; 2];
            let k = ewald_kspace_reference(&topo, &pbox, &positions, beta, kmax, &mut forces);
            let r = pbox.distance(positions[0], positions[1]);
            let direct = COULOMB
                * topo.atoms[0].charge
                * topo.atoms[1].charge
                * crate::special::erfc(beta * r)
                / r;
            k.total() + direct
        };
        let e1 = total_for(0.35, 10);
        let e2 = total_for(0.5, 14);
        assert!((e1 - e2).abs() < 1e-3, "{e1} vs {e2}");
    }

    #[test]
    fn beta_for_cutoff_hits_tolerance() {
        let beta = beta_for_cutoff(10.0, 1e-6);
        let v = crate::special::erfc(beta * 10.0);
        assert!((v - 1e-6).abs() < 1e-8, "erfc(beta rc) = {v}");
    }

    #[test]
    fn neutral_pair_recip_energy_is_positive_quantity_sum() {
        // |S(k)|^2 >= 0 and the weights are positive, so recip >= 0.
        let (topo, pbox, positions) = ion_pair();
        let mut forces = vec![Vec3::ZERO; 2];
        let e = ewald_recip_reference(&topo, &pbox, &positions, 0.4, 6, &mut forces);
        assert!(e >= 0.0);
    }
}
