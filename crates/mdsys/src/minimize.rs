//! Energy minimization: steepest descent with adaptive step control
//! (CHARMM `MINI SD`) and Polak-Ribiere conjugate gradients with
//! backtracking line search (CHARMM `MINI CONJ`). Fresh synthetic
//! systems are relaxed with SD; CG converges much faster near a
//! minimum.

use crate::energy::{EnergyModel, Evaluator};
use crate::system::System;
use crate::vec3::Vec3;

/// Result of a minimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinimizeResult {
    /// Potential energy before.
    pub initial_energy: f64,
    /// Potential energy after.
    pub final_energy: f64,
    /// Steps actually taken (accepted).
    pub steps_taken: usize,
}

/// Runs up to `steps` steepest-descent steps on `system` under `model`.
///
/// Displacements are capped at 0.2 A per step; the step size grows by
/// 20% on energy decrease and halves on increase (move rejected).
pub fn minimize(system: &mut System, model: EnergyModel, steps: usize) -> MinimizeResult {
    let n = system.n_atoms();
    let mut evaluator = Evaluator::new(model);
    let mut forces = vec![Vec3::ZERO; n];
    let (report, _) = evaluator.evaluate(system, &mut forces);
    let initial_energy = report.total();
    let mut energy = initial_energy;

    let max_disp = 0.2;
    let mut step_size: f64 = 0.01;
    let mut taken = 0usize;
    let mut trial = system.positions.clone();

    for _ in 0..steps {
        // Largest force component sets the scale so the cap is honoured.
        let fmax = forces.iter().map(|f| f.norm()).fold(0.0f64, f64::max);
        if fmax < 1e-8 {
            break; // converged
        }
        let scale = (step_size).min(max_disp / fmax);
        for ((t, &p), &f) in trial.iter_mut().zip(&system.positions).zip(&forces) {
            *t = p + f * scale;
        }
        std::mem::swap(&mut system.positions, &mut trial);
        let (report, _) = evaluator.evaluate(system, &mut forces);
        let new_energy = report.total();
        if new_energy <= energy {
            energy = new_energy;
            step_size *= 1.2;
            taken += 1;
        } else {
            // Reject: restore coordinates, shrink the step, recompute
            // forces at the restored point.
            std::mem::swap(&mut system.positions, &mut trial);
            step_size *= 0.5;
            let (report, _) = evaluator.evaluate(system, &mut forces);
            energy = report.total();
            if step_size < 1e-10 {
                break;
            }
        }
    }
    MinimizeResult {
        initial_energy,
        final_energy: energy,
        steps_taken: taken,
    }
}

/// Polak-Ribiere conjugate-gradient minimization with a backtracking
/// line search. Restarts the direction on loss of descent.
pub fn minimize_cg(system: &mut System, model: EnergyModel, steps: usize) -> MinimizeResult {
    let n = system.n_atoms();
    let mut evaluator = Evaluator::new(model);
    let mut forces = vec![Vec3::ZERO; n];
    let (report, _) = evaluator.evaluate(system, &mut forces);
    let initial_energy = report.total();
    let mut energy = initial_energy;

    // Search direction starts along the force (negative gradient).
    let mut direction = forces.clone();
    let mut prev_forces = forces.clone();
    let mut taken = 0usize;
    let mut alpha: f64 = 1e-4;
    let max_disp = 0.25;

    for _ in 0..steps {
        let fmax = forces.iter().map(|f| f.norm()).fold(0.0f64, f64::max);
        if fmax < 1e-8 {
            break;
        }
        let dmax = direction
            .iter()
            .map(|d| d.norm())
            .fold(0.0f64, f64::max)
            .max(1e-300);
        // Descent check: restart along the gradient if the conjugate
        // direction stopped pointing downhill.
        let descent: f64 = direction.iter().zip(&forces).map(|(d, f)| d.dot(*f)).sum();
        if descent <= 0.0 {
            direction.copy_from_slice(&forces);
        }

        // Backtracking line search along `direction`.
        let start_positions = system.positions.clone();
        let mut step = alpha.min(max_disp / dmax);
        let mut accepted = false;
        for _ in 0..20 {
            for (p, (s0, d)) in system
                .positions
                .iter_mut()
                .zip(start_positions.iter().zip(&direction))
            {
                *p = *s0 + *d * step;
            }
            let mut trial_forces = vec![Vec3::ZERO; n];
            let (r, _) = evaluator.evaluate(system, &mut trial_forces);
            if r.total() < energy {
                energy = r.total();
                prev_forces.copy_from_slice(&forces);
                forces = trial_forces;
                accepted = true;
                alpha = step * 1.5;
                break;
            }
            step *= 0.4;
        }
        if !accepted {
            system.positions.copy_from_slice(&start_positions);
            // Re-evaluate forces at the restored point and restart SD.
            let (r, _) = evaluator.evaluate(system, &mut forces);
            energy = r.total();
            direction.copy_from_slice(&forces);
            alpha *= 0.5;
            if alpha < 1e-12 {
                break;
            }
            continue;
        }
        taken += 1;

        // Polak-Ribiere beta (in force convention g = -F):
        // beta = F_new . (F_new - F_old) / |F_old|^2.
        let num: f64 = forces
            .iter()
            .zip(&prev_forces)
            .map(|(f, p)| f.dot(*f - *p))
            .sum();
        let den: f64 = prev_forces
            .iter()
            .map(|p| p.norm_sqr())
            .sum::<f64>()
            .max(1e-300);
        let beta = (num / den).max(0.0);
        for (d, f) in direction.iter_mut().zip(&forces) {
            *d = *f + *d * beta;
        }
    }
    MinimizeResult {
        initial_energy,
        final_energy: energy,
        steps_taken: taken,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;

    #[test]
    fn minimization_lowers_energy() {
        let mut sys = water_box(2, 3.0);
        // Perturb the geometry so there is something to relax.
        for (i, p) in sys.positions.iter_mut().enumerate() {
            p.x += 0.05 * ((i * 7 % 13) as f64 - 6.0) / 6.0;
            p.y += 0.04 * ((i * 5 % 11) as f64 - 5.0) / 5.0;
        }
        let result = minimize(&mut sys, EnergyModel::Classic, 60);
        assert!(
            result.final_energy < result.initial_energy,
            "{} -> {}",
            result.initial_energy,
            result.final_energy
        );
        assert!(result.steps_taken > 0);
    }

    #[test]
    fn minimization_of_relaxed_system_is_gentle() {
        let mut sys = water_box(2, 3.0);
        let r1 = minimize(&mut sys, EnergyModel::Classic, 80);
        let r2 = minimize(&mut sys, EnergyModel::Classic, 20);
        // Second round starts near a minimum: little further descent.
        assert!(r2.initial_energy <= r1.initial_energy);
        assert!(r1.final_energy - r2.final_energy >= -1e-6);
    }

    #[test]
    fn conjugate_gradient_lowers_energy() {
        let mut sys = water_box(2, 3.0);
        for (i, p) in sys.positions.iter_mut().enumerate() {
            p.x += 0.06 * ((i * 7 % 13) as f64 - 6.0) / 6.0;
            p.z += 0.05 * ((i * 3 % 11) as f64 - 5.0) / 5.0;
        }
        let result = minimize_cg(&mut sys, EnergyModel::Classic, 80);
        assert!(result.final_energy < result.initial_energy);
        assert!(result.steps_taken > 0);
    }

    #[test]
    fn cg_converges_at_least_as_low_as_sd_in_same_budget() {
        let perturbed = || {
            let mut sys = water_box(2, 3.0);
            for (i, p) in sys.positions.iter_mut().enumerate() {
                p.y += 0.08 * ((i * 5 % 17) as f64 - 8.0) / 8.0;
            }
            sys
        };
        let mut a = perturbed();
        let sd = minimize(&mut a, EnergyModel::Classic, 60);
        let mut b = perturbed();
        let cg = minimize_cg(&mut b, EnergyModel::Classic, 60);
        assert!(
            cg.final_energy <= sd.final_energy + 1.0,
            "CG {} vs SD {}",
            cg.final_energy,
            sd.final_energy
        );
    }

    #[test]
    fn cg_near_minimum_is_stable() {
        let mut sys = water_box(2, 3.0);
        minimize(&mut sys, EnergyModel::Classic, 100);
        let r = minimize_cg(&mut sys, EnergyModel::Classic, 30);
        assert!(r.final_energy <= r.initial_energy + 1e-9);
    }

    #[test]
    fn zero_steps_is_identity() {
        let mut sys = water_box(2, 3.0);
        let before = sys.positions.clone();
        let result = minimize(&mut sys, EnergyModel::Classic, 0);
        assert_eq!(sys.positions, before);
        assert_eq!(result.steps_taken, 0);
        assert_eq!(result.initial_energy, result.final_energy);
    }
}
