//! Interpolation tables for the expensive pair functions — the
//! optimization every era CHARMM build used (`erfc` and the switching
//! polynomials were looked up, not computed, on a Pentium III).
//!
//! The table stores `f` and `df/dr` on a uniform grid in `r^2` (so the
//! pair loop needs no square root for the lookup) with linear
//! interpolation. Accuracy tests pin the error bounds.

use crate::special::erfc;
use std::f64::consts::PI;

/// A uniform table in `r^2` with linear interpolation, storing a
/// function and its derivative with respect to `r`.
#[derive(Debug, Clone)]
pub struct PairTable {
    r2_max: f64,
    inv_step: f64,
    /// (value, d/dr) at each knot.
    knots: Vec<(f64, f64)>,
}

impl PairTable {
    /// Builds a table for `f(r)`/`dfdr(r)` over `(0, r_max]` with
    /// `points` knots in `r^2`.
    pub fn build(
        r_max: f64,
        points: usize,
        f: impl Fn(f64) -> f64,
        dfdr: impl Fn(f64) -> f64,
    ) -> Self {
        assert!(r_max > 0.0 && points >= 2);
        let r2_max = r_max * r_max;
        let step = r2_max / (points - 1) as f64;
        let knots = (0..points)
            .map(|k| {
                let r2 = k as f64 * step;
                let r = r2.sqrt().max(1e-6);
                (f(r), dfdr(r))
            })
            .collect();
        PairTable {
            r2_max,
            inv_step: 1.0 / step,
            knots,
        }
    }

    /// The standard Ewald direct-space table: `erfc(beta r)/r` and its
    /// derivative, as used inside the PME pair loop.
    pub fn ewald_direct(beta: f64, r_max: f64, points: usize) -> Self {
        Self::build(
            r_max,
            points,
            |r| erfc(beta * r) / r,
            |r| {
                -erfc(beta * r) / (r * r)
                    - 2.0 * beta / PI.sqrt() * (-beta * beta * r * r).exp() / r
            },
        )
    }

    /// Looks up `(f, df/dr)` at squared distance `r2`. Clamps to the
    /// table range (callers cut off at `r_max` anyway).
    #[inline]
    pub fn lookup(&self, r2: f64) -> (f64, f64) {
        let x = (r2.clamp(0.0, self.r2_max)) * self.inv_step;
        let k = (x as usize).min(self.knots.len() - 2);
        let frac = x - k as f64;
        let (f0, d0) = self.knots[k];
        let (f1, d1) = self.knots[k + 1];
        (f0 + (f1 - f0) * frac, d0 + (d1 - d0) * frac)
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.knots.len()
    }

    /// Always false (at least two knots).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maximum relative error of the table against a reference function
    /// over `[r_lo, r_max]`, probed at `samples` points (for tests and
    /// accuracy reporting).
    pub fn max_relative_error(
        &self,
        reference: impl Fn(f64) -> f64,
        r_lo: f64,
        r_max: f64,
        samples: usize,
    ) -> f64 {
        let mut worst = 0.0f64;
        for s in 0..samples {
            let r = r_lo + (r_max - r_lo) * s as f64 / (samples - 1) as f64;
            let want = reference(r);
            let (got, _) = self.lookup(r * r);
            worst = worst.max((got - want).abs() / want.abs().max(1e-12));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewald_table_is_accurate_in_the_working_range() {
        let beta = 0.35;
        let table = PairTable::ewald_direct(beta, 12.0, 4096);
        let err = table.max_relative_error(|r| erfc(beta * r) / r, 1.0, 12.0, 2000);
        assert!(err < 5e-4, "relative error {err}");
    }

    #[test]
    fn derivative_matches_numeric_differentiation() {
        let beta = 0.35;
        let table = PairTable::ewald_direct(beta, 12.0, 8192);
        for &r in &[2.0f64, 5.0, 8.0, 9.9] {
            let h = 1e-4;
            let (fp, _) = table.lookup((r + h) * (r + h));
            let (fm, _) = table.lookup((r - h) * (r - h));
            let numeric = (fp - fm) / (2.0 * h);
            let (_, d) = table.lookup(r * r);
            assert!(
                (d - numeric).abs() < 2e-3 * d.abs().max(1e-6),
                "r={r}: {d} vs {numeric}"
            );
        }
    }

    #[test]
    fn denser_tables_are_more_accurate() {
        let beta = 0.35;
        let coarse = PairTable::ewald_direct(beta, 10.0, 256);
        let fine = PairTable::ewald_direct(beta, 10.0, 8192);
        let f = |r: f64| erfc(beta * r) / r;
        let e_coarse = coarse.max_relative_error(f, 1.5, 10.0, 500);
        let e_fine = fine.max_relative_error(f, 1.5, 10.0, 500);
        assert!(e_fine < e_coarse / 10.0, "{e_fine} vs {e_coarse}");
    }

    #[test]
    fn lookup_clamps_out_of_range() {
        let table = PairTable::ewald_direct(0.3, 10.0, 128);
        let (inside, _) = table.lookup(99.9);
        let (clamped, _) = table.lookup(150.0);
        assert!((inside - clamped).abs() < 1e-6);
        // Does not panic at zero either.
        let _ = table.lookup(0.0);
    }

    #[test]
    fn generic_builder_matches_custom_function() {
        // Table a simple polynomial where interpolation is near exact.
        let t = PairTable::build(5.0, 1024, |r| r * r, |r| 2.0 * r);
        for &r in &[0.5f64, 1.7, 3.3, 4.9] {
            let (f, d) = t.lookup(r * r);
            assert!((f - r * r).abs() < 1e-4, "f({r})");
            assert!((d - 2.0 * r).abs() < 2e-2, "df({r})");
        }
    }
}
