//! Three-component double-precision vectors for positions, velocities
//! and forces.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-vector of `f64` (Angstrom-based units throughout the crate).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline(always)]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components equal to `v`.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline(always)]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline(always)]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics in debug builds if the vector is (near) zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-300, "cannot normalize a zero vector");
        self / n
    }

    /// Component-wise multiplication.
    #[inline(always)]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x * rhs.x,
            y: self.y * rhs.y,
            z: self.z * rhs.z,
        }
    }

    /// Distance to another point.
    #[inline(always)]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
            z: self.z + rhs.z,
        }
    }
}

impl AddAssign for Vec3 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
            z: self.z - rhs.z,
        }
    }
}

impl SubAssign for Vec3 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Vec3) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, s: f64) -> Vec3 {
        Vec3 {
            x: self.x * s,
            y: self.y * s,
            z: self.z * s,
        }
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn div(self, s: f64) -> Vec3 {
        self * (1.0 / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn neg(self) -> Vec3 {
        Vec3 {
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline(always)]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        // Cross product is orthogonal to both inputs.
        let a = Vec3::new(1.2, -0.7, 3.3);
        let b = Vec3::new(0.4, 2.0, -1.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sqr(), 25.0);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn indexing_roundtrip() {
        let mut v = Vec3::ZERO;
        for i in 0..3 {
            v[i] = i as f64 + 1.0;
        }
        assert_eq!(v, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }
}
