//! Versioned binary snapshots of full MD state with per-section
//! integrity checksums.
//!
//! The JSON checkpoints in [`crate::io`] are human-readable but have
//! two durability problems: a partially written file parses as a hard
//! error with no diagnosis, and a flipped bit inside a coordinate can
//! parse *successfully* into silently wrong physics. This module is
//! the durable counterpart: a little-endian binary container whose
//! sections — positions, velocities, forces, thermostat RNG cursor,
//! auxiliary per-step energy log — each carry an FNV-1a 64-bit
//! checksum, so truncation and bit flips are detected at restore time
//! and classified precisely. All floats are stored via
//! `f64::to_le_bytes`, so a decode→encode round trip is bit-identical
//! (NaN payloads included) and restore reproduces the saved
//! trajectory exactly.
//!
//! Layout:
//!
//! ```text
//! magic   b"CPCSNAP\0"                      8 bytes
//! version u32                               4 bytes
//! nsect   u32                               4 bytes
//! section := tag [4 ascii] | len u64 | payload [len] | fnv1a64(tag‖len‖payload)
//! ```

use crate::pbc::PbcBox;
use crate::system::System;
use crate::thermostat::Thermostat;
use crate::vec3::Vec3;

/// File magic for snapshot containers.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CPCSNAP\0";
/// Current container format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot failed to decode. Distinguishing truncation from
/// corruption from format drift lets the checkpoint store report
/// *which* failure mode a fallback skipped over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer is shorter than a complete header or section.
    Truncated {
        /// What was being read when the data ran out.
        context: &'static str,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container version is newer than this code understands.
    UnsupportedVersion(u32),
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Four-character section tag, e.g. `"POS_"`.
        section: String,
    },
    /// A section decoded but its contents are inconsistent (wrong
    /// element count, unknown thermostat tag, ...).
    Malformed {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A required section is absent.
    MissingSection {
        /// Four-character tag of the absent section.
        section: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::Malformed { detail } => write!(f, "malformed snapshot: {detail}"),
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing section {section}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash, the integrity check for each section.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A complete, restartable MD state: everything the fault-tolerant
/// driver needs to resume a trajectory bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct MdSnapshot {
    /// Step index the state corresponds to (state *after* this many
    /// completed steps).
    pub step: u64,
    /// Periodic box edge lengths.
    pub box_lengths: Vec3,
    /// Atom positions (Angstrom).
    pub positions: Vec<Vec3>,
    /// Atom velocities (Angstrom/ps).
    pub velocities: Vec<Vec3>,
    /// Forces at `step`, so integration resumes without re-evaluating.
    pub forces: Vec<Vec3>,
    /// Thermostat configuration.
    pub thermostat: Thermostat,
    /// Thermostat RNG stream cursor: restoring it makes the stochastic
    /// noise sequence continue exactly where the snapshot left off.
    pub rng_cursor: u64,
    /// Auxiliary per-step log carried through restarts (the parallel
    /// driver stores `[classic, pme, kinetic]` energies per step).
    pub aux: Vec<[f64; 3]>,
}

impl MdSnapshot {
    /// Captures a snapshot of `system` (plus integrator side state).
    pub fn capture(system: &System, forces: &[Vec3], step: u64) -> Self {
        MdSnapshot {
            step,
            box_lengths: system.pbox.lengths,
            positions: system.positions.clone(),
            velocities: system.velocities.clone(),
            forces: forces.to_vec(),
            thermostat: Thermostat::None,
            rng_cursor: 0,
            aux: Vec::new(),
        }
    }

    /// Restores positions, velocities and box into `system`,
    /// bit-identically to what [`capture`](Self::capture) saw.
    ///
    /// # Panics
    /// Panics if the snapshot's atom count differs from the system's —
    /// restoring across topologies is always a logic error.
    pub fn restore_into(&self, system: &mut System) {
        assert_eq!(
            self.positions.len(),
            system.n_atoms(),
            "snapshot atom count mismatch"
        );
        system.pbox = PbcBox::new(self.box_lengths.x, self.box_lengths.y, self.box_lengths.z);
        system.positions.clone_from(&self.positions);
        system.velocities.clone_from(&self.velocities);
    }

    /// Serialized size in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        let vec3_payload = |v: &Vec<Vec3>| v.len() * 24;
        let section = |payload: usize| 4 + 8 + payload + 8;
        16 + section(16)
            + section(24)
            + section(vec3_payload(&self.positions))
            + section(vec3_payload(&self.velocities))
            + section(vec3_payload(&self.forces))
            + section(25)
            + section(8 + self.aux.len() * 24)
    }

    /// Encodes the snapshot into the versioned container format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&7u32.to_le_bytes());

        let mut meta = Vec::with_capacity(16);
        meta.extend_from_slice(&self.step.to_le_bytes());
        meta.extend_from_slice(&(self.positions.len() as u64).to_le_bytes());
        push_section(&mut out, *b"META", &meta);

        let mut boxp = Vec::with_capacity(24);
        push_vec3(&mut boxp, self.box_lengths);
        push_section(&mut out, *b"BOX_", &boxp);

        push_section(&mut out, *b"POS_", &encode_vec3s(&self.positions));
        push_section(&mut out, *b"VEL_", &encode_vec3s(&self.velocities));
        push_section(&mut out, *b"FRC_", &encode_vec3s(&self.forces));

        let mut th = Vec::with_capacity(25);
        let (tag, a, b) = match self.thermostat {
            Thermostat::None => (0u8, 0.0, 0.0),
            Thermostat::Berendsen { target, tau } => (1, target, tau),
            Thermostat::Langevin { target, gamma } => (2, target, gamma),
        };
        th.push(tag);
        th.extend_from_slice(&a.to_le_bytes());
        th.extend_from_slice(&b.to_le_bytes());
        th.extend_from_slice(&self.rng_cursor.to_le_bytes());
        push_section(&mut out, *b"THRM", &th);

        let mut aux = Vec::with_capacity(8 + self.aux.len() * 24);
        aux.extend_from_slice(&(self.aux.len() as u64).to_le_bytes());
        for row in &self.aux {
            for x in row {
                aux.extend_from_slice(&x.to_le_bytes());
            }
        }
        push_section(&mut out, *b"AUX_", &aux);

        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Decodes and integrity-checks a snapshot container.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8, "magic")? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32("version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let nsect = r.u32("section count")?;

        let mut step = None;
        let mut n_atoms = None;
        let mut box_lengths = None;
        let mut positions = None;
        let mut velocities = None;
        let mut forces = None;
        let mut thermostat = None;
        let mut rng_cursor = 0u64;
        let mut aux = Vec::new();

        for _ in 0..nsect {
            let (tag, payload) = r.section()?;
            let mut p = Reader {
                bytes: payload,
                pos: 0,
            };
            match &tag {
                b"META" => {
                    step = Some(p.u64("META.step")?);
                    n_atoms = Some(p.u64("META.n_atoms")? as usize);
                }
                b"BOX_" => {
                    box_lengths = Some(p.vec3("BOX_")?);
                }
                b"POS_" => positions = Some(decode_vec3s(payload, "POS_")?),
                b"VEL_" => velocities = Some(decode_vec3s(payload, "VEL_")?),
                b"FRC_" => forces = Some(decode_vec3s(payload, "FRC_")?),
                b"THRM" => {
                    let kind = p.take(1, "THRM.kind")?[0];
                    let a = p.f64("THRM.a")?;
                    let b = p.f64("THRM.b")?;
                    rng_cursor = p.u64("THRM.rng")?;
                    thermostat = Some(match kind {
                        0 => Thermostat::None,
                        1 => Thermostat::Berendsen { target: a, tau: b },
                        2 => Thermostat::Langevin {
                            target: a,
                            gamma: b,
                        },
                        other => {
                            return Err(SnapshotError::Malformed {
                                detail: format!("unknown thermostat tag {other}"),
                            });
                        }
                    });
                }
                b"AUX_" => {
                    let n = p.u64("AUX_.count")? as usize;
                    if payload.len() != 8 + n * 24 {
                        return Err(SnapshotError::Malformed {
                            detail: format!(
                                "AUX_ declares {n} rows but carries {} bytes",
                                payload.len()
                            ),
                        });
                    }
                    aux = Vec::with_capacity(n);
                    for _ in 0..n {
                        aux.push([p.f64("AUX_.row")?, p.f64("AUX_.row")?, p.f64("AUX_.row")?]);
                    }
                }
                // Unknown sections are skipped: older readers stay
                // forward-compatible with appended sections.
                _ => {}
            }
        }

        let snapshot = MdSnapshot {
            step: step.ok_or(SnapshotError::MissingSection { section: "META" })?,
            box_lengths: box_lengths.ok_or(SnapshotError::MissingSection { section: "BOX_" })?,
            positions: positions.ok_or(SnapshotError::MissingSection { section: "POS_" })?,
            velocities: velocities.ok_or(SnapshotError::MissingSection { section: "VEL_" })?,
            forces: forces.ok_or(SnapshotError::MissingSection { section: "FRC_" })?,
            thermostat: thermostat.ok_or(SnapshotError::MissingSection { section: "THRM" })?,
            rng_cursor,
            aux,
        };
        let expect = n_atoms.ok_or(SnapshotError::MissingSection { section: "META" })?;
        for (name, len) in [
            ("POS_", snapshot.positions.len()),
            ("VEL_", snapshot.velocities.len()),
            ("FRC_", snapshot.forces.len()),
        ] {
            if len != expect {
                return Err(SnapshotError::Malformed {
                    detail: format!("{name} has {len} atoms, META declares {expect}"),
                });
            }
        }
        Ok(snapshot)
    }
}

fn push_vec3(out: &mut Vec<u8>, v: Vec3) {
    out.extend_from_slice(&v.x.to_le_bytes());
    out.extend_from_slice(&v.y.to_le_bytes());
    out.extend_from_slice(&v.z.to_le_bytes());
}

fn encode_vec3s(vs: &[Vec3]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vs.len() * 24);
    for &v in vs {
        push_vec3(&mut out, v);
    }
    out
}

fn decode_vec3s(payload: &[u8], section: &'static str) -> Result<Vec<Vec3>, SnapshotError> {
    if !payload.len().is_multiple_of(24) {
        return Err(SnapshotError::Malformed {
            detail: format!("{section} payload is not a multiple of 24 bytes"),
        });
    }
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let mut out = Vec::with_capacity(payload.len() / 24);
    while r.pos < payload.len() {
        out.push(r.vec3(section)?);
    }
    Ok(out)
}

fn push_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    let start = out.len();
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated { context })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn vec3(&mut self, context: &'static str) -> Result<Vec3, SnapshotError> {
        Ok(Vec3::new(
            self.f64(context)?,
            self.f64(context)?,
            self.f64(context)?,
        ))
    }

    /// Reads one `tag | len | payload | checksum` section, verifying
    /// the checksum before handing the payload out.
    fn section(&mut self) -> Result<([u8; 4], &'a [u8]), SnapshotError> {
        let start = self.pos;
        let tag: [u8; 4] = self.take(4, "section tag")?.try_into().expect("4-byte tag");
        let len = self.u64("section length")? as usize;
        let payload = self.take(len, "section payload")?;
        let computed = fnv1a64(&self.bytes[start..self.pos]);
        let stored = self.u64("section checksum")?;
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch {
                section: String::from_utf8_lossy(&tag).into_owned(),
            });
        }
        Ok((tag, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;

    fn sample() -> MdSnapshot {
        let mut sys = water_box(2, 3.1);
        sys.assign_velocities(300.0, 7);
        let forces: Vec<Vec3> = sys
            .positions
            .iter()
            .map(|p| Vec3::new(p.x * 0.5, -p.y, p.z.sin()))
            .collect();
        let mut snap = MdSnapshot::capture(&sys, &forces, 42);
        snap.thermostat = Thermostat::Langevin {
            target: 300.0,
            gamma: 2.0,
        };
        snap.rng_cursor = 0xDEADBEEFCAFE;
        snap.aux = vec![[1.5, -2.25, 3.125], [f64::NAN, 0.0, -0.0]];
        snap
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(bytes.len(), snap.encoded_len());
        let back = MdSnapshot::decode(&bytes).unwrap();
        // PartialEq would reject NaN == NaN; compare the re-encoding,
        // which is exactly the stored bit pattern.
        assert_eq!(bytes, back.encode());
        assert_eq!(back.step, 42);
        assert_eq!(back.positions, snap.positions);
        assert_eq!(back.velocities, snap.velocities);
        assert_eq!(back.rng_cursor, snap.rng_cursor);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in [0, 7, 15, bytes.len() / 2, bytes.len() - 1] {
            let err = MdSnapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_flipped_bit_in_a_payload_is_detected() {
        let snap = sample();
        let clean = snap.encode();
        // Flip one bit in each section's payload region; the section
        // checksum must catch all of them.
        for byte_idx in (16..clean.len()).step_by(97) {
            let mut dirty = clean.clone();
            dirty[byte_idx] ^= 0x10;
            assert!(
                MdSnapshot::decode(&dirty).is_err(),
                "flip at byte {byte_idx} went undetected"
            );
        }
    }

    #[test]
    fn restore_into_reproduces_state() {
        let mut sys = water_box(2, 3.1);
        sys.assign_velocities(300.0, 7);
        let reference = sys.clone();
        let snap = MdSnapshot::capture(&sys, &[], 3);
        // Perturb, then restore.
        for p in &mut sys.positions {
            *p += Vec3::splat(1.0);
        }
        sys.velocities.iter_mut().for_each(|v| *v = Vec3::ZERO);
        let snap = MdSnapshot {
            forces: vec![Vec3::ZERO; reference.n_atoms()],
            ..snap
        };
        snap.restore_into(&mut sys);
        assert_eq!(sys.positions, reference.positions);
        assert_eq!(sys.velocities, reference.velocities);
    }

    #[test]
    fn unknown_thermostat_tag_is_malformed() {
        let snap = sample();
        let mut bytes = snap.encode();
        // Find the THRM section and corrupt its kind byte *and* refresh
        // the checksum, simulating a future writer.
        let pos = bytes
            .windows(4)
            .position(|w| w == b"THRM")
            .expect("THRM present");
        bytes[pos + 12] = 9;
        let len = 25usize;
        let checksum = fnv1a64(&bytes[pos..pos + 12 + len]);
        bytes[pos + 12 + len..pos + 12 + len + 8].copy_from_slice(&checksum.to_le_bytes());
        let err = MdSnapshot::decode(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err:?}");
    }
}
