//! Smooth particle mesh Ewald (Essmann et al., J. Chem. Phys. 103, 8577,
//! 1995): the reciprocal-space electrostatics solver whose parallel
//! behaviour the paper characterizes.
//!
//! Pipeline per evaluation:
//! 1. spread charges onto the mesh with cardinal B-splines,
//! 2. forward 3D FFT,
//! 3. multiply by the influence function (Gaussian screening, B-spline
//!    moduli, 1/m^2),
//! 4. inverse 3D FFT to obtain the convolution grid,
//! 5. interpolate forces back with the B-spline derivatives.
//!
//! The individual stages are public so the slab-decomposed parallel PME
//! in `cpc-charmm` can reuse them verbatim.

use crate::pbc::PbcBox;
use crate::topology::Topology;
use crate::units::COULOMB;
use crate::vec3::Vec3;
use cpc_fft::{Complex64, Dims3, Fft3d};
use std::f64::consts::{PI, TAU};

/// Maximum supported B-spline order.
pub const MAX_ORDER: usize = 8;

/// PME configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmeParams {
    /// Mesh dimensions (the paper uses 80 x 36 x 48).
    pub grid: Dims3,
    /// B-spline interpolation order (4 = cubic, the common choice).
    pub order: usize,
    /// Ewald splitting parameter in 1/Angstrom.
    pub beta: f64,
}

impl PmeParams {
    /// The paper's myoglobin setup: 80 x 36 x 48 mesh, order 4.
    pub fn paper(beta: f64) -> Self {
        PmeParams {
            grid: Dims3::new(80, 36, 48),
            order: 4,
            beta,
        }
    }

    /// Chooses a mesh for `pbox` with spacing at most `max_spacing`
    /// Angstrom per point, rounding each extent up to the next
    /// FFT-smooth size.
    pub fn for_box(pbox: &PbcBox, max_spacing: f64, order: usize, beta: f64) -> Self {
        assert!(max_spacing > 0.0);
        let pick = |len: f64| {
            let mut n = (len / max_spacing).ceil() as usize;
            n = n.max(order + 1);
            while !cpc_fft::is_smooth(n) {
                n += 1;
            }
            n
        };
        PmeParams {
            grid: Dims3::new(
                pick(pbox.lengths.x),
                pick(pbox.lengths.y),
                pick(pbox.lengths.z),
            ),
            order,
            beta,
        }
    }
}

/// Cardinal B-spline weights and derivatives for a fractional offset
/// `f` in `[0, 1)`.
///
/// Returns `(w, dw)` where `w[j] = M_n(f + j)` for `j` in `0..order`
/// and `dw[j] = d/df M_n(f + j)`.
pub fn bspline(f: f64, order: usize) -> ([f64; MAX_ORDER], [f64; MAX_ORDER]) {
    assert!(
        (2..=MAX_ORDER).contains(&order),
        "unsupported spline order {order}"
    );
    debug_assert!((0.0..1.0).contains(&f));
    let mut w = [0.0; MAX_ORDER];
    let mut dw = [0.0; MAX_ORDER];

    // Order 2: M2(f) = f on [0,1]; M2(f+1) = 1 - f.
    w[0] = f;
    w[1] = 1.0 - f;
    // Raise the order one step at a time:
    // M_k(u) = [u M_{k-1}(u) + (k - u) M_{k-1}(u - 1)] / (k - 1),
    // evaluated at u = f + j.
    for k in 3..=order {
        if k == order {
            // Derivative from the order-(k-1) values:
            // M_k'(u) = M_{k-1}(u) - M_{k-1}(u - 1).
            dw[0] = w[0];
            for j in 1..order {
                dw[j] = w[j] - w[j - 1];
            }
        }
        let div = 1.0 / (k - 1) as f64;
        let mut prev = 0.0; // M_{k-1}(f + j - 1), starts at j = 0 (zero)
        #[allow(clippy::needless_range_loop)]
        for j in 0..k {
            let u = f + j as f64;
            let cur = if j < k - 1 { w[j] } else { 0.0 };
            w[j] = div * (u * cur + (k as f64 - u) * prev);
            prev = cur;
        }
    }
    if order == 2 {
        dw[0] = 1.0;
        dw[1] = -1.0;
    }
    (w, dw)
}

/// Squared moduli of the B-spline Fourier factors along one dimension:
/// `bsp[m] = |b(m)|^2` with
/// `b(m) = e^{2 pi i (n-1) m / K} / sum_k M_n(k+1) e^{2 pi i m k / K}`.
pub fn bspline_moduli(k_dim: usize, order: usize) -> Vec<f64> {
    // M_n(1..n-1): spline values at the integer knots, obtained from the
    // weights at f = 0 (w[j] = M_n(j), and M_n(0) = 0).
    let (w, _) = bspline(0.0, order);
    let mut data = vec![0.0; order];
    for (j, slot) in data.iter_mut().enumerate() {
        *slot = w[j]; // M_n(j) for j = 0..order-1; data[0] = M_n(0) = 0
    }

    let mut out = vec![0.0; k_dim];
    for (m, slot) in out.iter_mut().enumerate() {
        let mut s_re = 0.0;
        let mut s_im = 0.0;
        for (k, &mk) in data.iter().enumerate().take(order).skip(1) {
            // sum_{k=0}^{n-2} M_n(k+1) e^{2 pi i m k / K}; here k index
            // shifted: data[k] = M_n(k), so use knots 1..n-1.
            let angle = TAU * m as f64 * (k - 1) as f64 / k_dim as f64;
            s_re += mk * angle.cos();
            s_im += mk * angle.sin();
        }
        let denom = s_re * s_re + s_im * s_im;
        // Denominator can vanish for odd orders at m = K/2; those modes
        // carry no spline weight, treat as zero contribution.
        *slot = if denom < 1e-12 { 0.0 } else { 1.0 / denom };
    }
    out
}

/// Per-atom spline data: base mesh indices and per-dimension weights.
#[derive(Debug, Clone, Copy)]
pub struct AtomSpline {
    /// Lowest mesh index touched in each dimension (may be negative
    /// before wrapping).
    pub base: [i64; 3],
    /// Weights per dimension: `w[d][t]` for offset `t`.
    pub w: [[f64; MAX_ORDER]; 3],
    /// Derivatives with respect to the *mesh-scaled* coordinate.
    pub dw: [[f64; MAX_ORDER]; 3],
}

/// Computes spline data for every atom.
///
/// Weight `t` in dimension `d` applies to mesh index
/// `(base[d] + t).rem_euclid(K_d)`.
pub fn compute_splines(
    pbox: &PbcBox,
    positions: &[Vec3],
    grid: Dims3,
    order: usize,
) -> Vec<AtomSpline> {
    let dims = [grid.nx, grid.ny, grid.nz];
    positions
        .iter()
        .map(|&p| {
            let s = pbox.fractional(p);
            let mut base = [0i64; 3];
            let mut w = [[0.0; MAX_ORDER]; 3];
            let mut dw = [[0.0; MAX_ORDER]; 3];
            for d in 0..3 {
                let u = s[d] * dims[d] as f64;
                let iu = u.floor();
                let f = u - iu;
                // Weight for mesh point g = iu - (order-1) + t is
                // M_n(u - g) = M_n(f + order - 1 - t) = w_arr[order-1-t].
                let (warr, dwarr) = bspline(f, order);
                base[d] = iu as i64 - (order as i64 - 1);
                for t in 0..order {
                    w[d][t] = warr[order - 1 - t];
                    dw[d][t] = dwarr[order - 1 - t];
                }
            }
            AtomSpline { base, w, dw }
        })
        .collect()
}

/// Spreads charges onto a (full) mesh. Returns the number of mesh
/// points written (atoms * order^3), the figure the cost model charges.
pub fn spread_charges(
    topo: &Topology,
    splines: &[AtomSpline],
    grid: Dims3,
    order: usize,
    mesh: &mut [Complex64],
) -> usize {
    assert_eq!(mesh.len(), grid.len());
    for v in mesh.iter_mut() {
        *v = Complex64::ZERO;
    }
    let mut points = 0usize;
    for (a, sp) in topo.atoms.iter().zip(splines) {
        let q = a.charge;
        if q == 0.0 {
            continue;
        }
        for tx in 0..order {
            let gx = (sp.base[0] + tx as i64).rem_euclid(grid.nx as i64) as usize;
            let qx = q * sp.w[0][tx];
            for ty in 0..order {
                let gy = (sp.base[1] + ty as i64).rem_euclid(grid.ny as i64) as usize;
                let qxy = qx * sp.w[1][ty];
                let row = (gx * grid.ny + gy) * grid.nz;
                for tz in 0..order {
                    let gz = (sp.base[2] + tz as i64).rem_euclid(grid.nz as i64) as usize;
                    mesh[row + gz].re += qxy * sp.w[2][tz];
                    points += 1;
                }
            }
        }
    }
    points
}

/// Builds the influence function `W(m)` over the full mesh:
/// `W = (C / (pi V)) exp(-pi^2 mbar^2 / beta^2) / mbar^2 * B(m)`,
/// `W(0) = 0`. The reciprocal energy is `E = 1/2 sum_m W(m) |FQ(m)|^2`.
pub fn influence_function(grid: Dims3, pbox: &PbcBox, beta: f64, order: usize) -> Vec<f64> {
    let bx = bspline_moduli(grid.nx, order);
    let by = bspline_moduli(grid.ny, order);
    let bz = bspline_moduli(grid.nz, order);
    let v = pbox.volume();
    let pref = COULOMB / (PI * v);
    let gamma = PI * PI / (beta * beta);
    let l = pbox.lengths;

    let mut w = vec![0.0; grid.len()];
    for mx in 0..grid.nx {
        let mbx = wrap_freq(mx, grid.nx) / l.x;
        for my in 0..grid.ny {
            let mby = wrap_freq(my, grid.ny) / l.y;
            for mz in 0..grid.nz {
                if mx == 0 && my == 0 && mz == 0 {
                    continue;
                }
                let mbz = wrap_freq(mz, grid.nz) / l.z;
                let m2 = mbx * mbx + mby * mby + mbz * mbz;
                w[grid.idx(mx, my, mz)] =
                    pref * (-gamma * m2).exp() / m2 * bx[mx] * by[my] * bz[mz];
            }
        }
    }
    w
}

/// Influence-function value at a single mesh point, given precomputed
/// per-dimension B-spline moduli. Identical to the corresponding entry
/// of [`influence_function`]; used by the slab-decomposed parallel PME
/// which only owns part of the mesh.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn influence_element(
    grid: Dims3,
    pbox: &PbcBox,
    beta: f64,
    bx: &[f64],
    by: &[f64],
    bz: &[f64],
    mx: usize,
    my: usize,
    mz: usize,
) -> f64 {
    if mx == 0 && my == 0 && mz == 0 {
        return 0.0;
    }
    let l = pbox.lengths;
    let mbx = wrap_freq(mx, grid.nx) / l.x;
    let mby = wrap_freq(my, grid.ny) / l.y;
    let mbz = wrap_freq(mz, grid.nz) / l.z;
    let m2 = mbx * mbx + mby * mby + mbz * mbz;
    let pref = COULOMB / (PI * pbox.volume());
    let gamma = PI * PI / (beta * beta);
    pref * (-gamma * m2).exp() / m2 * bx[mx] * by[my] * bz[mz]
}

/// Maps a mesh index to its signed frequency (`m` or `m - K`).
#[inline]
pub fn wrap_freq(m: usize, k: usize) -> f64 {
    if m <= k / 2 {
        m as f64
    } else {
        m as f64 - k as f64
    }
}

/// Operation counts of one PME evaluation, consumed by the cluster cost
/// model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PmeOpCounts {
    /// Mesh points written during spreading.
    pub spread_points: usize,
    /// Estimated FFT flops (both directions).
    pub fft_flops: f64,
    /// Mesh points touched by the influence multiply.
    pub conv_points: usize,
    /// Mesh points read during force interpolation.
    pub interp_points: usize,
}

/// A reusable sequential PME solver.
pub struct Pme {
    params: PmeParams,
    fft: Fft3d,
    /// Influence function; rebuilt if the box changes.
    influence: Vec<f64>,
    influence_box: PbcBox,
    mesh: Vec<Complex64>,
}

impl Pme {
    /// Creates a solver for the given parameters and box.
    pub fn new(params: PmeParams, pbox: &PbcBox) -> Self {
        let fft = Fft3d::new(params.grid);
        let influence = influence_function(params.grid, pbox, params.beta, params.order);
        Pme {
            params,
            fft,
            influence,
            influence_box: *pbox,
            mesh: vec![Complex64::ZERO; params.grid.len()],
        }
    }

    /// Configured parameters.
    pub fn params(&self) -> PmeParams {
        self.params
    }

    /// Reciprocal-space energy and forces. Forces are accumulated into
    /// `forces`; returns `(energy, op_counts)`.
    pub fn energy_forces(
        &mut self,
        topo: &Topology,
        pbox: &PbcBox,
        positions: &[Vec3],
        forces: &mut [Vec3],
    ) -> (f64, PmeOpCounts) {
        if *pbox != self.influence_box {
            self.influence =
                influence_function(self.params.grid, pbox, self.params.beta, self.params.order);
            self.influence_box = *pbox;
        }
        let grid = self.params.grid;
        let order = self.params.order;
        let mut ops = PmeOpCounts::default();

        let splines = compute_splines(pbox, positions, grid, order);
        ops.spread_points = spread_charges(topo, &splines, grid, order, &mut self.mesh);

        // Forward FFT.
        self.fft.forward(&mut self.mesh);
        ops.fft_flops += self.fft.flops();

        // Energy in k-space + multiply by the influence function.
        let mut energy = 0.0;
        for (v, &w) in self.mesh.iter_mut().zip(&self.influence) {
            energy += 0.5 * w * v.norm_sqr();
            *v = v.scale(w);
        }
        ops.conv_points = grid.len();

        // Back to real space: convolution grid phi(r).
        self.fft.inverse(&mut self.mesh);
        ops.fft_flops += self.fft.flops();
        // phi(r) = N * Re[IFFT(W FQ)](r); our inverse is normalized, so
        // scale by N.
        let scale = grid.len() as f64;

        // Force interpolation.
        let dims = [grid.nx, grid.ny, grid.nz];
        let l = pbox.lengths;
        let du = [
            dims[0] as f64 / l.x,
            dims[1] as f64 / l.y,
            dims[2] as f64 / l.z,
        ];
        for ((a, sp), f) in topo.atoms.iter().zip(&splines).zip(forces.iter_mut()) {
            let q = a.charge;
            if q == 0.0 {
                continue;
            }
            let mut grad = Vec3::ZERO;
            for tx in 0..order {
                let gx = (sp.base[0] + tx as i64).rem_euclid(grid.nx as i64) as usize;
                for ty in 0..order {
                    let gy = (sp.base[1] + ty as i64).rem_euclid(grid.ny as i64) as usize;
                    let row = (gx * grid.ny + gy) * grid.nz;
                    for tz in 0..order {
                        let gz = (sp.base[2] + tz as i64).rem_euclid(grid.nz as i64) as usize;
                        let phi = self.mesh[row + gz].re * scale;
                        grad.x += sp.dw[0][tx] * sp.w[1][ty] * sp.w[2][tz] * phi;
                        grad.y += sp.w[0][tx] * sp.dw[1][ty] * sp.w[2][tz] * phi;
                        grad.z += sp.w[0][tx] * sp.w[1][ty] * sp.dw[2][tz] * phi;
                        ops.interp_points += 1;
                    }
                }
            }
            // dE/dx = q * dQ/dx . phi; chain rule through mesh units.
            *f -= Vec3::new(grad.x * du[0], grad.y * du[1], grad.z * du[2]) * q;
        }
        (energy, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewald::ewald_recip_reference;
    use crate::forcefield::AtomClass;
    use crate::topology::Atom;

    fn random_system(n: usize, pbox: &PbcBox, seed: u64) -> (Topology, Vec<Vec3>) {
        let mut s = seed | 1;
        let mut rng = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / (1u64 << 53) as f64
        };
        let mut topo = Topology::default();
        let mut positions = Vec::new();
        let mut total_q = 0.0;
        for i in 0..n {
            let q = if i == n - 1 { -total_q } else { rng() - 0.5 };
            total_q += q;
            topo.atoms.push(Atom {
                class: AtomClass::O,
                charge: q,
            });
            positions.push(Vec3::new(
                rng() * pbox.lengths.x,
                rng() * pbox.lengths.y,
                rng() * pbox.lengths.z,
            ));
        }
        topo.rebuild_exclusions();
        (topo, positions)
    }

    #[test]
    fn bspline_partition_of_unity() {
        for order in [2usize, 3, 4, 5, 6] {
            for i in 0..20 {
                let f = i as f64 / 20.0;
                let (w, dw) = bspline(f, order);
                let sum: f64 = w[..order].iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "order {order} f {f}: sum {sum}");
                let dsum: f64 = dw[..order].iter().sum();
                assert!(dsum.abs() < 1e-12, "derivative sum {dsum}");
            }
        }
    }

    #[test]
    fn bspline_derivative_matches_numeric() {
        for order in [3usize, 4, 6] {
            let f = 0.37;
            let h = 1e-7;
            let (wp, _) = bspline(f + h, order);
            let (wm, _) = bspline(f - h, order);
            let (_, dw) = bspline(f, order);
            for j in 0..order {
                let numeric = (wp[j] - wm[j]) / (2.0 * h);
                assert!((dw[j] - numeric).abs() < 1e-6, "order {order} j {j}");
            }
        }
    }

    #[test]
    fn bspline_order4_known_values() {
        // M4 at integer knots: M4(1) = 1/6, M4(2) = 4/6, M4(3) = 1/6.
        let (w, _) = bspline(0.0, 4);
        assert!((w[1] - 1.0 / 6.0).abs() < 1e-12);
        assert!((w[2] - 4.0 / 6.0).abs() < 1e-12);
        assert!((w[3] - 1.0 / 6.0).abs() < 1e-12);
        assert!(w[0].abs() < 1e-12); // M4(0) = 0
    }

    #[test]
    fn spread_conserves_charge() {
        let pbox = PbcBox::new(20.0, 18.0, 22.0);
        let (topo, positions) = random_system(15, &pbox, 8);
        let grid = Dims3::new(20, 18, 24);
        let order = 4;
        let splines = compute_splines(&pbox, &positions, grid, order);
        let mut mesh = vec![Complex64::ZERO; grid.len()];
        spread_charges(&topo, &splines, grid, order, &mut mesh);
        let total: f64 = mesh.iter().map(|z| z.re).sum();
        assert!((total - topo.total_charge()).abs() < 1e-9);
    }

    #[test]
    fn pme_energy_matches_reference_ewald() {
        let pbox = PbcBox::new(16.0, 14.0, 15.0);
        let (topo, positions) = random_system(12, &pbox, 21);
        let beta = 0.45;

        let mut f_ref = vec![Vec3::ZERO; 12];
        let e_ref = ewald_recip_reference(&topo, &pbox, &positions, beta, 16, &mut f_ref);

        let mut pme = Pme::new(
            PmeParams {
                grid: Dims3::new(32, 30, 32),
                order: 6,
                beta,
            },
            &pbox,
        );
        let mut f_pme = vec![Vec3::ZERO; 12];
        let (e_pme, ops) = pme.energy_forces(&topo, &pbox, &positions, &mut f_pme);

        let rel = (e_pme - e_ref).abs() / e_ref.abs().max(1e-9);
        assert!(rel < 2e-3, "PME {e_pme} vs Ewald {e_ref} (rel {rel})");
        for (a, b) in f_pme.iter().zip(&f_ref) {
            assert!((*a - *b).norm() < 0.05 * (1.0 + b.norm()), "{a:?} vs {b:?}");
        }
        assert!(ops.spread_points > 0 && ops.fft_flops > 0.0);
    }

    #[test]
    fn pme_forces_match_own_numeric_gradient() {
        // Internal consistency: analytic force == -grad of the PME
        // energy itself (tight tolerance, independent of mesh accuracy).
        let pbox = PbcBox::new(12.0, 12.0, 12.0);
        let (topo, positions) = random_system(6, &pbox, 5);
        let beta = 0.4;
        let params = PmeParams {
            grid: Dims3::new(16, 16, 16),
            order: 4,
            beta,
        };
        let mut pme = Pme::new(params, &pbox);

        let mut forces = vec![Vec3::ZERO; 6];
        pme.energy_forces(&topo, &pbox, &positions, &mut forces);

        let h = 1e-5;
        for atom in [0usize, 3] {
            for c in 0..3 {
                let mut plus = positions.clone();
                let mut minus = positions.clone();
                plus[atom][c] += h;
                minus[atom][c] -= h;
                let mut dummy = vec![Vec3::ZERO; 6];
                let (ep, _) = pme.energy_forces(&topo, &pbox, &plus, &mut dummy);
                let mut dummy = vec![Vec3::ZERO; 6];
                let (em, _) = pme.energy_forces(&topo, &pbox, &minus, &mut dummy);
                let numeric = -(ep - em) / (2.0 * h);
                assert!(
                    (forces[atom][c] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "atom {atom} comp {c}: {} vs {numeric}",
                    forces[atom][c]
                );
            }
        }
    }

    #[test]
    fn pme_translational_invariance() {
        // Shifting every atom by the same vector must not change energy.
        let pbox = PbcBox::new(14.0, 14.0, 14.0);
        let (topo, positions) = random_system(10, &pbox, 33);
        let params = PmeParams {
            grid: Dims3::new(20, 20, 20),
            order: 4,
            beta: 0.4,
        };
        let mut pme = Pme::new(params, &pbox);
        let mut f = vec![Vec3::ZERO; 10];
        let (e1, _) = pme.energy_forces(&topo, &pbox, &positions, &mut f);
        let shifted: Vec<Vec3> = positions
            .iter()
            .map(|&p| p + Vec3::new(3.3, -1.7, 0.9))
            .collect();
        let mut f = vec![Vec3::ZERO; 10];
        let (e2, _) = pme.energy_forces(&topo, &pbox, &shifted, &mut f);
        // Interpolation error varies with the sub-mesh offset; order-4
        // PME is translation invariant only to ~1e-4 relative.
        assert!((e1 - e2).abs() < 1e-3 * e1.abs().max(1.0), "{e1} vs {e2}");
    }

    #[test]
    fn influence_element_matches_full_table() {
        let pbox = PbcBox::new(11.0, 13.0, 9.0);
        let grid = Dims3::new(10, 12, 8);
        let order = 4;
        let beta = 0.37;
        let table = influence_function(grid, &pbox, beta, order);
        let bx = bspline_moduli(grid.nx, order);
        let by = bspline_moduli(grid.ny, order);
        let bz = bspline_moduli(grid.nz, order);
        for mx in 0..grid.nx {
            for my in 0..grid.ny {
                for mz in 0..grid.nz {
                    let v = influence_element(grid, &pbox, beta, &bx, &by, &bz, mx, my, mz);
                    let want = table[grid.idx(mx, my, mz)];
                    assert!(
                        (v - want).abs() <= 1e-15 * want.abs().max(1e-300) + 0.0,
                        "({mx},{my},{mz}): {v} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn influence_function_zero_mode_is_zero() {
        let pbox = PbcBox::new(10.0, 10.0, 10.0);
        let w = influence_function(Dims3::new(8, 8, 8), &pbox, 0.4, 4);
        assert_eq!(w[0], 0.0);
        assert!(w.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn for_box_picks_smooth_grids_at_spacing() {
        let pbox = PbcBox::new(61.3, 37.1, 45.0);
        let p = PmeParams::for_box(&pbox, 1.0, 4, 0.35);
        for (n, l) in [
            (p.grid.nx, pbox.lengths.x),
            (p.grid.ny, pbox.lengths.y),
            (p.grid.nz, pbox.lengths.z),
        ] {
            assert!(cpc_fft::is_smooth(n), "{n} not smooth");
            assert!(
                l / n as f64 <= 1.0 + 1e-12,
                "spacing too coarse: {}",
                l / n as f64
            );
        }
        // The paper's own box maps exactly to the paper grid spacing class.
        let paper_box = PbcBox::new(60.0, 36.0, 48.0);
        let q = PmeParams::for_box(&paper_box, 1.0, 4, 0.35);
        assert_eq!((q.grid.ny, q.grid.nz), (36, 48));
    }

    #[test]
    fn wrap_freq_symmetry() {
        assert_eq!(wrap_freq(0, 8), 0.0);
        assert_eq!(wrap_freq(4, 8), 4.0);
        assert_eq!(wrap_freq(5, 8), -3.0);
        assert_eq!(wrap_freq(7, 8), -1.0);
    }
}
