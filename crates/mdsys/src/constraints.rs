//! SHAKE / RATTLE holonomic bond constraints — CHARMM's standard tool
//! for freezing fast X-H vibrations so production runs can use 2 fs
//! timesteps.
//!
//! `Shake` iteratively corrects positions until every constrained bond
//! is at its reference length (SHAKE); the RATTLE half removes the
//! velocity components along the constraints so the kinetic energy is
//! consistent with the constrained manifold.

use crate::pbc::PbcBox;
use crate::system::System;
use crate::topology::Topology;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// One distance constraint between atoms `i` and `j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// First atom.
    pub i: usize,
    /// Second atom.
    pub j: usize,
    /// Constrained distance in Angstrom.
    pub length: f64,
}

/// SHAKE solver state.
#[derive(Debug, Clone)]
pub struct Shake {
    constraints: Vec<Constraint>,
    inv_mass: Vec<f64>,
    tolerance: f64,
    max_iter: usize,
}

/// Result of one SHAKE solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShakeResult {
    /// Iterations used.
    pub iterations: usize,
    /// Largest relative violation after the solve.
    pub max_violation: f64,
    /// Whether the solve converged within tolerance.
    pub converged: bool,
}

impl Shake {
    /// Builds a solver for an explicit constraint set.
    pub fn new(topo: &Topology, constraints: Vec<Constraint>) -> Self {
        for c in &constraints {
            assert!(c.i < topo.n_atoms() && c.j < topo.n_atoms() && c.i != c.j);
            assert!(c.length > 0.0);
        }
        let inv_mass = topo.atoms.iter().map(|a| 1.0 / a.class.mass()).collect();
        Shake {
            constraints,
            inv_mass,
            tolerance: 1e-8,
            max_iter: 500,
        }
    }

    /// Constrains every X-H bond of the topology (CHARMM's
    /// `SHAKE BONH`): bonds where exactly one partner is a hydrogen.
    pub fn bonds_with_hydrogen(topo: &Topology) -> Self {
        use crate::forcefield::AtomClass;
        let is_h = |i: usize| {
            matches!(
                topo.atoms[i].class,
                AtomClass::H | AtomClass::HA | AtomClass::HW
            )
        };
        let constraints = topo
            .bonds
            .iter()
            .filter(|b| is_h(b.i) != is_h(b.j))
            .map(|b| Constraint {
                i: b.i,
                j: b.j,
                length: b.param.r0,
            })
            .collect();
        Shake::new(topo, constraints)
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Sets the convergence tolerance (relative bond-length error).
    pub fn set_tolerance(&mut self, tol: f64) {
        assert!(tol > 0.0);
        self.tolerance = tol;
    }

    /// SHAKE position correction: iteratively projects `positions` back
    /// onto the constraint manifold. `reference` holds the positions
    /// *before* the unconstrained move (the constraint directions are
    /// evaluated there, as in the original algorithm).
    pub fn apply_positions(
        &self,
        pbox: &PbcBox,
        reference: &[Vec3],
        positions: &mut [Vec3],
    ) -> ShakeResult {
        let mut iterations = 0;
        let mut max_violation = 0.0;
        for it in 0..self.max_iter {
            iterations = it + 1;
            max_violation = 0.0f64;
            for c in &self.constraints {
                let d = pbox.min_image(positions[c.i], positions[c.j]);
                let r2 = d.norm_sqr();
                let target2 = c.length * c.length;
                let diff = r2 - target2;
                let violation = (diff / target2).abs();
                max_violation = max_violation.max(violation);
                if violation < self.tolerance {
                    continue;
                }
                // Standard SHAKE update along the pre-move direction.
                let d_ref = pbox.min_image(reference[c.i], reference[c.j]);
                let denom = 2.0 * (self.inv_mass[c.i] + self.inv_mass[c.j]) * d.dot(d_ref);
                if denom.abs() < 1e-12 {
                    continue; // pathological geometry; skip this pass
                }
                let g = diff / denom;
                positions[c.i] -= d_ref * (g * self.inv_mass[c.i]);
                positions[c.j] += d_ref * (g * self.inv_mass[c.j]);
            }
            if max_violation < self.tolerance {
                return ShakeResult {
                    iterations,
                    max_violation,
                    converged: true,
                };
            }
        }
        ShakeResult {
            iterations,
            max_violation,
            converged: false,
        }
    }

    /// RATTLE velocity correction: removes the relative velocity
    /// component along each (satisfied) constraint.
    pub fn apply_velocities(
        &self,
        pbox: &PbcBox,
        positions: &[Vec3],
        velocities: &mut [Vec3],
    ) -> ShakeResult {
        let mut iterations = 0;
        let mut max_violation = 0.0;
        for it in 0..self.max_iter {
            iterations = it + 1;
            max_violation = 0.0f64;
            for c in &self.constraints {
                let d = pbox.min_image(positions[c.i], positions[c.j]);
                let v_rel = velocities[c.i] - velocities[c.j];
                let proj = d.dot(v_rel);
                // Dimensionless measure: projected speed over bond
                // length per ps.
                let violation = proj.abs() / (c.length * c.length);
                max_violation = max_violation.max(violation);
                if violation < self.tolerance * 1e3 {
                    continue;
                }
                let denom = d.norm_sqr() * (self.inv_mass[c.i] + self.inv_mass[c.j]);
                let k = proj / denom;
                velocities[c.i] -= d * (k * self.inv_mass[c.i]);
                velocities[c.j] += d * (k * self.inv_mass[c.j]);
            }
            if max_violation < self.tolerance * 1e3 {
                return ShakeResult {
                    iterations,
                    max_violation,
                    converged: true,
                };
            }
        }
        ShakeResult {
            iterations,
            max_violation,
            converged: false,
        }
    }

    /// Number of degrees of freedom removed (one per constraint) — used
    /// for constrained-temperature reporting.
    pub fn removed_dof(&self) -> usize {
        self.constraints.len()
    }

    /// Constrained-ensemble temperature of a system.
    pub fn temperature(&self, system: &System) -> f64 {
        let dof = (3 * system.n_atoms()).saturating_sub(self.removed_dof()) as f64;
        if dof == 0.0 {
            return 0.0;
        }
        2.0 * system.kinetic_energy() / (dof * crate::units::K_BOLTZMANN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::water_box;

    #[test]
    fn water_xh_constraints_found() {
        let sys = water_box(2, 3.1);
        let shake = Shake::bonds_with_hydrogen(&sys.topology);
        // Two O-H bonds per water.
        assert_eq!(shake.len(), 16);
        assert!(!shake.is_empty());
    }

    #[test]
    fn positions_projected_back_to_bond_lengths() {
        let sys = water_box(2, 3.1);
        let shake = Shake::bonds_with_hydrogen(&sys.topology);
        let reference = sys.positions.clone();
        // Perturb the hydrogens.
        let mut moved = reference.clone();
        let mut state = 7u64;
        for p in &mut moved {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.x += ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.12;
            p.y += ((state >> 17) as f64 / (1u64 << 47) as f64 - 0.5) * 0.05;
        }
        let result = shake.apply_positions(&sys.pbox, &reference, &mut moved);
        assert!(result.converged, "SHAKE failed: {result:?}");
        for b in &sys.topology.bonds {
            let r = sys.pbox.distance(moved[b.i], moved[b.j]);
            assert!(
                (r - b.param.r0).abs() / b.param.r0 < 1e-4,
                "bond {}-{} at {r} (target {})",
                b.i,
                b.j,
                b.param.r0
            );
        }
    }

    #[test]
    fn heavy_atom_moves_less_than_hydrogen() {
        // Momentum conservation: corrections are mass weighted.
        let sys = water_box(1, 3.1);
        let shake = Shake::bonds_with_hydrogen(&sys.topology);
        let reference = sys.positions.clone();
        let mut moved = reference.clone();
        moved[1].x += 0.2; // hydrogen displaced
        shake.apply_positions(&sys.pbox, &reference, &mut moved);
        let o_move = (moved[0] - reference[0]).norm();
        let h_move = (moved[1] - (reference[1] + Vec3::new(0.2, 0.0, 0.0))).norm();
        assert!(
            o_move < h_move / 10.0,
            "O moved {o_move}, H corrected {h_move}"
        );
    }

    #[test]
    fn velocity_projection_removes_bond_stretch_velocity() {
        let sys = water_box(1, 3.1);
        let shake = Shake::bonds_with_hydrogen(&sys.topology);
        let mut velocities = vec![Vec3::ZERO; sys.n_atoms()];
        // Hydrogen flying away from oxygen along the bond.
        let d = sys
            .pbox
            .min_image(sys.positions[1], sys.positions[0])
            .normalized();
        velocities[1] = d * 5.0;
        let result = shake.apply_velocities(&sys.pbox, &sys.positions, &mut velocities);
        assert!(result.converged);
        for c in 0..shake.len() {
            let con = shake.constraints[c];
            let dd = sys
                .pbox
                .min_image(sys.positions[con.i], sys.positions[con.j]);
            let v_rel = velocities[con.i] - velocities[con.j];
            assert!(dd.dot(v_rel).abs() < 1e-4, "residual stretch velocity");
        }
    }

    #[test]
    fn constrained_temperature_uses_reduced_dof() {
        let mut sys = water_box(2, 3.1);
        sys.assign_velocities(300.0, 3);
        let shake = Shake::bonds_with_hydrogen(&sys.topology);
        let t_unconstrained = sys.temperature();
        let t_constrained = shake.temperature(&sys);
        // Fewer DoF, same kinetic energy: higher apparent temperature.
        assert!(t_constrained > t_unconstrained);
        let dof_ratio = (3.0 * sys.n_atoms() as f64)
            / (3.0 * sys.n_atoms() as f64 - shake.removed_dof() as f64);
        assert!((t_constrained / t_unconstrained - dof_ratio).abs() < 1e-9);
    }

    #[test]
    fn momentum_is_conserved_by_corrections() {
        let sys = water_box(1, 3.1);
        let shake = Shake::bonds_with_hydrogen(&sys.topology);
        let reference = sys.positions.clone();
        let mut moved = reference.clone();
        moved[1].y += 0.15;
        moved[2].z -= 0.1;
        shake.apply_positions(&sys.pbox, &reference, &mut moved);
        // Mass-weighted sum of corrections (relative to the perturbed
        // state) must vanish: SHAKE applies equal and opposite impulses.
        let perturbed = {
            let mut p = reference.clone();
            p[1].y += 0.15;
            p[2].z -= 0.1;
            p
        };
        let mut net = Vec3::ZERO;
        for i in 0..sys.n_atoms() {
            let m = sys.topology.atoms[i].class.mass();
            net += (moved[i] - perturbed[i]) * m;
        }
        assert!(net.norm() < 1e-9, "net mass-weighted correction {net:?}");
    }
}
