//! Property-based tests of the FFT library: algebraic identities that
//! must hold for arbitrary sizes and inputs.

use cpc_fft::{dft, Complex64, Dims3, Fft3d, FftPlan, RealFft};
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_for_arbitrary_sizes(x in arb_signal(160)) {
        let n = x.len();
        let plan = FftPlan::new(n);
        let mut spec = vec![Complex64::ZERO; n];
        let mut back = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut spec);
        plan.inverse(&spec, &mut back);
        prop_assert!(max_err(&x, &back) < 1e-8 * (n as f64).max(1.0));
    }

    #[test]
    fn matches_naive_dft(x in arb_signal(64)) {
        let n = x.len();
        let plan = FftPlan::new(n);
        let mut got = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut got);
        let want = dft(&x);
        prop_assert!(max_err(&got, &want) < 1e-8 * (n as f64).max(1.0));
    }

    #[test]
    fn linearity(pair in arb_signal(96).prop_flat_map(|x| {
        let n = x.len();
        (Just(x), arb_signal(n + 1).prop_filter("same length", move |y| y.len() == n))
    }), a in -3.0f64..3.0) {
        let (x, y) = pair;
        let n = x.len();
        let plan = FftPlan::new(n);
        let combo: Vec<Complex64> = x.iter().zip(&y).map(|(u, v)| *u * a + *v).collect();
        let mut fx = vec![Complex64::ZERO; n];
        let mut fy = vec![Complex64::ZERO; n];
        let mut fc = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut fx);
        plan.forward(&y, &mut fy);
        plan.forward(&combo, &mut fc);
        let expect: Vec<Complex64> = fx.iter().zip(&fy).map(|(u, v)| *u * a + *v).collect();
        prop_assert!(max_err(&fc, &expect) < 1e-7 * (n as f64).max(1.0));
    }

    #[test]
    fn parseval(x in arb_signal(128)) {
        let n = x.len();
        let plan = FftPlan::new(n);
        let mut spec = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut spec);
        let et: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((et - ef).abs() < 1e-8 * et.max(1.0));
    }

    #[test]
    fn shift_theorem(x in arb_signal(64), shift in 0usize..64) {
        // Circularly shifting the input multiplies the spectrum by a
        // phase of unit magnitude: |X_k| is shift invariant.
        let n = x.len();
        let shift = shift % n;
        let plan = FftPlan::new(n);
        let shifted: Vec<Complex64> = (0..n).map(|i| x[(i + shift) % n]).collect();
        let mut fx = vec![Complex64::ZERO; n];
        let mut fs = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut fx);
        plan.forward(&shifted, &mut fs);
        for (a, b) in fx.iter().zip(&fs) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-8 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn real_fft_hermitian_symmetry(x in prop::collection::vec(-1.0f64..1.0, 2..100)) {
        let n = x.len();
        let rf = RealFft::new(n);
        let spec = rf.forward(&x);
        // Compare against the full complex transform.
        let cx: Vec<Complex64> = x.iter().map(|&r| Complex64::from_real(r)).collect();
        let full = dft(&cx);
        for k in 0..spec.len() {
            prop_assert!((spec[k] - full[k]).abs() < 1e-8 * (n as f64).max(1.0));
        }
        // Roundtrip.
        let back = rf.inverse(&spec);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn fft3d_roundtrip(nx in 1usize..8, ny in 1usize..8, nz in 1usize..8, seed in 0u64..1000) {
        let dims = Dims3::new(nx, ny, nz);
        let mut state = seed | 1;
        let x: Vec<Complex64> = (0..dims.len()).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            Complex64::new(((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5, 0.3)
        }).collect();
        let fft = Fft3d::new(dims);
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        prop_assert!(max_err(&x, &y) < 1e-9 * (dims.len() as f64).max(1.0));
    }
}
