//! Naive O(n^2) discrete Fourier transform, used as the correctness
//! reference for the fast algorithms and for very small transform sizes.

use crate::complex::Complex64;
use std::f64::consts::TAU;

/// Computes the forward DFT `X[k] = sum_j x[j] e^{-2 pi i j k / n}`.
///
/// This is the textbook quadratic algorithm; it exists to validate the
/// fast paths and is exercised heavily by the test suite.
pub fn dft(input: &[Complex64]) -> Vec<Complex64> {
    transform(input, -1.0)
}

/// Computes the unnormalized inverse DFT
/// `x[j] = sum_k X[k] e^{+2 pi i j k / n}` (no 1/n scaling).
pub fn idft_unscaled(input: &[Complex64]) -> Vec<Complex64> {
    transform(input, 1.0)
}

/// Computes the normalized inverse DFT (with the 1/n factor), so that
/// `idft(dft(x)) == x`.
pub fn idft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = idft_unscaled(input);
    let inv = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(inv);
    }
    out
}

fn transform(input: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = vec![Complex64::ZERO; n];
    let base = sign * TAU / n as f64;
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            // Reduce j*k modulo n before forming the angle to keep the
            // argument small and the trigonometry accurate for large n.
            let t = (j * k) % n;
            acc = acc.mul_add(x, Complex64::cis(base * t as f64));
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let y = dft(&x);
        for v in y {
            assert!((v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![Complex64::ONE; 16];
        let y = dft(&x);
        assert!((y[0].re - 16.0).abs() < 1e-10);
        for v in &y[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_restores_input() {
        let x: Vec<Complex64> = (0..12)
            .map(|i| Complex64::new(i as f64 * 0.5, -(i as f64)))
            .collect();
        let y = idft(&dft(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 20;
        let k0 = 3;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(std::f64::consts::TAU * (j * k0) as f64 / n as f64))
            .collect();
        let y = dft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(dft(&[]).is_empty());
    }
}
