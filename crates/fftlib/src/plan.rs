//! FFT plans: precomputed factorizations and twiddle tables.
//!
//! Sizes whose prime factors are all <= 7 run through a recursive
//! mixed-radix Cooley-Tukey decimation-in-time kernel. Any other size is
//! delegated to the Bluestein chirp-z algorithm (see [`crate::bluestein`]).
//!
//! The PME grids used by the molecular dynamics code (80 x 36 x 48 in the
//! paper's myoglobin run) are all smooth sizes and take the mixed-radix
//! path.

use crate::bluestein::Bluestein;
use crate::complex::Complex64;
use std::f64::consts::TAU;

/// Largest prime handled by the mixed-radix kernel directly.
pub const MAX_RADIX: usize = 7;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `e^{-2 pi i j k / n}` kernel.
    Forward,
    /// `e^{+2 pi i j k / n}` kernel (unscaled; see [`FftPlan::inverse`]).
    Inverse,
}

/// Returns the prime factorization of `n` in nondecreasing order.
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// True when every prime factor of `n` is at most [`MAX_RADIX`].
pub fn is_smooth(n: usize) -> bool {
    n > 0 && factorize(n).iter().all(|&f| f <= MAX_RADIX)
}

/// Standard flop estimate for an FFT of size `n` (5 n log2 n).
///
/// Used by the virtual-cluster cost model to charge computation time for
/// transforms without timing the host machine.
pub fn flops_estimate(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

/// One recursion level of the mixed-radix kernel.
#[derive(Debug, Clone)]
struct Stage {
    /// Transform size at this depth.
    n: usize,
    /// Radix split off at this depth (`n = radix * (n / radix)`).
    radix: usize,
    /// Twiddle table `w[t] = e^{-2 pi i t / n}` for `t` in `0..n`.
    twiddle: Vec<Complex64>,
}

enum Kind {
    MixedRadix(Vec<Stage>),
    Bluestein(Box<Bluestein>),
}

/// A reusable plan for complex transforms of one fixed size.
pub struct FftPlan {
    n: usize,
    kind: Kind,
}

impl std::fmt::Debug for FftPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            Kind::MixedRadix(_) => "mixed-radix",
            Kind::Bluestein(_) => "bluestein",
        };
        write!(f, "FftPlan(n={}, kind={kind})", self.n)
    }
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT size must be positive");
        let kind = if is_smooth(n) {
            Kind::MixedRadix(build_stages(n))
        } else {
            Kind::Bluestein(Box::new(Bluestein::new(n)))
        };
        FftPlan { n, kind }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; plans of length zero cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform, out of place. `input` and `output` must both
    /// have length `self.len()`.
    pub fn forward(&self, input: &[Complex64], output: &mut [Complex64]) {
        self.execute(input, output, Direction::Forward);
    }

    /// Normalized inverse transform (includes the `1/n` factor), out of
    /// place, so `inverse(forward(x)) == x`.
    pub fn inverse(&self, input: &[Complex64], output: &mut [Complex64]) {
        self.execute(input, output, Direction::Inverse);
        let inv = 1.0 / self.n as f64;
        for v in output.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// Unscaled transform in the given direction, out of place.
    pub fn execute(&self, input: &[Complex64], output: &mut [Complex64], dir: Direction) {
        assert_eq!(input.len(), self.n, "input length mismatch");
        assert_eq!(output.len(), self.n, "output length mismatch");
        match &self.kind {
            Kind::MixedRadix(stages) => {
                exec_recursive(stages, 0, input, 1, output, dir);
            }
            Kind::Bluestein(b) => match dir {
                Direction::Forward => b.forward(input, output),
                Direction::Inverse => {
                    // IDFT(x) = conj(DFT(conj(x))) (unscaled).
                    let conj_in: Vec<Complex64> = input.iter().map(|z| z.conj()).collect();
                    b.forward(&conj_in, output);
                    for v in output.iter_mut() {
                        *v = v.conj();
                    }
                }
            },
        }
    }

    /// In-place convenience wrapper (allocates one scratch buffer).
    pub fn execute_in_place(&self, data: &mut [Complex64], dir: Direction) {
        let input = data.to_vec();
        self.execute(&input, data, dir);
    }
}

fn build_stages(n: usize) -> Vec<Stage> {
    let factors = factorize(n);
    let mut stages = Vec::with_capacity(factors.len());
    let mut size = n;
    for &radix in &factors {
        let twiddle = (0..size)
            .map(|t| Complex64::cis(-TAU * t as f64 / size as f64))
            .collect();
        stages.push(Stage {
            n: size,
            radix,
            twiddle,
        });
        size /= radix;
    }
    debug_assert_eq!(size, 1);
    stages
}

/// Recursive decimation-in-time. Reads `input` with stride `in_stride`
/// and writes the transform of size `stages[depth].n` contiguously into
/// `output`.
fn exec_recursive(
    stages: &[Stage],
    depth: usize,
    input: &[Complex64],
    in_stride: usize,
    output: &mut [Complex64],
    dir: Direction,
) {
    if depth == stages.len() {
        // Size-1 transform: copy the single element.
        output[0] = input[0];
        return;
    }
    let stage = &stages[depth];
    let n = stage.n;
    let r = stage.radix;
    let m = n / r;

    // Transform the r decimated subsequences.
    for j in 0..r {
        exec_recursive(
            stages,
            depth + 1,
            &input[j * in_stride..],
            in_stride * r,
            &mut output[j * m..(j + 1) * m],
            dir,
        );
    }

    // Combine: X[k + q m] = sum_j w_n^{jk} w_r^{jq} Y_j[k].
    // w_r^{jq} = w_n^{j q m}, so a single table indexed mod n suffices.
    let tw = &stage.twiddle;
    let mut tmp = [Complex64::ZERO; MAX_RADIX];
    for k in 0..m {
        for (j, slot) in tmp[..r].iter_mut().enumerate() {
            let w = twiddle_at(tw, (j * k) % n, dir);
            *slot = output[j * m + k] * w;
        }
        for q in 0..r {
            let mut acc = tmp[0];
            for (j, &t) in tmp[..r].iter().enumerate().skip(1) {
                let w = twiddle_at(tw, (j * q * m) % n, dir);
                acc = acc.mul_add(t, w);
            }
            output[q * m + k] = acc;
        }
    }
}

#[inline(always)]
fn twiddle_at(tw: &[Complex64], idx: usize, dir: Direction) -> Complex64 {
    let w = tw[idx];
    match dir {
        Direction::Forward => w,
        Direction::Inverse => w.conj(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft};

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Small deterministic LCG; test-only.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((state >> 11) as f64) / (1u64 << 53) as f64 - 0.5;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((state >> 11) as f64) / (1u64 << 53) as f64 - 0.5;
                Complex64::new(a, b)
            })
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn factorize_basic() {
        assert_eq!(factorize(1), vec![]);
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(36), vec![2, 2, 3, 3]);
        assert_eq!(factorize(80), vec![2, 2, 2, 2, 5]);
        assert_eq!(factorize(97), vec![97]);
    }

    #[test]
    fn smoothness() {
        assert!(is_smooth(48));
        assert!(is_smooth(80));
        assert!(is_smooth(36));
        assert!(!is_smooth(97));
        assert!(!is_smooth(2 * 11));
    }

    #[test]
    fn matches_naive_dft_for_many_sizes() {
        for n in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 20, 24, 25, 27, 30, 32, 36, 48, 60, 64,
            80,
        ] {
            let plan = FftPlan::new(n);
            let x = rand_signal(n, n as u64);
            let mut y = vec![Complex64::ZERO; n];
            plan.forward(&x, &mut y);
            let reference = dft(&x);
            assert!(max_err(&y, &reference) < 1e-9 * (n as f64), "size {n}");
        }
    }

    #[test]
    fn bluestein_sizes_match_naive_dft() {
        for n in [11usize, 13, 17, 22, 26, 97, 101] {
            let plan = FftPlan::new(n);
            let x = rand_signal(n, 1000 + n as u64);
            let mut y = vec![Complex64::ZERO; n];
            plan.forward(&x, &mut y);
            let reference = dft(&x);
            assert!(max_err(&y, &reference) < 1e-8 * (n as f64), "size {n}");
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [8usize, 36, 48, 80, 97] {
            let plan = FftPlan::new(n);
            let x = rand_signal(n, 7 * n as u64);
            let mut y = vec![Complex64::ZERO; n];
            let mut z = vec![Complex64::ZERO; n];
            plan.forward(&x, &mut y);
            plan.inverse(&y, &mut z);
            assert!(max_err(&x, &z) < 1e-9 * n as f64, "size {n}");
        }
    }

    #[test]
    fn inverse_matches_naive_idft() {
        let n = 36;
        let plan = FftPlan::new(n);
        let x = rand_signal(n, 99);
        let mut y = vec![Complex64::ZERO; n];
        plan.inverse(&x, &mut y);
        let reference = idft(&x);
        assert!(max_err(&y, &reference) < 1e-9);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 80;
        let plan = FftPlan::new(n);
        let x = rand_signal(n, 4);
        let mut y = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut y);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-9 * ex.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 48;
        let plan = FftPlan::new(n);
        let x = rand_signal(n, 5);
        let y = rand_signal(n, 6);
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let mut fx = vec![Complex64::ZERO; n];
        let mut fy = vec![Complex64::ZERO; n];
        let mut fs = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut fx);
        plan.forward(&y, &mut fy);
        plan.forward(&sum, &mut fs);
        let expect: Vec<Complex64> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert!(max_err(&fs, &expect) < 1e-9);
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let n = 60;
        let plan = FftPlan::new(n);
        let x = rand_signal(n, 42);
        let mut out = vec![Complex64::ZERO; n];
        plan.forward(&x, &mut out);
        let mut inplace = x.clone();
        plan.execute_in_place(&mut inplace, Direction::Forward);
        assert!(max_err(&out, &inplace) < 1e-12);
    }

    #[test]
    fn flops_estimate_monotone() {
        assert_eq!(flops_estimate(1), 0.0);
        assert!(flops_estimate(64) > flops_estimate(32));
    }
}
