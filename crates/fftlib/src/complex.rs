//! A minimal double-precision complex number.
//!
//! The crate deliberately avoids external numeric dependencies; this type
//! implements exactly the operations the FFT kernels need.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian components.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a pure-real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{i theta}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Fused multiply-add: `self + a * b` (computed without an FMA
    /// instruction requirement; the compiler may contract it).
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        Complex64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex64::new(1.5, 2.5);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..32 {
            let theta = k as f64 * 0.3;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cis_addition_theorem() {
        let a = 0.7;
        let b = 1.9;
        assert!(close(
            Complex64::cis(a) * Complex64::cis(b),
            Complex64::cis(a + b)
        ));
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = Complex64::new(1.0, 1.0);
        let a = Complex64::new(2.0, -3.0);
        let b = Complex64::new(-1.0, 4.0);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }
}
