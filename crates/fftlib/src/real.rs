//! Real-input transforms built on the complex FFT.
//!
//! `n` real samples are packed into `n/2` complex samples, transformed
//! with a half-length complex FFT, and unpacked with the standard
//! split/merge identities. Only even `n` takes the fast path; odd `n`
//! falls back to a full complex transform.

use crate::complex::Complex64;
use crate::plan::FftPlan;
use std::f64::consts::TAU;

/// Forward transform of real input; returns the `n/2 + 1` nonredundant
/// spectrum bins (the rest follow from Hermitian symmetry).
pub struct RealFft {
    n: usize,
    half_plan: Option<FftPlan>,
    full_plan: Option<FftPlan>,
}

impl RealFft {
    /// Builds a real-input plan for length `n > 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        if n.is_multiple_of(2) && n >= 2 {
            RealFft {
                n,
                half_plan: Some(FftPlan::new(n / 2)),
                full_plan: None,
            }
        } else {
            RealFft {
                n,
                half_plan: None,
                full_plan: Some(FftPlan::new(n)),
            }
        }
    }

    /// Input length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of nonredundant output bins, `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform. `input.len() == n`, returns `n/2 + 1` bins.
    pub fn forward(&self, input: &[f64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.n);
        if let Some(full) = &self.full_plan {
            let cx: Vec<Complex64> = input.iter().map(|&r| Complex64::from_real(r)).collect();
            let mut out = vec![Complex64::ZERO; self.n];
            full.forward(&cx, &mut out);
            out.truncate(self.spectrum_len());
            return out;
        }
        let half = self.n / 2;
        let plan = self.half_plan.as_ref().expect("even path has half plan");

        // Pack consecutive real pairs into complex samples.
        let packed: Vec<Complex64> = (0..half)
            .map(|i| Complex64::new(input[2 * i], input[2 * i + 1]))
            .collect();
        let mut z = vec![Complex64::ZERO; half];
        plan.forward(&packed, &mut z);

        // Unpack: X[k] = E[k] + e^{-2 pi i k / n} O[k].
        let mut out = vec![Complex64::ZERO; self.spectrum_len()];
        for k in 0..=half {
            let zk = if k == half { z[0] } else { z[k] };
            let zc = z[(half - k) % half].conj();
            let even = (zk + zc).scale(0.5);
            let odd = (zk - zc) * Complex64::new(0.0, -0.5);
            let w = Complex64::cis(-TAU * k as f64 / self.n as f64);
            out[k] = even + w * odd;
        }
        out
    }

    /// Inverse transform from `n/2 + 1` bins back to `n` real samples
    /// (normalized so `inverse(forward(x)) == x`).
    pub fn inverse(&self, spectrum: &[Complex64]) -> Vec<f64> {
        assert_eq!(spectrum.len(), self.spectrum_len());
        // Reconstruct the full Hermitian spectrum and run a complex
        // inverse. Simple and robust; the hot 3D path in PME uses the
        // complex transforms directly.
        let full = FftPlan::new(self.n);
        let mut spec_full = vec![Complex64::ZERO; self.n];
        spec_full[..spectrum.len()].copy_from_slice(spectrum);
        for k in spectrum.len()..self.n {
            spec_full[k] = spectrum[self.n - k].conj();
        }
        let mut time = vec![Complex64::ZERO; self.n];
        full.inverse(&spec_full, &mut time);
        time.iter().map(|z| z.re).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.7).cos())
            .collect()
    }

    #[test]
    fn matches_complex_dft_even() {
        for n in [2usize, 4, 8, 12, 16, 36, 48, 80] {
            let x = real_signal(n);
            let rf = RealFft::new(n);
            let got = rf.forward(&x);
            let cx: Vec<Complex64> = x.iter().map(|&r| Complex64::from_real(r)).collect();
            let reference = dft(&cx);
            for k in 0..rf.spectrum_len() {
                assert!(
                    (got[k] - reference[k]).abs() < 1e-9 * n as f64,
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn matches_complex_dft_odd() {
        for n in [1usize, 3, 5, 9, 15] {
            let x = real_signal(n);
            let rf = RealFft::new(n);
            let got = rf.forward(&x);
            let cx: Vec<Complex64> = x.iter().map(|&r| Complex64::from_real(r)).collect();
            let reference = dft(&cx);
            for k in 0..rf.spectrum_len() {
                assert!((got[k] - reference[k]).abs() < 1e-9 * (n as f64).max(1.0));
            }
        }
    }

    #[test]
    fn roundtrip() {
        for n in [4usize, 10, 36, 48] {
            let x = real_signal(n);
            let rf = RealFft::new(n);
            let y = rf.inverse(&rf.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let x = real_signal(24);
        let rf = RealFft::new(24);
        let spec = rf.forward(&x);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
    }

    #[test]
    fn nyquist_bin_is_real() {
        let x = real_signal(16);
        let rf = RealFft::new(16);
        let spec = rf.forward(&x);
        assert!(spec[8].im.abs() < 1e-9);
    }
}
