//! Three-dimensional complex FFTs over row-major grids, plus the
//! axis-wise batch transforms used by the slab-decomposed parallel PME.
//!
//! Grid layout: `data[(x * ny + y) * nz + z]` — `z` is the fastest axis.

use crate::complex::Complex64;
use crate::plan::{flops_estimate, Direction, FftPlan};

/// Grid dimensions for 3D transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims3 {
    /// Extent along x (slowest axis).
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z (fastest axis).
    pub nz: usize,
}

impl Dims3 {
    /// Creates dimensions; all extents must be positive.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
        Dims3 { nx, ny, nz }
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Always false (extents are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of `(x, y, z)`.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.ny + y) * self.nz + z
    }
}

/// Axis selector for batched 1D transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Slowest axis.
    X,
    /// Middle axis.
    Y,
    /// Fastest axis.
    Z,
}

/// Applies the plan along `axis` to every line of the grid.
///
/// `plan.len()` must equal the extent of the grid along `axis`. This is
/// the building block the parallel PME uses on its local slabs (where
/// `dims.nx` is the local slab thickness rather than the global extent).
pub fn transform_axis(
    data: &mut [Complex64],
    dims: Dims3,
    axis: Axis,
    plan: &FftPlan,
    dir: Direction,
) {
    assert_eq!(data.len(), dims.len(), "grid size mismatch");
    let (len, stride, lines) = match axis {
        Axis::Z => (dims.nz, 1, dims.nx * dims.ny),
        Axis::Y => (dims.ny, dims.nz, dims.nx * dims.nz),
        Axis::X => (dims.nx, dims.ny * dims.nz, dims.ny * dims.nz),
    };
    assert_eq!(plan.len(), len, "plan length must match axis extent");

    let mut line_in = vec![Complex64::ZERO; len];
    let mut line_out = vec![Complex64::ZERO; len];

    match axis {
        Axis::Z => {
            for l in 0..lines {
                let base = l * len;
                line_in.copy_from_slice(&data[base..base + len]);
                plan.execute(&line_in, &mut line_out, dir);
                data[base..base + len].copy_from_slice(&line_out);
            }
        }
        Axis::Y => {
            // Lines indexed by (x, z): base = x*ny*nz + z, stride nz.
            for x in 0..dims.nx {
                for z in 0..dims.nz {
                    let base = x * dims.ny * dims.nz + z;
                    gather(data, base, stride, &mut line_in);
                    plan.execute(&line_in, &mut line_out, dir);
                    scatter(data, base, stride, &line_out);
                }
            }
        }
        Axis::X => {
            // Lines indexed by (y, z): base = y*nz + z, stride ny*nz.
            for yz in 0..dims.ny * dims.nz {
                gather(data, yz, stride, &mut line_in);
                plan.execute(&line_in, &mut line_out, dir);
                scatter(data, yz, stride, &line_out);
            }
        }
    }
}

#[inline]
fn gather(data: &[Complex64], base: usize, stride: usize, line: &mut [Complex64]) {
    for (i, slot) in line.iter_mut().enumerate() {
        *slot = data[base + i * stride];
    }
}

#[inline]
fn scatter(data: &mut [Complex64], base: usize, stride: usize, line: &[Complex64]) {
    for (i, &v) in line.iter().enumerate() {
        data[base + i * stride] = v;
    }
}

/// A reusable full 3D transform.
pub struct Fft3d {
    dims: Dims3,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
}

impl Fft3d {
    /// Builds plans for all three axes of `dims`.
    pub fn new(dims: Dims3) -> Self {
        Fft3d {
            dims,
            plan_x: FftPlan::new(dims.nx),
            plan_y: FftPlan::new(dims.ny),
            plan_z: FftPlan::new(dims.nz),
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Forward 3D transform in place.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.execute(data, Direction::Forward);
    }

    /// Normalized inverse 3D transform in place (`inverse(forward(x)) == x`).
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.execute(data, Direction::Inverse);
        let inv = 1.0 / self.dims.len() as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// Unscaled transform in the given direction.
    pub fn execute(&self, data: &mut [Complex64], dir: Direction) {
        transform_axis(data, self.dims, Axis::Z, &self.plan_z, dir);
        transform_axis(data, self.dims, Axis::Y, &self.plan_y, dir);
        transform_axis(data, self.dims, Axis::X, &self.plan_x, dir);
    }

    /// Flop estimate for one full 3D transform, used by the cluster cost
    /// model.
    pub fn flops(&self) -> f64 {
        let Dims3 { nx, ny, nz } = self.dims;
        (ny * nz) as f64 * flops_estimate(nx)
            + (nx * nz) as f64 * flops_estimate(ny)
            + (nx * ny) as f64 * flops_estimate(nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 11) as f64) / (1u64 << 53) as f64 - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 11) as f64) / (1u64 << 53) as f64 - 0.5;
                Complex64::new(a, b)
            })
            .collect()
    }

    /// Reference 3D DFT built from the naive 1D DFT axis by axis.
    fn dft3_reference(data: &[Complex64], dims: Dims3) -> Vec<Complex64> {
        let mut out = data.to_vec();
        // z axis
        for l in 0..dims.nx * dims.ny {
            let base = l * dims.nz;
            let line: Vec<Complex64> = out[base..base + dims.nz].to_vec();
            out[base..base + dims.nz].copy_from_slice(&dft(&line));
        }
        // y axis
        for x in 0..dims.nx {
            for z in 0..dims.nz {
                let line: Vec<Complex64> = (0..dims.ny).map(|y| out[dims.idx(x, y, z)]).collect();
                let t = dft(&line);
                for (y, v) in t.iter().enumerate() {
                    out[dims.idx(x, y, z)] = *v;
                }
            }
        }
        // x axis
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                let line: Vec<Complex64> = (0..dims.nx).map(|x| out[dims.idx(x, y, z)]).collect();
                let t = dft(&line);
                for (x, v) in t.iter().enumerate() {
                    out[dims.idx(x, y, z)] = *v;
                }
            }
        }
        out
    }

    #[test]
    fn matches_reference_3d_dft() {
        let dims = Dims3::new(4, 6, 5);
        let x = signal(dims.len(), 3);
        let fft = Fft3d::new(dims);
        let mut y = x.clone();
        fft.forward(&mut y);
        let reference = dft3_reference(&x, dims);
        let err = y
            .iter()
            .zip(&reference)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "err={err}");
    }

    #[test]
    fn roundtrip_3d() {
        let dims = Dims3::new(8, 6, 10);
        let x = signal(dims.len(), 11);
        let fft = Fft3d::new(dims);
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        let err = y
            .iter()
            .zip(&x)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-10, "err={err}");
    }

    #[test]
    fn paper_grid_roundtrip() {
        // The exact PME grid from the paper: 80 x 36 x 48.
        let dims = Dims3::new(80, 36, 48);
        let x = signal(dims.len(), 2002);
        let fft = Fft3d::new(dims);
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        let err = y
            .iter()
            .zip(&x)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "err={err}");
    }

    #[test]
    fn axis_transforms_compose_to_full_3d() {
        let dims = Dims3::new(4, 4, 4);
        let x = signal(dims.len(), 5);
        let fft = Fft3d::new(dims);
        let mut whole = x.clone();
        fft.forward(&mut whole);

        let mut by_axis = x.clone();
        let p = FftPlan::new(4);
        transform_axis(&mut by_axis, dims, Axis::Z, &p, Direction::Forward);
        transform_axis(&mut by_axis, dims, Axis::Y, &p, Direction::Forward);
        transform_axis(&mut by_axis, dims, Axis::X, &p, Direction::Forward);

        let err = whole
            .iter()
            .zip(&by_axis)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-12);
    }

    #[test]
    fn constant_grid_transforms_to_single_spike() {
        let dims = Dims3::new(4, 3, 5);
        let mut data = vec![Complex64::ONE; dims.len()];
        let fft = Fft3d::new(dims);
        fft.forward(&mut data);
        assert!((data[0].re - dims.len() as f64).abs() < 1e-9);
        for v in &data[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn flops_positive() {
        let fft = Fft3d::new(Dims3::new(80, 36, 48));
        assert!(fft.flops() > 0.0);
    }
}
