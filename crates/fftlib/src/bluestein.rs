//! Bluestein's chirp-z algorithm for arbitrary (in particular large
//! prime) transform sizes.
//!
//! The length-`n` DFT is re-expressed as a circular convolution of length
//! `m >= 2n - 1`, where `m` is chosen as a power of two so the inner
//! transforms run on the fast radix-2 path.

use crate::complex::Complex64;
use crate::plan::FftPlan;
use std::f64::consts::PI;

/// Precomputed state for Bluestein transforms of one size.
pub struct Bluestein {
    n: usize,
    m: usize,
    /// Chirp `a[j] = e^{-i pi j^2 / n}` for `j` in `0..n`.
    chirp: Vec<Complex64>,
    /// Forward transform of the (conjugate-chirp) convolution kernel.
    kernel_fft: Vec<Complex64>,
    inner: FftPlan,
}

impl Bluestein {
    /// Builds Bluestein state for transforms of length `n > 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let m = (2 * n - 1).next_power_of_two();
        let inner = FftPlan::new(m);

        // j^2 mod 2n keeps the trig argument small for accuracy.
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let t = mod_sq(j, 2 * n);
                Complex64::cis(-PI * t as f64 / n as f64)
            })
            .collect();

        // Kernel b[j] = conj(chirp[|j|]) arranged circularly over m.
        let mut b = vec![Complex64::ZERO; m];
        b[0] = chirp[0].conj();
        for j in 1..n {
            let v = chirp[j].conj();
            b[j] = v;
            b[m - j] = v;
        }
        let mut kernel_fft = vec![Complex64::ZERO; m];
        inner.forward(&b, &mut kernel_fft);

        Bluestein {
            n,
            m,
            chirp,
            kernel_fft,
            inner,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward DFT of `input` into `output` (both length `n`).
    pub fn forward(&self, input: &[Complex64], output: &mut [Complex64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.n);
        let m = self.m;

        // Pre-multiply by the chirp and zero-pad to m.
        let mut a = vec![Complex64::ZERO; m];
        for j in 0..self.n {
            a[j] = input[j] * self.chirp[j];
        }

        // Convolve via the inner FFT.
        let mut fa = vec![Complex64::ZERO; m];
        self.inner.forward(&a, &mut fa);
        for (v, k) in fa.iter_mut().zip(&self.kernel_fft) {
            *v *= *k;
        }
        let mut conv = vec![Complex64::ZERO; m];
        self.inner.inverse(&fa, &mut conv);

        // Post-multiply by the chirp.
        for k in 0..self.n {
            output[k] = conv[k] * self.chirp[k];
        }
    }
}

/// Computes `j^2 mod q` without overflow.
fn mod_sq(j: usize, q: usize) -> usize {
    let j = (j % q) as u128;
    ((j * j) % q as u128) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    #[test]
    fn prime_sizes_match_dft() {
        for n in [3usize, 7, 11, 31, 127] {
            let b = Bluestein::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            let mut y = vec![Complex64::ZERO; n];
            b.forward(&x, &mut y);
            let reference = dft(&x);
            let err = y
                .iter()
                .zip(&reference)
                .map(|(a, r)| (*a - *r).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 1e-8 * n as f64, "n={n} err={err}");
        }
    }

    #[test]
    fn size_one_is_identity() {
        let b = Bluestein::new(1);
        let x = [Complex64::new(2.5, -1.5)];
        let mut y = [Complex64::ZERO];
        b.forward(&x, &mut y);
        assert!((y[0] - x[0]).abs() < 1e-12);
    }

    #[test]
    fn mod_sq_no_overflow() {
        let big = usize::MAX / 2;
        // Must not panic even for huge j.
        let _ = mod_sq(big, 2 * 1_000_003);
        assert_eq!(mod_sq(5, 14), 25 % 14);
    }
}
