//! # cpc-fft
//!
//! A from-scratch complex FFT library for the CHARMM-on-PC-clusters
//! reproduction. It provides everything the particle mesh Ewald (PME)
//! solver needs:
//!
//! * [`Complex64`] — a minimal double-precision complex type,
//! * [`FftPlan`] — reusable 1D plans (mixed-radix Cooley-Tukey for smooth
//!   sizes, Bluestein chirp-z for everything else),
//! * [`Fft3d`] / [`transform_axis`] — full 3D transforms and the axis-wise
//!   batch transforms used by the slab-decomposed parallel FFT,
//! * [`RealFft`] — real-input transforms,
//! * [`dft()`](dft())/[`idft`] — naive reference transforms for validation.
//!
//! The paper's myoglobin run uses an 80 x 36 x 48 charge grid; all three
//! extents are smooth, so the hot path is pure mixed-radix.
//!
//! ## Example
//!
//! ```
//! use cpc_fft::{Complex64, FftPlan};
//!
//! let plan = FftPlan::new(8);
//! let x = vec![Complex64::ONE; 8];
//! let mut y = vec![Complex64::ZERO; 8];
//! plan.forward(&x, &mut y);
//! assert!((y[0].re - 8.0).abs() < 1e-12); // DC bin holds the sum
//! ```

#![warn(missing_docs)]

pub mod bluestein;
pub mod complex;
pub mod dft;
pub mod fft3d;
pub mod plan;
pub mod real;

pub use complex::Complex64;
pub use dft::{dft, idft};
pub use fft3d::{transform_axis, Axis, Dims3, Fft3d};
pub use plan::{factorize, flops_estimate, is_smooth, Direction, FftPlan};
pub use real::RealFft;
