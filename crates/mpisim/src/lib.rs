//! # cpc-mpi
//!
//! MPI-flavoured message passing over the virtual cluster of
//! `cpc-cluster`, modelling the paper's middleware factor:
//!
//! * [`Middleware::Mpi`] — blocking point-to-point calls, binomial-tree
//!   barriers, CHARMM-style global combines,
//! * [`Middleware::Cmpi`] — the CHARMM MPI portability layer: split
//!   (nonblocking) send/receive groups, each closed by `p - 1` rounds
//!   of 1-byte ring exchanges.
//!
//! Collectives are implemented on point-to-point messages, so their
//! cost emerges entirely from the network model — nothing is hardcoded
//! about "a barrier costs X".
//!
//! ## Example
//!
//! ```
//! use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind};
//! use cpc_mpi::{Comm, Middleware};
//!
//! let cfg = ClusterConfig::uni(4, NetworkKind::ScoreGigE);
//! let out = run_cluster(cfg, |ctx| {
//!     let mut comm = Comm::new(ctx, Middleware::Mpi);
//!     comm.allreduce_scalar(comm.rank() as f64)
//! });
//! assert!(out.iter().all(|o| o.result == 6.0)); // 0+1+2+3
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod detector;
pub mod group;
pub mod middleware;
pub mod nonblocking;

pub use comm::{Comm, RetryPolicy};
pub use cpc_cluster::CommError;
pub use detector::{DetectorConfig, FailureDetector, PHI_SCALE};
pub use group::GroupComm;
pub use middleware::{CombineAlgo, Middleware};
pub use nonblocking::PollStats;
pub use nonblocking::{RecvRequest, SendRequest};

/// Splits `n` items into `p` contiguous, maximally even blocks and
/// returns block `r` (first `n % p` blocks get one extra item).
pub fn block_range(n: usize, p: usize, r: usize) -> std::ops::Range<usize> {
    assert!(p > 0 && r < p);
    let base = n / p;
    let extra = n % p;
    let start = r * base + r.min(extra);
    let len = base + usize::from(r < extra);
    start..(start + len).min(n)
}
