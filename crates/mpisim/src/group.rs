//! Process groups (sub-communicators): `MPI_Comm_split` for the
//! virtual cluster. The paper's recommended usage — several independent
//! CHARMM calculations sharing one cluster — needs exactly this:
//! disjoint groups running their own collectives concurrently.

use crate::comm::Comm;
use cpc_cluster::{Msg, MsgClass, OpShape};

/// A communicator over a subset of the ranks.
///
/// Created collectively via [`Comm::split`]; all group operations must
/// be called by every member (and only members).
pub struct GroupComm<'a, 'b> {
    comm: &'a mut Comm<'b>,
    /// Global ranks of the members, sorted ascending.
    members: Vec<usize>,
    /// This rank's index within `members`.
    local_rank: usize,
    /// Tag namespace salt (derived from the color) so concurrent groups
    /// never cross-match messages.
    salt: u64,
    epoch: u64,
}

impl<'b> Comm<'b> {
    /// Splits the communicator by `color`: ranks passing the same color
    /// form a group, ordered by global rank. Collective over all ranks.
    pub fn split(&mut self, color: u64) -> GroupComm<'_, 'b> {
        // Exchange colors with a plain allgather.
        let colors = self.allgather(vec![color as f64]);
        let members: Vec<usize> = colors
            .iter()
            .enumerate()
            .filter(|(_, c)| c[0] as u64 == color)
            .map(|(r, _)| r)
            .collect();
        let me = self.rank();
        let local_rank = members
            .iter()
            .position(|&r| r == me)
            .expect("caller is a member of its own color group");
        GroupComm {
            comm: self,
            members,
            local_rank,
            salt: 0x6C00_0000_0000 ^ (color.wrapping_mul(0x9E37_79B9) << 20),
            epoch: 0,
        }
    }
}

impl<'b> GroupComm<'_, 'b> {
    /// Rank within the group.
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Parent-communicator rank of group member `local`.
    pub fn global_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Engine rank of group member `local` (members hold parent-comm
    /// logical ranks; the parent maps those to engine ranks).
    fn g(&self, local: usize) -> usize {
        self.comm.to_global(self.members[local])
    }

    /// The underlying full communicator.
    pub fn inner(&mut self) -> &mut Comm<'b> {
        self.comm
    }

    fn tag(&mut self, op: u64) -> u64 {
        self.epoch += 1;
        self.salt | (self.epoch << 4) | op
    }

    /// Point-to-point send to a *local* rank.
    pub fn send(&mut self, dst_local: usize, tag: u64, data: Vec<f64>) {
        let dst = self.g(dst_local);
        let shape = OpShape::p2p();
        self.comm.ctx().send(
            dst,
            self.salt | (tag << 4) | 0xF,
            data,
            MsgClass::Payload,
            shape,
        );
    }

    /// Point-to-point receive from a *local* rank.
    pub fn recv(&mut self, src_local: usize, tag: u64) -> Msg {
        let src = self.g(src_local);
        let t = self.salt | (tag << 4) | 0xF;
        self.comm.ctx().recv(src, t)
    }

    /// Ring barrier within the group.
    pub fn barrier(&mut self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = self.tag(1);
        let right = self.g((self.local_rank + 1) % p);
        let left = self.g((self.local_rank + p - 1) % p);
        // Two half-rings ensure everyone has entered before anyone leaves.
        for round in 0..2u64 {
            self.comm.ctx().send(
                right,
                tag + (round << 32),
                Vec::new(),
                MsgClass::Control,
                OpShape::new(1, p),
            );
            self.comm.ctx().recv(left, tag + (round << 32));
        }
    }

    /// Global sum within the group (ring reduce-scatter + allgather).
    pub fn allreduce_sum(&mut self, data: &mut [f64]) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = self.tag(2);
        let right = self.g((self.local_rank + 1) % p);
        let left = self.g((self.local_rank + p - 1) % p);
        let n = data.len();
        let rank = self.local_rank;
        let block = |b: usize| crate::block_range(n, p, b);
        for s in 0..p - 1 {
            let send_b = (rank + p - s) % p;
            let recv_b = (rank + p - s - 1) % p;
            let payload = data[block(send_b)].to_vec();
            self.comm.ctx().send(
                right,
                tag + ((s as u64) << 32),
                payload,
                MsgClass::Payload,
                OpShape::new(1, p),
            );
            let msg = self.comm.ctx().recv(left, tag + ((s as u64) << 32));
            for (a, b) in data[block(recv_b)].iter_mut().zip(&msg.data) {
                *a += b;
            }
        }
        for s in 0..p - 1 {
            let send_b = (rank + 1 + p - s) % p;
            let recv_b = (rank + p - s) % p;
            let payload = data[block(send_b)].to_vec();
            let t = tag + (((p + s) as u64) << 32);
            self.comm
                .ctx()
                .send(right, t, payload, MsgClass::Payload, OpShape::new(1, p));
            let msg = self.comm.ctx().recv(left, t);
            data[block(recv_b)].copy_from_slice(&msg.data);
        }
    }

    /// Scalar sum within the group.
    pub fn allreduce_scalar(&mut self, x: f64) -> f64 {
        let mut v = [x];
        self.allreduce_sum(&mut v);
        v[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Middleware;
    use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind};

    #[test]
    fn split_forms_correct_groups() {
        let cfg = ClusterConfig::uni(6, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let color = (comm.rank() % 2) as u64;
            let group = comm.split(color);
            (group.rank(), group.size(), group.global_rank(group.rank()))
        });
        for (r, o) in out.iter().enumerate() {
            let (local, size, global) = o.result;
            assert_eq!(size, 3);
            assert_eq!(global, r);
            assert_eq!(local, r / 2);
        }
    }

    #[test]
    fn concurrent_group_allreduce_is_isolated() {
        // Two halves compute different sums at the same time without
        // cross-talk.
        let cfg = ClusterConfig::uni(8, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let color = (comm.rank() / 4) as u64;
            let mut group = comm.split(color);
            let base = if color == 0 { 1.0 } else { 100.0 };
            group.allreduce_scalar(base * (group.rank() + 1) as f64)
        });
        for (r, o) in out.iter().enumerate() {
            let expect = if r < 4 { 10.0 } else { 1000.0 };
            assert_eq!(o.result, expect, "rank {r}");
        }
    }

    #[test]
    fn group_vector_allreduce_with_uneven_blocks() {
        let cfg = ClusterConfig::uni(6, NetworkKind::MyrinetGm);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let color = u64::from(comm.rank() >= 2); // groups of 2 and 4
            let mut group = comm.split(color);
            let mut v = vec![group.rank() as f64 + 1.0; 7];
            group.allreduce_sum(&mut v);
            (color, v)
        });
        for o in &out {
            let (color, v) = &o.result;
            let expect = if *color == 0 { 3.0 } else { 10.0 };
            assert!(v.iter().all(|&x| x == expect), "color {color}: {v:?}");
        }
    }

    #[test]
    fn group_p2p_uses_local_ranks() {
        let cfg = ClusterConfig::uni(4, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let color = (comm.rank() % 2) as u64;
            let mut group = comm.split(color);
            if group.rank() == 0 {
                group.send(1, 5, vec![color as f64 * 10.0]);
                0.0
            } else {
                group.recv(0, 5).data[0]
            }
        });
        assert_eq!(out[2].result, 0.0 * 10.0);
        assert_eq!(out[3].result, 10.0);
    }

    #[test]
    fn barrier_within_group_does_not_block_other_group() {
        // Group A barriers repeatedly while group B exchanges data:
        // must not deadlock or cross-match.
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let color = u64::from(comm.rank() >= 2);
            let mut group = comm.split(color);
            if color == 0 {
                for _ in 0..5 {
                    group.barrier();
                }
                -1.0
            } else {
                group.allreduce_scalar(group.rank() as f64)
            }
        });
        assert_eq!(out[2].result, 1.0);
        assert_eq!(out[3].result, 1.0);
    }
}
