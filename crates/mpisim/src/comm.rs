//! The communicator: MPI-flavoured point-to-point and collective
//! operations over the virtual cluster, implemented — as in CHARMM —
//! entirely on top of point-to-point messages, so every collective's
//! cost emerges from the network model.

use crate::middleware::{CombineAlgo, Middleware};
use cpc_cluster::{MsgClass, OpShape, RankCtx};

/// Tag space layout: collectives use `epoch << 8 | op`, user messages
/// use the high bit.
const USER_TAG_BASE: u64 = 1 << 63;

/// Operation ids inside a collective epoch.
mod op {
    pub const BARRIER_UP: u64 = 1;
    pub const BARRIER_DOWN: u64 = 2;
    pub const REDUCE: u64 = 3;
    pub const BCAST: u64 = 4;
    pub const ALLTOALL: u64 = 5;
    pub const GATHER: u64 = 6;
    pub const SYNC_RING: u64 = 7;
    pub const ALLGATHER: u64 = 8;
}

/// An MPI-like communicator bound to one rank's execution context.
pub struct Comm<'a> {
    ctx: &'a mut RankCtx,
    middleware: Middleware,
    epoch: u64,
}

impl<'a> Comm<'a> {
    /// Wraps a rank context with the chosen middleware style.
    pub fn new(ctx: &'a mut RankCtx, middleware: Middleware) -> Self {
        Comm {
            ctx,
            middleware,
            epoch: 0,
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.ctx.size()
    }

    /// The middleware in use.
    pub fn middleware(&self) -> Middleware {
        self.middleware
    }

    /// Underlying context (for phase control and compute charging).
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.ctx
    }

    fn next_epoch(&mut self, op_id: u64) -> u64 {
        self.epoch += 1;
        (self.epoch << 8) | op_id
    }

    /// Blocking user-level send.
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        self.ctx.send(
            dst,
            USER_TAG_BASE | tag,
            data,
            MsgClass::Payload,
            OpShape::p2p(),
        );
    }

    /// Blocking user-level receive.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        self.ctx.recv(src, USER_TAG_BASE | tag).data
    }

    /// Maps a user tag into the reserved user tag space.
    pub(crate) fn user_tag(&self, tag: u64) -> u64 {
        USER_TAG_BASE | tag
    }

    /// Blocking receive on a raw (already namespaced) tag.
    pub(crate) fn raw_recv(&mut self, src: usize, tag: u64) -> cpc_cluster::Msg {
        self.ctx.recv(src, tag)
    }

    /// Probe on a raw tag (no time advance).
    pub(crate) fn raw_probe(&self, src: usize, tag: u64) -> bool {
        self.ctx_ref().probe(src, tag)
    }

    /// Immutable access to the context.
    pub(crate) fn ctx_ref(&self) -> &RankCtx {
        self.ctx
    }

    /// Global synchronization. MPI: binomial-tree barrier with control
    /// messages. CMPI: `p - 1` rounds of 1-byte ring exchanges.
    pub fn barrier(&mut self) {
        match self.middleware {
            Middleware::Mpi => self.tree_barrier(),
            Middleware::Cmpi => self.ring_sync(),
        }
    }

    fn tree_barrier(&mut self) {
        let p = self.size();
        if p == 1 {
            self.epoch += 1;
            return;
        }
        let up = self.next_epoch(op::BARRIER_UP);
        let down = (self.epoch << 8) | op::BARRIER_DOWN;
        let rank = self.rank();
        let shape = OpShape::new(1, p);

        // Fold up the binomial tree.
        let mut mask = 1usize;
        while mask < p {
            if rank & mask != 0 {
                self.ctx
                    .send(rank - mask, up, Vec::new(), MsgClass::Control, shape);
                break;
            }
            if rank + mask < p {
                self.ctx.recv(rank + mask, up);
            }
            mask <<= 1;
        }
        // Broadcast release down the tree.
        let mut mask = p.next_power_of_two() >> 1;
        // Find the level at which this rank receives its release.
        if rank != 0 {
            let lowest = rank & rank.wrapping_neg(); // lowest set bit
            self.ctx.recv(rank - lowest, down);
            mask = lowest >> 1;
        }
        while mask >= 1 {
            if rank + mask < p {
                self.ctx
                    .send(rank + mask, down, Vec::new(), MsgClass::Control, shape);
            }
            if mask == 0 {
                break;
            }
            mask >>= 1;
        }
    }

    /// CMPI synchronization: `p - 1` rounds; in round `k` each rank
    /// sends one byte to `(rank + k) % p` and receives one byte from
    /// `(rank - k) % p`.
    pub fn ring_sync(&mut self) {
        let p = self.size();
        let tag = self.next_epoch(op::SYNC_RING);
        if p == 1 {
            return;
        }
        for k in 1..p {
            let dst = (self.rank() + k) % p;
            let src = (self.rank() + p - k) % p;
            self.ctx.send(
                dst,
                tag + ((k as u64) << 40),
                Vec::new(),
                MsgClass::Control,
                OpShape::repeated(1, p),
            );
            self.ctx.recv(src, tag + ((k as u64) << 40));
        }
    }

    /// Closes a CMPI split-exchange group (no-op under MPI middleware,
    /// where the blocking calls already synchronized).
    fn close_split_group(&mut self) {
        if self.middleware == Middleware::Cmpi {
            self.ring_sync();
        }
    }

    /// Global sum reduction to rank 0 followed by broadcast — CHARMM's
    /// `GCOMB` force combine (the paper's "all-to-all collective").
    /// `data` holds the local contribution on entry and the global sum
    /// on exit, on every rank.
    pub fn allreduce_sum(&mut self, data: &mut Vec<f64>) {
        let p = self.size();
        let reduce_tag = self.next_epoch(op::REDUCE);
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let shape = OpShape::new(1, p);

        // Binomial fold toward rank 0.
        let mut mask = 1usize;
        while mask < p {
            if rank & mask != 0 {
                let payload = std::mem::take(data);
                self.ctx
                    .send(rank - mask, reduce_tag, payload, MsgClass::Payload, shape);
                break;
            }
            if rank + mask < p {
                let msg = self.ctx.recv(rank + mask, reduce_tag);
                add_into(data, &msg.data);
                // The reduction arithmetic itself is part of the
                // communication routine in CHARMM; charge a small
                // per-element cost as computation.
                let per_add = 4e-9;
                self.ctx.charge_compute(per_add * msg.data.len() as f64);
            }
            mask <<= 1;
        }
        self.broadcast_internal(0, data, shape);
        self.close_split_group();
    }

    /// Bandwidth-optimal ring allreduce (reduce-scatter followed by
    /// allgather): each rank moves `2 (p-1)/p` of the vector instead of
    /// the full vector per tree level. Used for the PME charge-grid
    /// sum, whose volume (the full 3D mesh) dwarfs the force combines.
    pub fn allreduce_ring(&mut self, data: &mut [f64]) {
        let p = self.size();
        let tag = self.next_epoch(op::REDUCE);
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        let n = data.len();
        let block = |b: usize| crate::block_range(n, p, b);

        // Reduce-scatter: after p-1 steps rank r holds the complete sum
        // of block (r+1) mod p.
        for s in 0..p - 1 {
            let send_b = (rank + p - s) % p;
            let recv_b = (rank + p - s - 1) % p;
            let payload = data[block(send_b)].to_vec();
            self.ctx.send(
                right,
                tag + ((s as u64) << 40),
                payload,
                MsgClass::Payload,
                OpShape::new(1, p),
            );
            let msg = self.ctx.recv(left, tag + ((s as u64) << 40));
            let r = block(recv_b);
            assert_eq!(msg.data.len(), r.len());
            for (a, b) in data[r].iter_mut().zip(&msg.data) {
                *a += b;
            }
            self.ctx.charge_compute(4e-9 * msg.data.len() as f64);
        }
        // Allgather the summed blocks around the ring.
        for s in 0..p - 1 {
            let send_b = (rank + 1 + p - s) % p;
            let recv_b = (rank + p - s) % p;
            let payload = data[block(send_b)].to_vec();
            let t = tag + (((p + s) as u64) << 40);
            self.ctx
                .send(right, t, payload, MsgClass::Payload, OpShape::new(1, p));
            let msg = self.ctx.recv(left, t);
            let r = block(recv_b);
            data[r].copy_from_slice(&msg.data);
        }
        self.close_split_group();
    }

    /// Flat master-based global sum, the structure of early parallel
    /// CHARMM's `GCOMB`/`VDGSUM`: every rank sends its contribution to
    /// rank 0 (an incast), rank 0 reduces and sends the result back to
    /// everyone (an outcast). On TCP the incast congestion makes this
    /// visibly worse than a tree at scale — part of the classic
    /// calculation's overhead growth the paper measures.
    pub fn allreduce_flat(&mut self, data: &mut Vec<f64>) {
        let p = self.size();
        let tag = self.next_epoch(op::REDUCE);
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let shape = OpShape::new(p - 1, p);
        if rank == 0 {
            for src in 1..p {
                let msg = self.ctx.recv(src, tag);
                add_into(data, &msg.data);
                self.ctx.charge_compute(4e-9 * msg.data.len() as f64);
            }
            for dst in 1..p {
                self.ctx
                    .send(dst, tag + (1 << 40), data.clone(), MsgClass::Payload, shape);
            }
        } else {
            let payload = std::mem::take(data);
            self.ctx.send(0, tag, payload, MsgClass::Payload, shape);
            *data = self.ctx.recv(0, tag + (1 << 40)).data;
        }
        self.close_split_group();
    }

    /// Dispatches a global sum to the selected algorithm.
    pub fn allreduce_with(&mut self, algo: CombineAlgo, data: &mut Vec<f64>) {
        match algo {
            CombineAlgo::Flat => self.allreduce_flat(data),
            CombineAlgo::Tree => self.allreduce_sum(data),
            CombineAlgo::Ring => self.allreduce_ring(data),
        }
    }

    /// Scalar convenience wrapper over [`Comm::allreduce_sum`].
    pub fn allreduce_scalar(&mut self, x: f64) -> f64 {
        let mut v = vec![x];
        self.allreduce_sum(&mut v);
        v[0]
    }

    /// Broadcast `data` from `root` to all ranks (binomial tree).
    pub fn broadcast(&mut self, root: usize, data: &mut Vec<f64>) {
        let p = self.size();
        let shape = OpShape::new(1, p);
        self.epoch += 1;
        self.broadcast_internal(root, data, shape);
        self.close_split_group();
    }

    fn broadcast_internal(&mut self, root: usize, data: &mut Vec<f64>, shape: OpShape) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = (self.epoch << 8) | op::BCAST;
        // Rotate ranks so the root is 0 in tree coordinates.
        let vrank = (self.rank() + p - root) % p;

        if vrank != 0 {
            let lowest = vrank & vrank.wrapping_neg();
            let parent = ((vrank - lowest) + root) % p;
            let msg = self.ctx.recv(parent, tag);
            *data = msg.data;
            let mut mask = lowest >> 1;
            while mask >= 1 {
                if vrank + mask < p {
                    let child = ((vrank + mask) + root) % p;
                    self.ctx
                        .send(child, tag, data.clone(), MsgClass::Payload, shape);
                }
                mask >>= 1;
            }
        } else {
            let mut mask = p.next_power_of_two() >> 1;
            while mask >= 1 {
                if mask < p {
                    let child = ((vrank + mask) + root) % p;
                    if vrank + mask < p {
                        self.ctx
                            .send(child, tag, data.clone(), MsgClass::Payload, shape);
                    }
                }
                mask >>= 1;
            }
        }
    }

    /// Gathers each rank's vector at `root`; returns `Some(parts)` on
    /// the root (indexed by rank) and `None` elsewhere. Flat algorithm,
    /// as in early CHARMM ports.
    pub fn gather(&mut self, root: usize, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let p = self.size();
        let tag = self.next_epoch(op::GATHER);
        let result = if self.rank() == root {
            let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p];
            parts[root] = data;
            #[allow(clippy::needless_range_loop)]
            for src in 0..p {
                if src != root {
                    parts[src] = self.ctx.recv(src, tag).data;
                }
            }
            Some(parts)
        } else {
            self.ctx
                .send(root, tag, data, MsgClass::Payload, OpShape::new(p - 1, p));
            None
        };
        self.close_split_group();
        result
    }

    /// All ranks end up with every rank's vector (ring allgather).
    pub fn allgather(&mut self, data: Vec<f64>) -> Vec<Vec<f64>> {
        let p = self.size();
        let tag = self.next_epoch(op::ALLGATHER);
        let rank = self.rank();
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p];
        parts[rank] = data;
        if p == 1 {
            return parts;
        }
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        // Ring: in step s, forward the block received in step s-1.
        let mut cursor = rank;
        for s in 0..p - 1 {
            let block = parts[cursor].clone();
            self.ctx.send(
                right,
                tag + ((s as u64) << 40),
                block,
                MsgClass::Payload,
                OpShape::new(1, p),
            );
            let msg = self.ctx.recv(left, tag + ((s as u64) << 40));
            cursor = (cursor + p - 1) % p;
            parts[cursor] = msg.data;
        }
        self.close_split_group();
        parts
    }

    /// Scatters rank-indexed blocks from `root`: rank `r` receives
    /// `parts[r]`. Only the root supplies `parts`.
    pub fn scatter(&mut self, root: usize, parts: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let p = self.size();
        let tag = self.next_epoch(op::GATHER);
        let result = if self.rank() == root {
            let mut parts = parts.expect("root must supply the blocks");
            assert_eq!(parts.len(), p, "one block per rank");
            let shape = OpShape::new(p - 1, p);
            let mine = std::mem::take(&mut parts[root]);
            for (dst, block) in parts.into_iter().enumerate() {
                if dst != root {
                    self.ctx.send(dst, tag, block, MsgClass::Payload, shape);
                }
            }
            mine
        } else {
            self.ctx.recv(root, tag).data
        };
        self.close_split_group();
        result
    }

    /// Sum-reduction to `root` only (no broadcast back): returns
    /// `Some(total)` on the root, `None` elsewhere.
    pub fn reduce_sum(&mut self, root: usize, mut data: Vec<f64>) -> Option<Vec<f64>> {
        let p = self.size();
        let tag = self.next_epoch(op::REDUCE);
        let result = if p == 1 {
            Some(data)
        } else if self.rank() == root {
            let shape = OpShape::new(p - 1, p);
            let _ = shape;
            for src in 0..p {
                if src != root {
                    let msg = self.ctx.recv(src, tag);
                    add_into(&mut data, &msg.data);
                    self.ctx.charge_compute(4e-9 * msg.data.len() as f64);
                }
            }
            Some(data)
        } else {
            self.ctx
                .send(root, tag, data, MsgClass::Payload, OpShape::new(p - 1, p));
            None
        };
        self.close_split_group();
        result
    }

    /// All-to-all personalized exchange (the parallel FFT transpose —
    /// the paper's "all-to-all personalized communication").
    ///
    /// `sends[d]` is the block for rank `d` (`sends[rank]` stays local).
    /// Returns the blocks received, indexed by source.
    pub fn alltoallv(&mut self, mut sends: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let p = self.size();
        assert_eq!(sends.len(), p, "one block per destination required");
        let tag = self.next_epoch(op::ALLTOALL);
        let rank = self.rank();
        let mut recvs: Vec<Vec<f64>> = vec![Vec::new(); p];
        recvs[rank] = std::mem::take(&mut sends[rank]);
        if p == 1 {
            return recvs;
        }

        match self.middleware {
            Middleware::Mpi => {
                // Pairwise blocking exchange rounds.
                for k in 1..p {
                    let dst = (rank + k) % p;
                    let src = (rank + p - k) % p;
                    let block = std::mem::take(&mut sends[dst]);
                    self.ctx.send(
                        dst,
                        tag + ((k as u64) << 40),
                        block,
                        MsgClass::Payload,
                        OpShape::new(1, p),
                    );
                    recvs[src] = self.ctx.recv(src, tag + ((k as u64) << 40)).data;
                }
            }
            Middleware::Cmpi => {
                // Split: post every send, then drain every receive.
                for k in 1..p {
                    let dst = (rank + k) % p;
                    let block = std::mem::take(&mut sends[dst]);
                    // Split groups push every message at once: the
                    // receiver endpoint sees p-1 concurrent flows.
                    self.ctx.send(
                        dst,
                        tag + ((k as u64) << 40),
                        block,
                        MsgClass::Payload,
                        OpShape::new(p - 1, p),
                    );
                }
                for k in 1..p {
                    let src = (rank + p - k) % p;
                    recvs[src] = self.ctx.recv(src, tag + ((k as u64) << 40)).data;
                }
                self.ring_sync();
            }
        }
        recvs
    }
}

fn add_into(acc: &mut [f64], other: &[f64]) {
    assert_eq!(acc.len(), other.len(), "reduction length mismatch");
    for (a, b) in acc.iter_mut().zip(other) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind, Phase};

    fn for_each_config(f: impl Fn(usize, Middleware)) {
        for p in [1usize, 2, 3, 4, 5, 8] {
            for mw in Middleware::ALL {
                f(p, mw);
            }
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let mut v = vec![comm.rank() as f64, 1.0];
                comm.allreduce_sum(&mut v);
                v
            });
            let expect_sum = (0..p).sum::<usize>() as f64;
            for o in &out {
                assert_eq!(o.result, vec![expect_sum, p as f64], "p={p} mw={mw:?}");
            }
        });
    }

    #[test]
    fn ring_allreduce_matches_tree_allreduce() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let n = 37; // not divisible by p: exercises uneven blocks
                let mut v: Vec<f64> = (0..n).map(|i| (i * (comm.rank() + 1)) as f64).collect();
                comm.allreduce_ring(&mut v);
                v
            });
            let total_scale: f64 = (1..=p).sum::<usize>() as f64;
            let expect: Vec<f64> = (0..37).map(|i| i as f64 * total_scale).collect();
            for o in &out {
                for (a, b) in o.result.iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-9, "p={p} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn broadcast_distributes_root_data() {
        for_each_config(|p, mw| {
            for root in [0, p - 1] {
                let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
                let out = run_cluster(cfg, |ctx| {
                    let mut comm = Comm::new(ctx, mw);
                    let mut v = if comm.rank() == root {
                        vec![3.25, -1.0]
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(root, &mut v);
                    v
                });
                for o in &out {
                    assert_eq!(o.result, vec![3.25, -1.0], "p={p} root={root} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn gather_collects_at_root() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                comm.gather(0, vec![comm.rank() as f64; comm.rank() + 1])
            });
            let parts = out[0].result.as_ref().expect("root has data");
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![r as f64; r + 1], "p={p} mw={mw:?}");
            }
            for o in &out[1..] {
                assert!(o.result.is_none());
            }
        });
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                comm.allgather(vec![comm.rank() as f64 * 10.0])
            });
            for o in &out {
                for (r, part) in o.result.iter().enumerate() {
                    assert_eq!(part, &vec![r as f64 * 10.0], "p={p} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn alltoallv_transposes_blocks() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let rank = comm.rank();
                // Block for dst d encodes (src, dst).
                let sends: Vec<Vec<f64>> = (0..p).map(|d| vec![rank as f64, d as f64]).collect();
                comm.alltoallv(sends)
            });
            for (r, o) in out.iter().enumerate() {
                for (s, block) in o.result.iter().enumerate() {
                    assert_eq!(block, &vec![s as f64, r as f64], "p={p} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn scatter_distributes_root_blocks() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let parts = (comm.rank() == 0)
                    .then(|| (0..p).map(|r| vec![r as f64; r + 1]).collect::<Vec<_>>());
                comm.scatter(0, parts)
            });
            for (r, o) in out.iter().enumerate() {
                assert_eq!(o.result, vec![r as f64; r + 1], "p={p} mw={mw:?}");
            }
        });
    }

    #[test]
    fn reduce_sum_lands_only_at_root() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                comm.reduce_sum(0, vec![comm.rank() as f64 + 1.0, 2.0])
            });
            let expect0: f64 = (1..=p).map(|k| k as f64).sum();
            assert_eq!(
                out[0].result.as_ref().unwrap(),
                &vec![expect0, 2.0 * p as f64]
            );
            for o in &out[1..] {
                assert!(o.result.is_none());
            }
        });
    }

    #[test]
    fn barrier_completes_and_charges_sync_time() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                ctx.set_phase(Phase::Classic);
                let mut comm = Comm::new(ctx, mw);
                comm.barrier();
                comm.barrier();
            });
            if p > 1 {
                for o in &out {
                    let b = o.stats.bucket(Phase::Classic);
                    assert!(b.sync > 0.0, "p={p} mw={mw:?}");
                    assert_eq!(b.comm, 0.0, "barriers are pure synchronization");
                }
            }
        });
    }

    #[test]
    fn cmpi_barrier_is_much_slower_on_tcp_at_scale() {
        let time_for = |mw: Middleware| {
            let cfg = ClusterConfig::uni(8, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                for _ in 0..20 {
                    comm.barrier();
                }
            });
            cpc_cluster::elapsed_time(&out)
        };
        let mpi = time_for(Middleware::Mpi);
        let cmpi = time_for(Middleware::Cmpi);
        assert!(cmpi > 3.0 * mpi, "MPI {mpi} vs CMPI {cmpi}");
    }

    #[test]
    fn cmpi_barrier_is_fine_on_myrinet() {
        let time_for = |mw: Middleware| {
            let cfg = ClusterConfig::uni(8, NetworkKind::MyrinetGm);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                for _ in 0..20 {
                    comm.barrier();
                }
            });
            cpc_cluster::elapsed_time(&out)
        };
        let mpi = time_for(Middleware::Mpi);
        let cmpi = time_for(Middleware::Cmpi);
        // Ring sync costs more rounds but no pathology: within ~8x.
        assert!(cmpi < 8.0 * mpi, "MPI {mpi} vs CMPI {cmpi}");
    }

    #[test]
    fn user_p2p_roundtrip() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                comm.send(1, 9, vec![1.0, 2.0, 3.0]);
                comm.recv(1, 10)
            } else {
                let v = comm.recv(0, 9);
                comm.send(0, 10, v.iter().map(|x| x * 2.0).collect());
                Vec::new()
            }
        });
        assert_eq!(out[0].result, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn collective_timing_is_deterministic() {
        let run_once = || {
            let cfg = ClusterConfig::uni(8, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                let mut v = vec![comm.rank() as f64; 10_000];
                comm.allreduce_sum(&mut v);
                let blocks: Vec<Vec<f64>> = (0..comm.size()).map(|d| vec![d as f64; 500]).collect();
                comm.alltoallv(blocks);
                comm.barrier();
            });
            out.iter().map(|o| o.finish_time).collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }
}
