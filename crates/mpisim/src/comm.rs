//! The communicator: MPI-flavoured point-to-point and collective
//! operations over the virtual cluster, implemented — as in CHARMM —
//! entirely on top of point-to-point messages, so every collective's
//! cost emerges from the network model.
//!
//! A communicator addresses peers by *logical* rank and carries a
//! member table mapping logical ranks to engine ranks. At construction
//! the mapping is the identity (zero observable difference from
//! addressing engine ranks directly); after a failure it can be
//! [shrunk](Comm::shrink) to the survivors, which renumbers logical
//! ranks densely so every collective keeps working on the smaller
//! group without change.

use crate::detector::FailureDetector;
use crate::middleware::{CombineAlgo, Middleware};
use cpc_cluster::{CommError, MsgClass, OpShape, RankCtx, RttEstimator};

/// Tag space layout: collectives use `epoch << 8 | op`, user messages
/// use the high bit.
const USER_TAG_BASE: u64 = 1 << 63;

/// Operation ids inside a collective epoch.
mod op {
    pub const BARRIER_UP: u64 = 1;
    pub const BARRIER_DOWN: u64 = 2;
    pub const REDUCE: u64 = 3;
    pub const BCAST: u64 = 4;
    pub const ALLTOALL: u64 = 5;
    pub const GATHER: u64 = 6;
    pub const SYNC_RING: u64 = 7;
    pub const ALLGATHER: u64 = 8;
    pub const HEARTBEAT: u64 = 9;
}

/// Bounded-retry policy for reliable user-level point-to-point
/// messaging over lossy links (used with
/// [`Comm::send_with_retry`] / [`Comm::recv_with_retry`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff growth factor between attempts (sender-side timer).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff: 2.0,
        }
    }
}

/// An MPI-like communicator bound to one rank's execution context.
pub struct Comm<'a> {
    ctx: &'a mut RankCtx,
    middleware: Middleware,
    epoch: u64,
    /// Engine ranks of the live members, ascending. Identity at
    /// construction.
    members: Vec<usize>,
    /// This rank's index in `members` (its logical rank).
    my_local: usize,
    /// Per-engine-rank Jacobson/Karels RTT estimators fed by delivered
    /// payload sends; drive the adaptive retry timer of
    /// [`send_with_retry`](Comm::send_with_retry).
    rtt: Vec<RttEstimator>,
}

impl<'a> Comm<'a> {
    /// Wraps a rank context with the chosen middleware style.
    pub fn new(ctx: &'a mut RankCtx, middleware: Middleware) -> Self {
        let members: Vec<usize> = (0..ctx.size()).collect();
        let my_local = ctx.rank();
        let rtt = vec![RttEstimator::new(); ctx.size()];
        Comm {
            ctx,
            middleware,
            epoch: 0,
            members,
            my_local,
            rtt,
        }
    }

    /// The RTT estimator of the channel toward engine rank `gdst`.
    pub fn rtt_estimate(&self, gdst: usize) -> &RttEstimator {
        &self.rtt[gdst]
    }

    /// This rank's logical rank within the (possibly shrunken)
    /// communicator.
    pub fn rank(&self) -> usize {
        self.my_local
    }

    /// Number of live members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's engine (original) rank, stable across shrinks.
    pub fn global_rank(&self) -> usize {
        self.members[self.my_local]
    }

    /// Engine ranks of the live members, in logical-rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The middleware in use.
    pub fn middleware(&self) -> Middleware {
        self.middleware
    }

    /// Underlying context (for phase control and compute charging).
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.ctx
    }

    /// Engine rank of logical rank `local`.
    fn g(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Engine rank of logical member `local` (for group communicators
    /// layered on top of this one).
    pub(crate) fn to_global(&self, local: usize) -> usize {
        self.members[local]
    }

    fn next_epoch(&mut self, op_id: u64) -> u64 {
        self.epoch += 1;
        (self.epoch << 8) | op_id
    }

    /// Removes dead members (named by *engine* rank) from the
    /// communicator and renumbers logical ranks densely. Must be called
    /// collectively by every survivor with the same `dead` set — the
    /// set returned by [`heartbeat`](Comm::heartbeat) is such a set.
    ///
    /// # Panics
    /// If the calling rank itself is in `dead`.
    pub fn shrink(&mut self, dead: &[usize]) {
        let me = self.global_rank();
        assert!(!dead.contains(&me), "rank {me} cannot shrink itself away");
        self.members.retain(|r| !dead.contains(r));
        self.my_local = self
            .members
            .iter()
            .position(|&r| r == me)
            .expect("surviving rank stays a member");
    }

    /// Liveness exchange: every member sends a heartbeat control
    /// message to every other member and collects theirs. Returns the
    /// *engine* ranks of members found dead (crashed peers), which is
    /// identical on every survivor: a peer either completed this epoch
    /// (its heartbeats are in flight to everyone) or crashed at a
    /// safe point before sending any of them.
    ///
    /// Heartbeats ride the reliable control channel, so loss can delay
    /// but never drop them.
    pub fn heartbeat(&mut self) -> Vec<usize> {
        let p = self.size();
        let tag = self.next_epoch(op::HEARTBEAT);
        if p == 1 {
            return Vec::new();
        }
        let shape = OpShape::new(1, p);
        for d in 0..p {
            if d == self.my_local {
                continue;
            }
            let dst = self.g(d);
            self.ctx
                .send(dst, tag, Vec::new(), MsgClass::Control, shape);
        }
        let mut dead = Vec::new();
        for s in 0..p {
            if s == self.my_local {
                continue;
            }
            let src = self.g(s);
            match self.ctx.recv_result(src, tag) {
                Ok(_) => {}
                Err(CommError::PeerDead { peer, .. }) => dead.push(peer),
                // Control messages never tombstone; any other error
                // would be a protocol bug surfaced elsewhere.
                Err(_) => {}
            }
        }
        dead
    }

    /// Liveness exchange with observation: like
    /// [`heartbeat`](Comm::heartbeat), but each heartbeat piggybacks
    /// the sender's `report` (its last normalized per-unit step cost;
    /// pass a negative sentinel when no data exists yet) and the
    /// received reports are folded into the failure detector.
    ///
    /// Control messages are modeled at one byte regardless of payload,
    /// so this exchange is **timing- and RNG-identical** to the plain
    /// heartbeat — piggybacking costs nothing and perturbs nothing.
    /// Every member receives the same set of reports (its own is fed
    /// directly), so detector state stays replicated across ranks and
    /// suspect/evict verdicts need no extra agreement round.
    ///
    /// Returns the engine ranks of members found dead, exactly as
    /// [`heartbeat`](Comm::heartbeat) does; dead peers are
    /// [forgotten](FailureDetector::forget) by the detector.
    pub fn heartbeat_observed(&mut self, det: &mut FailureDetector, report: f64) -> Vec<usize> {
        self.heartbeat_observed_with(det, report, -1.0).0
    }

    /// Liveness exchange that additionally piggybacks an ABFT replica
    /// `digest` on the same heartbeat control messages.
    ///
    /// `digest` must be a non-negative integer below 2^53 rendered as
    /// `f64` (see `cpc_md::abft::DIGEST_MASK`), or a negative sentinel
    /// when the caller has no digest to contribute. Control messages
    /// are modeled at one byte regardless of payload, so piggybacking
    /// the digest keeps control traffic, timing and RNG draws exactly
    /// identical to the plain heartbeat.
    ///
    /// Returns `(dead, votes)`: `dead` exactly as
    /// [`heartbeat_observed`](Comm::heartbeat_observed), and `votes`
    /// the `(engine_rank, digest)` pairs collected this epoch —
    /// including the caller's own — sorted by rank and omitting
    /// sentinel entries, ready for `cpc_md::abft::vote`.
    pub fn heartbeat_observed_with(
        &mut self,
        det: &mut FailureDetector,
        report: f64,
        digest: f64,
    ) -> (Vec<usize>, Vec<(usize, f64)>) {
        let p = self.size();
        let tag = self.next_epoch(op::HEARTBEAT);
        det.report(self.global_rank(), report);
        let mut votes = Vec::new();
        if digest >= 0.0 {
            votes.push((self.global_rank(), digest));
        }
        if p == 1 {
            return (Vec::new(), votes);
        }
        let shape = OpShape::new(1, p);
        for d in 0..p {
            if d == self.my_local {
                continue;
            }
            let dst = self.g(d);
            self.ctx
                .send(dst, tag, vec![report, digest], MsgClass::Control, shape);
        }
        let mut dead = Vec::new();
        for s in 0..p {
            if s == self.my_local {
                continue;
            }
            let src = self.g(s);
            match self.ctx.recv_result(src, tag) {
                Ok(m) => {
                    if let Some(&r) = m.data.first() {
                        det.report(src, r);
                    }
                    if let Some(&d) = m.data.get(1) {
                        if d >= 0.0 {
                            votes.push((src, d));
                        }
                    }
                    det.observe_rtt(src, m.arrival - m.departure);
                }
                Err(CommError::PeerDead { peer, .. }) => {
                    det.forget(peer);
                    dead.push(peer);
                }
                Err(_) => {}
            }
        }
        votes.sort_by_key(|&(r, _)| r);
        (dead, votes)
    }

    /// Blocking user-level send.
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        let gdst = self.g(dst);
        let outcome = self.ctx.send(
            gdst,
            USER_TAG_BASE | tag,
            data,
            MsgClass::Payload,
            OpShape::p2p(),
        );
        if outcome.delivered {
            self.rtt[gdst].observe(outcome.wire);
        }
    }

    /// Blocking user-level receive.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let gsrc = self.g(src);
        self.ctx.recv(gsrc, USER_TAG_BASE | tag).data
    }

    /// Fault-aware user-level receive: surfaces
    /// [`CommError::Timeout`] for a message the transport gave up on
    /// and [`CommError::PeerDead`] for a crashed sender, instead of
    /// blocking forever.
    pub fn try_recv(&mut self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let gsrc = self.g(src);
        self.ctx
            .recv_result(gsrc, USER_TAG_BASE | tag)
            .map(|m| m.data)
    }

    /// Reliable user-level send over a lossy link: bounded retries with
    /// sender-side exponential backoff between attempts. Returns the
    /// number of *extra* attempts used (0 = first try delivered).
    ///
    /// The per-attempt timer is adaptive (Jacobson/Karels): once the
    /// channel's RTT estimator has a sample, the base timer is
    /// `SRTT + 4·RTTVAR` clamped to the network's `[rto_floor,
    /// rto_max]` envelope, so retries under an injected degradation
    /// track the observed channel instead of a worst-case constant.
    /// With no samples yet the static `rto_floor` is used — identical
    /// to the legacy behaviour.
    ///
    /// Pair with [`recv_with_retry`](Comm::recv_with_retry) using the
    /// same tag and policy. Retry tags use bits 48..56 of the user tag
    /// space, so `tag` must be below 2^48.
    pub fn send_with_retry(
        &mut self,
        dst: usize,
        tag: u64,
        data: Vec<f64>,
        policy: RetryPolicy,
    ) -> Result<u32, CommError> {
        debug_assert!(tag < (1 << 48), "retry tags use bits 48..56");
        let gdst = self.g(dst);
        let floor = self.ctx.net().rto_floor();
        let rto_max = self.ctx.net().rto_max;
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            let t = self.user_tag(tag) | ((attempt as u64) << 48);
            let outcome = self
                .ctx
                .send(gdst, t, data.clone(), MsgClass::Payload, OpShape::p2p());
            if outcome.delivered {
                self.rtt[gdst].observe(outcome.wire);
                return Ok(attempt);
            }
            // Wait out the (backed-off) application-level timer before
            // the next attempt. Undelivered transfers never feed the
            // estimator: their "wire" time is the give-up time.
            let base = self.rtt[gdst]
                .rto()
                .map_or(floor, |r| r.clamp(floor, rto_max.max(floor)));
            self.ctx
                .charge_wait(base * policy.backoff.powi(attempt as i32));
        }
        Err(CommError::Timeout {
            peer: gdst,
            tag,
            at: self.ctx.now(),
        })
    }

    /// Receiving side of [`send_with_retry`](Comm::send_with_retry):
    /// consumes tombstones attempt by attempt until a delivery, a dead
    /// peer, or the policy is exhausted.
    pub fn recv_with_retry(
        &mut self,
        src: usize,
        tag: u64,
        policy: RetryPolicy,
    ) -> Result<Vec<f64>, CommError> {
        debug_assert!(tag < (1 << 48), "retry tags use bits 48..56");
        let gsrc = self.g(src);
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            let t = self.user_tag(tag) | ((attempt as u64) << 48);
            match self.ctx.recv_result(gsrc, t) {
                Ok(m) => return Ok(m.data),
                Err(e @ CommError::PeerDead { .. }) => return Err(e),
                Err(_) => {} // tombstone for this attempt: wait for the next
            }
        }
        Err(CommError::Timeout {
            peer: gsrc,
            tag,
            at: self.ctx.now(),
        })
    }

    /// Maps a user tag into the reserved user tag space.
    pub(crate) fn user_tag(&self, tag: u64) -> u64 {
        USER_TAG_BASE | tag
    }

    /// Blocking receive on a raw (already namespaced) tag addressed by
    /// *engine* rank.
    pub(crate) fn raw_recv(&mut self, src: usize, tag: u64) -> cpc_cluster::Msg {
        self.ctx.recv(src, tag)
    }

    /// Probe on a raw tag (no time advance), addressed by engine rank.
    pub(crate) fn raw_probe(&self, src: usize, tag: u64) -> bool {
        self.ctx_ref().probe(src, tag)
    }

    /// Immutable access to the context.
    pub(crate) fn ctx_ref(&self) -> &RankCtx {
        self.ctx
    }

    /// Global synchronization. MPI: binomial-tree barrier with control
    /// messages. CMPI: `p - 1` rounds of 1-byte ring exchanges.
    pub fn barrier(&mut self) {
        match self.middleware {
            Middleware::Mpi => self.tree_barrier(),
            Middleware::Cmpi => self.ring_sync(),
        }
    }

    /// Fault-aware barrier: degrades instead of hanging. A dead peer's
    /// contribution is treated as satisfied (its crash notice releases
    /// the hop), the protocol runs to completion so no survivor is
    /// left blocked, and the first failure observed is returned.
    pub fn try_barrier(&mut self) -> Result<(), CommError> {
        match self.middleware {
            Middleware::Mpi => self.try_tree_barrier(),
            Middleware::Cmpi => self.try_ring_sync(),
        }
    }

    fn tree_barrier(&mut self) {
        let p = self.size();
        if p == 1 {
            self.epoch += 1;
            return;
        }
        let up = self.next_epoch(op::BARRIER_UP);
        let down = (self.epoch << 8) | op::BARRIER_DOWN;
        let rank = self.rank();
        let shape = OpShape::new(1, p);

        // Fold up the binomial tree.
        let mut mask = 1usize;
        while mask < p {
            if rank & mask != 0 {
                let dst = self.g(rank - mask);
                self.ctx.send(dst, up, Vec::new(), MsgClass::Control, shape);
                break;
            }
            if rank + mask < p {
                let src = self.g(rank + mask);
                self.ctx.recv(src, up);
            }
            mask <<= 1;
        }
        // Broadcast release down the tree.
        let mut mask = p.next_power_of_two() >> 1;
        // Find the level at which this rank receives its release.
        if rank != 0 {
            let lowest = rank & rank.wrapping_neg(); // lowest set bit
            let src = self.g(rank - lowest);
            self.ctx.recv(src, down);
            mask = lowest >> 1;
        }
        while mask >= 1 {
            if rank + mask < p {
                let dst = self.g(rank + mask);
                self.ctx
                    .send(dst, down, Vec::new(), MsgClass::Control, shape);
            }
            mask >>= 1;
        }
    }

    fn try_tree_barrier(&mut self) -> Result<(), CommError> {
        let p = self.size();
        if p == 1 {
            self.epoch += 1;
            return Ok(());
        }
        let up = self.next_epoch(op::BARRIER_UP);
        let down = (self.epoch << 8) | op::BARRIER_DOWN;
        let rank = self.rank();
        let shape = OpShape::new(1, p);
        let mut first_err: Option<CommError> = None;

        let mut mask = 1usize;
        while mask < p {
            if rank & mask != 0 {
                let dst = self.g(rank - mask);
                self.ctx.send(dst, up, Vec::new(), MsgClass::Control, shape);
                break;
            }
            if rank + mask < p {
                let src = self.g(rank + mask);
                if let Err(e) = self.ctx.recv_result(src, up) {
                    // Dead child: its subtree counts as arrived.
                    first_err.get_or_insert(e);
                }
            }
            mask <<= 1;
        }
        let mut mask = p.next_power_of_two() >> 1;
        if rank != 0 {
            let lowest = rank & rank.wrapping_neg();
            let src = self.g(rank - lowest);
            if let Err(e) = self.ctx.recv_result(src, down) {
                // Dead parent: release ourselves, keep releasing the
                // subtree below so nobody hangs.
                first_err.get_or_insert(e);
            }
            mask = lowest >> 1;
        }
        while mask >= 1 {
            if rank + mask < p {
                let dst = self.g(rank + mask);
                self.ctx
                    .send(dst, down, Vec::new(), MsgClass::Control, shape);
            }
            mask >>= 1;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// CMPI synchronization: `p - 1` rounds; in round `k` each rank
    /// sends one byte to `(rank + k) % p` and receives one byte from
    /// `(rank - k) % p`.
    pub fn ring_sync(&mut self) {
        let p = self.size();
        let tag = self.next_epoch(op::SYNC_RING);
        if p == 1 {
            return;
        }
        let rank = self.rank();
        for k in 1..p {
            let dst = self.g((rank + k) % p);
            let src = self.g((rank + p - k) % p);
            self.ctx.send(
                dst,
                tag + ((k as u64) << 40),
                Vec::new(),
                MsgClass::Control,
                OpShape::repeated(1, p),
            );
            self.ctx.recv(src, tag + ((k as u64) << 40));
        }
    }

    fn try_ring_sync(&mut self) -> Result<(), CommError> {
        let p = self.size();
        let tag = self.next_epoch(op::SYNC_RING);
        if p == 1 {
            return Ok(());
        }
        let rank = self.rank();
        let mut first_err: Option<CommError> = None;
        for k in 1..p {
            let dst = self.g((rank + k) % p);
            let src = self.g((rank + p - k) % p);
            self.ctx.send(
                dst,
                tag + ((k as u64) << 40),
                Vec::new(),
                MsgClass::Control,
                OpShape::repeated(1, p),
            );
            if let Err(e) = self.ctx.recv_result(src, tag + ((k as u64) << 40)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Closes a CMPI split-exchange group (no-op under MPI middleware,
    /// where the blocking calls already synchronized).
    fn close_split_group(&mut self) {
        if self.middleware == Middleware::Cmpi {
            self.ring_sync();
        }
    }

    /// Global sum reduction to rank 0 followed by broadcast — CHARMM's
    /// `GCOMB` force combine (the paper's "all-to-all collective").
    /// `data` holds the local contribution on entry and the global sum
    /// on exit, on every rank.
    pub fn allreduce_sum(&mut self, data: &mut Vec<f64>) {
        let p = self.size();
        let reduce_tag = self.next_epoch(op::REDUCE);
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let shape = OpShape::new(1, p);

        // Binomial fold toward rank 0.
        let mut mask = 1usize;
        while mask < p {
            if rank & mask != 0 {
                let payload = std::mem::take(data);
                let dst = self.g(rank - mask);
                self.ctx
                    .send(dst, reduce_tag, payload, MsgClass::Payload, shape);
                break;
            }
            if rank + mask < p {
                let src = self.g(rank + mask);
                let msg = self.ctx.recv(src, reduce_tag);
                add_into(data, &msg.data);
                // The reduction arithmetic itself is part of the
                // communication routine in CHARMM; charge a small
                // per-element cost as computation.
                let per_add = 4e-9;
                self.ctx.charge_compute(per_add * msg.data.len() as f64);
            }
            mask <<= 1;
        }
        self.broadcast_internal(0, data, shape);
        self.close_split_group();
    }

    /// Bandwidth-optimal ring allreduce (reduce-scatter followed by
    /// allgather): each rank moves `2 (p-1)/p` of the vector instead of
    /// the full vector per tree level. Used for the PME charge-grid
    /// sum, whose volume (the full 3D mesh) dwarfs the force combines.
    pub fn allreduce_ring(&mut self, data: &mut [f64]) {
        let p = self.size();
        let tag = self.next_epoch(op::REDUCE);
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let right = self.g((rank + 1) % p);
        let left = self.g((rank + p - 1) % p);
        let n = data.len();
        let block = |b: usize| crate::block_range(n, p, b);

        // Reduce-scatter: after p-1 steps rank r holds the complete sum
        // of block (r+1) mod p.
        for s in 0..p - 1 {
            let send_b = (rank + p - s) % p;
            let recv_b = (rank + p - s - 1) % p;
            let payload = data[block(send_b)].to_vec();
            self.ctx.send(
                right,
                tag + ((s as u64) << 40),
                payload,
                MsgClass::Payload,
                OpShape::new(1, p),
            );
            let msg = self.ctx.recv(left, tag + ((s as u64) << 40));
            let r = block(recv_b);
            assert_eq!(msg.data.len(), r.len());
            for (a, b) in data[r].iter_mut().zip(&msg.data) {
                *a += b;
            }
            self.ctx.charge_compute(4e-9 * msg.data.len() as f64);
        }
        // Allgather the summed blocks around the ring.
        for s in 0..p - 1 {
            let send_b = (rank + 1 + p - s) % p;
            let recv_b = (rank + p - s) % p;
            let payload = data[block(send_b)].to_vec();
            let t = tag + (((p + s) as u64) << 40);
            self.ctx
                .send(right, t, payload, MsgClass::Payload, OpShape::new(1, p));
            let msg = self.ctx.recv(left, t);
            let r = block(recv_b);
            data[r].copy_from_slice(&msg.data);
        }
        self.close_split_group();
    }

    /// Flat master-based global sum, the structure of early parallel
    /// CHARMM's `GCOMB`/`VDGSUM`: every rank sends its contribution to
    /// rank 0 (an incast), rank 0 reduces and sends the result back to
    /// everyone (an outcast). On TCP the incast congestion makes this
    /// visibly worse than a tree at scale — part of the classic
    /// calculation's overhead growth the paper measures.
    pub fn allreduce_flat(&mut self, data: &mut Vec<f64>) {
        let p = self.size();
        let tag = self.next_epoch(op::REDUCE);
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let shape = OpShape::new(p - 1, p);
        if rank == 0 {
            for src in 1..p {
                let gsrc = self.g(src);
                let msg = self.ctx.recv(gsrc, tag);
                add_into(data, &msg.data);
                self.ctx.charge_compute(4e-9 * msg.data.len() as f64);
            }
            for dst in 1..p {
                let gdst = self.g(dst);
                self.ctx.send(
                    gdst,
                    tag + (1 << 40),
                    data.clone(),
                    MsgClass::Payload,
                    shape,
                );
            }
        } else {
            let payload = std::mem::take(data);
            let root = self.g(0);
            self.ctx.send(root, tag, payload, MsgClass::Payload, shape);
            *data = self.ctx.recv(root, tag + (1 << 40)).data;
        }
        self.close_split_group();
    }

    /// Dispatches a global sum to the selected algorithm.
    pub fn allreduce_with(&mut self, algo: CombineAlgo, data: &mut Vec<f64>) {
        match algo {
            CombineAlgo::Flat => self.allreduce_flat(data),
            CombineAlgo::Tree => self.allreduce_sum(data),
            CombineAlgo::Ring => self.allreduce_ring(data),
        }
    }

    /// Scalar convenience wrapper over [`Comm::allreduce_sum`].
    pub fn allreduce_scalar(&mut self, x: f64) -> f64 {
        let mut v = vec![x];
        self.allreduce_sum(&mut v);
        v[0]
    }

    /// Broadcast `data` from `root` to all ranks (binomial tree).
    pub fn broadcast(&mut self, root: usize, data: &mut Vec<f64>) {
        let p = self.size();
        let shape = OpShape::new(1, p);
        self.epoch += 1;
        self.broadcast_internal(root, data, shape);
        self.close_split_group();
    }

    fn broadcast_internal(&mut self, root: usize, data: &mut Vec<f64>, shape: OpShape) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = (self.epoch << 8) | op::BCAST;
        // Rotate ranks so the root is 0 in tree coordinates.
        let vrank = (self.rank() + p - root) % p;

        if vrank != 0 {
            let lowest = vrank & vrank.wrapping_neg();
            let parent = self.g(((vrank - lowest) + root) % p);
            let msg = self.ctx.recv(parent, tag);
            *data = msg.data;
            let mut mask = lowest >> 1;
            while mask >= 1 {
                if vrank + mask < p {
                    let child = self.g(((vrank + mask) + root) % p);
                    self.ctx
                        .send(child, tag, data.clone(), MsgClass::Payload, shape);
                }
                mask >>= 1;
            }
        } else {
            let mut mask = p.next_power_of_two() >> 1;
            while mask >= 1 {
                if mask < p && vrank + mask < p {
                    let child = self.g(((vrank + mask) + root) % p);
                    self.ctx
                        .send(child, tag, data.clone(), MsgClass::Payload, shape);
                }
                mask >>= 1;
            }
        }
    }

    /// Gathers each rank's vector at `root`; returns `Some(parts)` on
    /// the root (indexed by rank) and `None` elsewhere. Flat algorithm,
    /// as in early CHARMM ports.
    pub fn gather(&mut self, root: usize, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let p = self.size();
        let tag = self.next_epoch(op::GATHER);
        let result = if self.rank() == root {
            let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p];
            parts[root] = data;
            #[allow(clippy::needless_range_loop)]
            for src in 0..p {
                if src != root {
                    let gsrc = self.g(src);
                    parts[src] = self.ctx.recv(gsrc, tag).data;
                }
            }
            Some(parts)
        } else {
            let groot = self.g(root);
            self.ctx
                .send(groot, tag, data, MsgClass::Payload, OpShape::new(p - 1, p));
            None
        };
        self.close_split_group();
        result
    }

    /// All ranks end up with every rank's vector (ring allgather).
    pub fn allgather(&mut self, data: Vec<f64>) -> Vec<Vec<f64>> {
        let p = self.size();
        let tag = self.next_epoch(op::ALLGATHER);
        let rank = self.rank();
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p];
        parts[rank] = data;
        if p == 1 {
            return parts;
        }
        let right = self.g((rank + 1) % p);
        let left = self.g((rank + p - 1) % p);
        // Ring: in step s, forward the block received in step s-1.
        let mut cursor = rank;
        for s in 0..p - 1 {
            let block = parts[cursor].clone();
            self.ctx.send(
                right,
                tag + ((s as u64) << 40),
                block,
                MsgClass::Payload,
                OpShape::new(1, p),
            );
            let msg = self.ctx.recv(left, tag + ((s as u64) << 40));
            cursor = (cursor + p - 1) % p;
            parts[cursor] = msg.data;
        }
        self.close_split_group();
        parts
    }

    /// Scatters rank-indexed blocks from `root`: rank `r` receives
    /// `parts[r]`. Only the root supplies `parts`.
    ///
    /// # Panics
    /// On a protocol violation (root without blocks, wrong block
    /// count), with a message naming the offending rank. Use
    /// [`try_scatter`](Comm::try_scatter) to handle those as values.
    pub fn scatter(&mut self, root: usize, parts: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        match self.try_scatter(root, parts) {
            Ok(block) => block,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible scatter: protocol violations come back as
    /// [`CommError::Protocol`] naming the offending rank instead of a
    /// panic. (On an error return the collective is aborted locally;
    /// peers blocked on the root will only unblock if the root
    /// crashes or resends — exactly as with the panicking variant.)
    pub fn try_scatter(
        &mut self,
        root: usize,
        parts: Option<Vec<Vec<f64>>>,
    ) -> Result<Vec<f64>, CommError> {
        let p = self.size();
        let tag = self.next_epoch(op::GATHER);
        let result = if self.rank() == root {
            let Some(mut parts) = parts else {
                return Err(CommError::Protocol {
                    rank: self.global_rank(),
                    what: "scatter root called without its blocks".to_string(),
                });
            };
            if parts.len() != p {
                return Err(CommError::Protocol {
                    rank: self.global_rank(),
                    what: format!(
                        "scatter needs one block per rank: got {}, p={p}",
                        parts.len()
                    ),
                });
            }
            let shape = OpShape::new(p - 1, p);
            let mine = std::mem::take(&mut parts[root]);
            for (dst, block) in parts.into_iter().enumerate() {
                if dst != root {
                    let gdst = self.g(dst);
                    self.ctx.send(gdst, tag, block, MsgClass::Payload, shape);
                }
            }
            mine
        } else {
            let groot = self.g(root);
            self.ctx.recv(groot, tag).data
        };
        self.close_split_group();
        Ok(result)
    }

    /// Sum-reduction to `root` only (no broadcast back): returns
    /// `Some(total)` on the root, `None` elsewhere.
    pub fn reduce_sum(&mut self, root: usize, mut data: Vec<f64>) -> Option<Vec<f64>> {
        let p = self.size();
        let tag = self.next_epoch(op::REDUCE);
        let result = if p == 1 {
            Some(data)
        } else if self.rank() == root {
            for src in 0..p {
                if src != root {
                    let gsrc = self.g(src);
                    let msg = self.ctx.recv(gsrc, tag);
                    add_into(&mut data, &msg.data);
                    self.ctx.charge_compute(4e-9 * msg.data.len() as f64);
                }
            }
            Some(data)
        } else {
            let groot = self.g(root);
            self.ctx
                .send(groot, tag, data, MsgClass::Payload, OpShape::new(p - 1, p));
            None
        };
        self.close_split_group();
        result
    }

    /// All-to-all personalized exchange (the parallel FFT transpose —
    /// the paper's "all-to-all personalized communication").
    ///
    /// `sends[d]` is the block for rank `d` (`sends[rank]` stays local).
    /// Returns the blocks received, indexed by source.
    pub fn alltoallv(&mut self, mut sends: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let p = self.size();
        assert_eq!(sends.len(), p, "one block per destination required");
        let tag = self.next_epoch(op::ALLTOALL);
        let rank = self.rank();
        let mut recvs: Vec<Vec<f64>> = vec![Vec::new(); p];
        recvs[rank] = std::mem::take(&mut sends[rank]);
        if p == 1 {
            return recvs;
        }

        match self.middleware {
            Middleware::Mpi => {
                // Pairwise blocking exchange rounds.
                for k in 1..p {
                    let dst = (rank + k) % p;
                    let src = (rank + p - k) % p;
                    let block = std::mem::take(&mut sends[dst]);
                    let gdst = self.g(dst);
                    let gsrc = self.g(src);
                    self.ctx.send(
                        gdst,
                        tag + ((k as u64) << 40),
                        block,
                        MsgClass::Payload,
                        OpShape::new(1, p),
                    );
                    recvs[src] = self.ctx.recv(gsrc, tag + ((k as u64) << 40)).data;
                }
            }
            Middleware::Cmpi => {
                // Split: post every send, then drain every receive.
                for k in 1..p {
                    let dst = (rank + k) % p;
                    let block = std::mem::take(&mut sends[dst]);
                    let gdst = self.g(dst);
                    // Split groups push every message at once: the
                    // receiver endpoint sees p-1 concurrent flows.
                    self.ctx.send(
                        gdst,
                        tag + ((k as u64) << 40),
                        block,
                        MsgClass::Payload,
                        OpShape::new(p - 1, p),
                    );
                }
                for k in 1..p {
                    let src = (rank + p - k) % p;
                    let gsrc = self.g(src);
                    recvs[src] = self.ctx.recv(gsrc, tag + ((k as u64) << 40)).data;
                }
                self.ring_sync();
            }
        }
        recvs
    }
}

fn add_into(acc: &mut [f64], other: &[f64]) {
    assert_eq!(acc.len(), other.len(), "reduction length mismatch");
    for (a, b) in acc.iter_mut().zip(other) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::{
        run_cluster, run_cluster_faulty, ClusterConfig, FaultPlan, NetworkKind, Phase,
    };

    fn for_each_config(f: impl Fn(usize, Middleware)) {
        for p in [1usize, 2, 3, 4, 5, 8] {
            for mw in Middleware::ALL {
                f(p, mw);
            }
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let mut v = vec![comm.rank() as f64, 1.0];
                comm.allreduce_sum(&mut v);
                v
            });
            let expect_sum = (0..p).sum::<usize>() as f64;
            for o in &out {
                assert_eq!(o.result, vec![expect_sum, p as f64], "p={p} mw={mw:?}");
            }
        });
    }

    #[test]
    fn ring_allreduce_matches_tree_allreduce() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let n = 37; // not divisible by p: exercises uneven blocks
                let mut v: Vec<f64> = (0..n).map(|i| (i * (comm.rank() + 1)) as f64).collect();
                comm.allreduce_ring(&mut v);
                v
            });
            let total_scale: f64 = (1..=p).sum::<usize>() as f64;
            let expect: Vec<f64> = (0..37).map(|i| i as f64 * total_scale).collect();
            for o in &out {
                for (a, b) in o.result.iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-9, "p={p} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn broadcast_distributes_root_data() {
        for_each_config(|p, mw| {
            for root in [0, p - 1] {
                let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
                let out = run_cluster(cfg, |ctx| {
                    let mut comm = Comm::new(ctx, mw);
                    let mut v = if comm.rank() == root {
                        vec![3.25, -1.0]
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(root, &mut v);
                    v
                });
                for o in &out {
                    assert_eq!(o.result, vec![3.25, -1.0], "p={p} root={root} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn gather_collects_at_root() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                comm.gather(0, vec![comm.rank() as f64; comm.rank() + 1])
            });
            let parts = out[0].result.as_ref().expect("root has data");
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![r as f64; r + 1], "p={p} mw={mw:?}");
            }
            for o in &out[1..] {
                assert!(o.result.is_none());
            }
        });
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                comm.allgather(vec![comm.rank() as f64 * 10.0])
            });
            for o in &out {
                for (r, part) in o.result.iter().enumerate() {
                    assert_eq!(part, &vec![r as f64 * 10.0], "p={p} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn alltoallv_transposes_blocks() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let rank = comm.rank();
                // Block for dst d encodes (src, dst).
                let sends: Vec<Vec<f64>> = (0..p).map(|d| vec![rank as f64, d as f64]).collect();
                comm.alltoallv(sends)
            });
            for (r, o) in out.iter().enumerate() {
                for (s, block) in o.result.iter().enumerate() {
                    assert_eq!(block, &vec![s as f64, r as f64], "p={p} mw={mw:?}");
                }
            }
        });
    }

    #[test]
    fn scatter_distributes_root_blocks() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                let parts = (comm.rank() == 0)
                    .then(|| (0..p).map(|r| vec![r as f64; r + 1]).collect::<Vec<_>>());
                comm.scatter(0, parts)
            });
            for (r, o) in out.iter().enumerate() {
                assert_eq!(o.result, vec![r as f64; r + 1], "p={p} mw={mw:?}");
            }
        });
    }

    #[test]
    fn scatter_without_blocks_is_a_typed_protocol_error() {
        let cfg = ClusterConfig::uni(1, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            comm.try_scatter(0, None)
        });
        match &out[0].result {
            Err(CommError::Protocol { rank, what }) => {
                assert_eq!(*rank, 0);
                assert!(what.contains("without its blocks"));
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn reduce_sum_lands_only_at_root() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                comm.reduce_sum(0, vec![comm.rank() as f64 + 1.0, 2.0])
            });
            let expect0: f64 = (1..=p).map(|k| k as f64).sum();
            assert_eq!(
                out[0]
                    .result
                    .as_ref()
                    .expect("root rank 0 holds the reduced result"),
                &vec![expect0, 2.0 * p as f64]
            );
            for o in &out[1..] {
                assert!(o.result.is_none());
            }
        });
    }

    #[test]
    fn barrier_completes_and_charges_sync_time() {
        for_each_config(|p, mw| {
            let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                ctx.set_phase(Phase::Classic);
                let mut comm = Comm::new(ctx, mw);
                comm.barrier();
                comm.barrier();
            });
            if p > 1 {
                for o in &out {
                    let b = o.stats.bucket(Phase::Classic);
                    assert!(b.sync > 0.0, "p={p} mw={mw:?}");
                    assert_eq!(b.comm, 0.0, "barriers are pure synchronization");
                }
            }
        });
    }

    #[test]
    fn cmpi_barrier_is_much_slower_on_tcp_at_scale() {
        let time_for = |mw: Middleware| {
            let cfg = ClusterConfig::uni(8, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                for _ in 0..20 {
                    comm.barrier();
                }
            });
            cpc_cluster::elapsed_time(&out)
        };
        let mpi = time_for(Middleware::Mpi);
        let cmpi = time_for(Middleware::Cmpi);
        assert!(cmpi > 3.0 * mpi, "MPI {mpi} vs CMPI {cmpi}");
    }

    #[test]
    fn cmpi_barrier_is_fine_on_myrinet() {
        let time_for = |mw: Middleware| {
            let cfg = ClusterConfig::uni(8, NetworkKind::MyrinetGm);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                for _ in 0..20 {
                    comm.barrier();
                }
            });
            cpc_cluster::elapsed_time(&out)
        };
        let mpi = time_for(Middleware::Mpi);
        let cmpi = time_for(Middleware::Cmpi);
        // Ring sync costs more rounds but no pathology: within ~8x.
        assert!(cmpi < 8.0 * mpi, "MPI {mpi} vs CMPI {cmpi}");
    }

    #[test]
    fn user_p2p_roundtrip() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                comm.send(1, 9, vec![1.0, 2.0, 3.0]);
                comm.recv(1, 10)
            } else {
                let v = comm.recv(0, 9);
                comm.send(0, 10, v.iter().map(|x| x * 2.0).collect());
                Vec::new()
            }
        });
        assert_eq!(out[0].result, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn collective_timing_is_deterministic() {
        let run_once = || {
            let cfg = ClusterConfig::uni(8, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                let mut v = vec![comm.rank() as f64; 10_000];
                comm.allreduce_sum(&mut v);
                let blocks: Vec<Vec<f64>> = (0..comm.size()).map(|d| vec![d as f64; 500]).collect();
                comm.alltoallv(blocks);
                comm.barrier();
            });
            out.iter().map(|o| o.finish_time).collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn heartbeat_detects_crashed_peer_consistently() {
        for mw in Middleware::ALL {
            let cfg = ClusterConfig::uni(4, NetworkKind::ScoreGigE);
            let plan = FaultPlan::none().with_crash(2, 0.0);
            let out = run_cluster_faulty(cfg, plan, |ctx| {
                ctx.charge_compute(1e-6);
                ctx.poll_crash(); // rank 2 dies here
                let mut comm = Comm::new(ctx, mw);
                comm.heartbeat()
            })
            .unwrap();
            for o in &out {
                if o.rank == 2 {
                    assert!(o.crashed);
                } else {
                    assert_eq!(
                        o.result.as_ref().expect("survivor"),
                        &vec![2],
                        "mw={mw:?} rank {}",
                        o.rank
                    );
                }
            }
        }
    }

    #[test]
    fn observed_heartbeat_is_timing_identical_to_plain_heartbeat() {
        use crate::detector::{DetectorConfig, FailureDetector};
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let plain = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            comm.heartbeat();
            comm.barrier();
            ctx.now()
        });
        let observed = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let mut det = FailureDetector::new(comm.size(), DetectorConfig::default());
            comm.heartbeat_observed(&mut det, 1.5);
            comm.barrier();
            assert!(det.srtt_max().is_some(), "heartbeat RTTs were observed");
            ctx.now()
        });
        for (a, b) in plain.iter().zip(&observed) {
            assert_eq!(
                a.finish_time.to_bits(),
                b.finish_time.to_bits(),
                "piggybacked reports must not perturb timing (rank {})",
                a.rank
            );
        }
    }

    #[test]
    fn observed_heartbeat_replicates_detector_verdicts() {
        use crate::detector::{DetectorConfig, FailureDetector};
        let cfg = ClusterConfig::uni(4, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let mut det = FailureDetector::new(comm.size(), DetectorConfig::default());
            // Rank 3 reports 4x cost; everyone else is nominal.
            let report = if comm.rank() == 3 { 4.0 } else { 1.0 };
            for _ in 0..3 {
                let dead = comm.heartbeat_observed(&mut det, report);
                assert!(dead.is_empty());
            }
            let members: Vec<usize> = comm.members().to_vec();
            (det.evict_candidate(&members), det.suspects(&members))
        });
        for o in &out {
            let (evict, suspects) = o.result.clone();
            assert_eq!(evict, Some(3), "verdict replicated on rank {}", o.rank);
            assert_eq!(suspects, vec![3]);
        }
    }

    #[test]
    fn observed_heartbeat_detects_crashes_like_plain_heartbeat() {
        use crate::detector::{DetectorConfig, FailureDetector};
        let cfg = ClusterConfig::uni(4, NetworkKind::ScoreGigE);
        let plan = FaultPlan::none().with_crash(2, 0.0);
        let out = run_cluster_faulty(cfg, plan, |ctx| {
            ctx.charge_compute(1e-6);
            ctx.poll_crash();
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let mut det = FailureDetector::new(comm.size(), DetectorConfig::default());
            comm.heartbeat_observed(&mut det, 1.0)
        })
        .unwrap();
        for o in &out {
            if o.rank == 2 {
                assert!(o.crashed);
            } else {
                assert_eq!(o.result.as_ref().expect("survivor"), &vec![2]);
            }
        }
    }

    #[test]
    fn delivered_sends_feed_the_rtt_estimator() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                comm.send(1, 9, vec![1.0; 64]);
                let est = comm.rtt_estimate(1);
                let rto = est.rto().expect("one sample");
                (est.samples(), rto)
            } else {
                comm.recv(0, 9);
                (0, 0.0)
            }
        });
        let (samples, rto) = out[0].result;
        assert_eq!(samples, 1);
        assert!(rto > 0.0 && rto.is_finite());
    }

    #[test]
    fn shrunken_comm_runs_collectives_among_survivors() {
        for mw in Middleware::ALL {
            let cfg = ClusterConfig::uni(4, NetworkKind::ScoreGigE);
            let plan = FaultPlan::none().with_crash(1, 0.0);
            let out = run_cluster_faulty(cfg, plan, |ctx| {
                ctx.charge_compute(1e-6);
                ctx.poll_crash();
                let mut comm = Comm::new(ctx, mw);
                let dead = comm.heartbeat();
                comm.shrink(&dead);
                assert_eq!(comm.size(), 3);
                // Survivors 0, 2, 3 get logical ranks 0, 1, 2.
                let mut v = vec![comm.global_rank() as f64];
                comm.allreduce_sum(&mut v);
                let gathered = comm.allgather(vec![comm.rank() as f64]);
                comm.barrier();
                (v[0], gathered.len())
            })
            .unwrap();
            for o in &out {
                if o.rank == 1 {
                    assert!(o.crashed);
                } else {
                    let (sum, parts) = o.result.expect("survivor");
                    assert_eq!(sum, 5.0, "0 + 2 + 3, mw={mw:?}");
                    assert_eq!(parts, 3);
                }
            }
        }
    }

    #[test]
    fn try_barrier_degrades_instead_of_hanging() {
        for mw in Middleware::ALL {
            let cfg = ClusterConfig::uni(4, NetworkKind::ScoreGigE);
            let plan = FaultPlan::none().with_crash(3, 0.0);
            let out = run_cluster_faulty(cfg, plan, |ctx| {
                ctx.charge_compute(1e-6);
                ctx.poll_crash();
                let mut comm = Comm::new(ctx, mw);
                comm.try_barrier()
            })
            .unwrap();
            for o in &out {
                if o.rank == 3 {
                    assert!(o.crashed);
                } else {
                    // Everyone returns; whoever talked to the dead rank
                    // reports it, nobody hangs.
                    assert!(o.result.is_some(), "rank {} returned", o.rank);
                }
            }
        }
    }

    #[test]
    fn retry_pair_recovers_from_loss_and_reports_exhaustion() {
        // 100% loss with 1 transport retransmit: every payload attempt
        // tombstones, so the retry pair exhausts its policy on both
        // sides deterministically.
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let plan = FaultPlan::none().with_loss(1.0).with_max_retransmits(1);
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: 2.0,
        };
        let out = run_cluster_faulty(cfg, plan, move |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                match comm.send_with_retry(1, 5, vec![1.0; 8], policy) {
                    Err(CommError::Timeout { peer, tag, .. }) => (peer, tag),
                    other => panic!("expected exhaustion, got {other:?}"),
                }
            } else {
                match comm.recv_with_retry(0, 5, policy) {
                    Err(CommError::Timeout { peer, tag, .. }) => (peer, tag),
                    other => panic!("expected exhaustion, got {other:?}"),
                }
            }
        })
        .unwrap();
        assert_eq!(out[0].result.unwrap(), (1, 5));
        assert_eq!(out[1].result.unwrap().1, 5);
        // Partial loss: the pair succeeds with high probability; just
        // check determinism of the whole exchange.
        let plan2 = FaultPlan::none().with_loss(0.4).with_max_retransmits(1);
        let run = || {
            let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
            run_cluster_faulty(cfg, plan2.clone(), move |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                if comm.rank() == 0 {
                    comm.send_with_retry(1, 6, vec![2.0; 64], policy).is_ok()
                } else {
                    comm.recv_with_retry(0, 6, policy).is_ok()
                }
            })
            .unwrap()
            .iter()
            .map(|o| (o.result.unwrap(), o.finish_time))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn half_entered_collective_surfaces_stalled_not_hang() {
        // Rank 2 never joins the barrier: the ranks that did enter wait
        // on peers that will never arrive. The termination oracle
        // depends on this surfacing as a typed SimError::Stalled within
        // the configured stall budget instead of hanging the process.
        let cfg = ClusterConfig::uni(3, NetworkKind::ScoreGigE).with_stall_timeout(0.2);
        let result = run_cluster_faulty(cfg, FaultPlan::none(), |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() != 2 {
                comm.barrier();
            }
        });
        match result {
            Err(cpc_cluster::SimError::Stalled { rank, waited, .. }) => {
                assert!(rank != 2, "a rank stuck inside the barrier stalls");
                assert!(waited >= 0.2);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }

        // Same for a value-moving collective with inconsistent
        // membership.
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE).with_stall_timeout(0.2);
        let result = run_cluster_faulty(cfg, FaultPlan::none(), |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                let mut v = vec![1.0];
                comm.allreduce_sum(&mut v);
            }
        });
        assert!(
            matches!(result, Err(cpc_cluster::SimError::Stalled { .. })),
            "got {result:?}"
        );
    }
}
